#!/usr/bin/env python3
"""Workload-aware hybrid operation: the paper's §3.4 scenario, end to end.

A data center serves two tenants with opposite needs:

* an analytics tenant running hot-spot broadcast over a large cluster
  (wants the approximated *global* random graph);
* a microservice tenant running all-to-all in small clusters
  (wants approximated *local* random graphs).

The controller splits the Pods into two zones, converts each to the
right topology, places each tenant into its zone, and we verify with
the concurrent-flow solver that (a) each zone performs like a dedicated
network and (b) running both at once costs neither anything — the
paper's zone-isolation claim.

Run:  python examples/workload_aware_conversion.py
"""

import random

from repro import Controller, FlatTree, FlatTreeDesign, proportional_layout
from repro.experiments.common import throughput_of
from repro.experiments.hybrid import (
    zone_all_to_all_workload,
    zone_broadcast_workload,
)

K = 8
SEED = 0


def main() -> None:
    design = FlatTreeDesign.for_fat_tree(K)
    controller = Controller(FlatTree(design))
    print(f"flat-tree(k={K}) starts in Clos mode: {controller.network.name}")

    # Split Pods 0..3 for analytics (global random), 4..7 for the
    # microservices (local random graphs per Pod).
    layout = proportional_layout(design.params, fraction_global=0.5)
    plan = controller.apply_layout(layout)
    print(f"\nconversion plan: {plan.summary()}")
    for stage in plan.stages:
        print(f"  - {stage}")

    network = controller.network
    analytics_servers = layout.zone_servers("global")
    micro_servers = layout.zone_servers("local")
    print(f"\nanalytics zone: Pods {layout.zone('global').pods}, "
          f"{len(analytics_servers)} servers")
    print(f"microservice zone: Pods {layout.zone('local').pods}, "
          f"{len(micro_servers)} servers")

    # Tenant workloads, placed inside their zones (locality placement).
    analytics = zone_broadcast_workload(
        analytics_servers, random.Random(SEED)
    )
    micro = zone_all_to_all_workload(micro_servers, random.Random(SEED))
    print(f"\nanalytics workload: {len(analytics)} broadcast commodities")
    print(f"microservice workload: {len(micro)} all-to-all commodities")

    # Solve each zone alone, then both together, on the hybrid network.
    lam_analytics = throughput_of(network, analytics)
    lam_micro = throughput_of(network, micro)
    lam_both = throughput_of(network, analytics + micro)
    print("\nconcurrent throughput (lambda, per unit demand):")
    print(f"  analytics zone alone      {lam_analytics:.4f}")
    print(f"  microservice zone alone   {lam_micro:.4f}")
    print(f"  both zones simultaneously {lam_both:.4f}")

    floor = min(lam_analytics, lam_micro)
    if lam_both >= 0.99 * floor:
        print("\nzones are isolated: sharing the core costs (almost) "
              "nothing — hybrid mode is as good as two dedicated networks")
    else:
        print(f"\ninterference detected: combined lambda is "
              f"{100 * (1 - lam_both / floor):.1f}% below the zone floor")

    # The workload mix shifts at night: analytics grows to 3/4 of the
    # Pods.  One controller call re-plans the topology.
    plan = controller.apply_layout(
        proportional_layout(design.params, fraction_global=0.75)
    )
    print(f"\nnight shift — grow analytics zone to 6 Pods: {plan.summary()}")


if __name__ == "__main__":
    main()
