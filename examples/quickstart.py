#!/usr/bin/env python3
"""Quickstart: build a flat-tree, convert it, inspect what changed.

This walks the library's core loop in under a minute:

1. pick the paper's design point for a fat-tree(k=8) plant;
2. materialize all three homogeneous operating modes;
3. verify every mode uses identical equipment (the paper's premise);
4. compare the structural metrics the paper reports (Figures 5/6).

Run:  python examples/quickstart.py
"""

from repro import FlatTree, FlatTreeDesign, Mode, convert
from repro.topology import (
    assert_same_equipment,
    average_server_path_length,
    average_within_group_path_length,
    build_fat_tree,
    server_counts_by_kind,
)

K = 8


def main() -> None:
    # A design point fixes the physical plant: the Clos equipment being
    # converted, m/n converter counts, wiring pattern, side-bundle ring.
    design = FlatTreeDesign.for_fat_tree(K)
    print(f"flat-tree design for fat-tree(k={K}):")
    print(f"  m={design.m} 6-port and n={design.n} 4-port converters per "
          f"edge/aggregation pair, wiring {design.pattern.name}")

    flattree = FlatTree(design)
    print(f"  plant: {len(flattree.converters)} converter switches, "
          f"{len(flattree.pairs)} side bundles\n")

    # Convert through the paper's three homogeneous modes.
    fat_tree = build_fat_tree(K)
    networks = {}
    for mode in (Mode.CLOS, Mode.GLOBAL_RANDOM, Mode.LOCAL_RANDOM):
        net = convert(flattree, mode)
        assert_same_equipment(net, fat_tree)  # the paper's premise
        networks[mode] = net
        print(f"{net.name}")
        print(f"  servers by switch layer: {server_counts_by_kind(net)}")

    # Clos mode is *exactly* the fat-tree, cable for cable.
    clos = networks[Mode.CLOS]
    assert set(clos.fabric.edges()) == set(fat_tree.fabric.edges())
    print("\nClos mode is cable-for-cable identical to fat-tree(8)")

    # The paper's Figure 5 metric: average path length over server pairs.
    print("\naverage server-pair path length (hops), Figure 5 metric:")
    print(f"  fat-tree          {average_server_path_length(fat_tree):.3f}")
    print(f"  flat-tree global  "
          f"{average_server_path_length(networks[Mode.GLOBAL_RANDOM]):.3f}")

    # And Figure 6: the same metric restricted to same-Pod pairs.
    groups = flattree.pod_server_groups()
    print("\nin-Pod average path length (hops), Figure 6 metric:")
    print(f"  fat-tree          "
          f"{average_within_group_path_length(fat_tree, groups):.3f}")
    print(f"  flat-tree local   "
          f"{average_within_group_path_length(networks[Mode.LOCAL_RANDOM], groups):.3f}")


if __name__ == "__main__":
    main()
