#!/usr/bin/env python3
"""Multi-stage flat-tree: converting a two-Pod-layer network (§2.1).

The paper sketches extending flat-tree to multiple Pod layers: the
lower layer's core switches are really the *edge switches of upper
Pods*, and servers relocated upward by lower converters become the
upper Pods' "servers", which upper converters can relocate again.

This example builds the composition over a fat-tree(8) lower layer and
4 upper Pods, then walks the four layer-mode combinations.  Watch two
things: where the servers end up (some reach the top-tier cores after
*two* relocations), and the ordering lesson the composition teaches —
converting the upper layer only pays once the lower layer has been
converted first.

Run:  python examples/multistage_flattree.py
"""

from repro.core.conversion import Mode
from repro.core.multistage import build_two_stage_flat_tree
from repro.topology.stats import (
    average_server_path_length,
    server_counts_by_kind,
)

K_LOWER = 8
UPPER_PODS = 4

COMBINATIONS = (
    ("both layers Clos (plain 3-tier)", Mode.CLOS, Mode.CLOS),
    ("upper only converted", Mode.CLOS, Mode.GLOBAL_RANDOM),
    ("lower only converted", Mode.GLOBAL_RANDOM, Mode.CLOS),
    ("both layers converted", Mode.GLOBAL_RANDOM, Mode.GLOBAL_RANDOM),
)


def main() -> None:
    print(f"two-stage flat-tree: fat-tree({K_LOWER}) below, "
          f"{UPPER_PODS} switch-only Pods above\n")
    results = {}
    for label, lower, upper in COMBINATIONS:
        net = build_two_stage_flat_tree(K_LOWER, UPPER_PODS, lower, upper)
        apl = average_server_path_length(net)
        results[label] = apl
        by_kind = server_counts_by_kind(net)
        print(f"{label}:")
        print(f"  average path length {apl:.3f} hops")
        print(f"  servers by layer    {by_kind}\n")

    base = results["both layers Clos (plain 3-tier)"]
    best = results["both layers converted"]
    upper_only = results["upper only converted"]
    print(f"converting both layers cuts the APL by "
          f"{100 * (base - best) / base:.1f}%")
    if upper_only > base:
        print("note: converting ONLY the upper layer made paths longer "
              f"({upper_only:.3f} vs {base:.3f}) — with nothing relocated "
              "below, lower uplinks just land deeper in the hierarchy. "
              "Convert bottom-up.")


if __name__ == "__main__":
    main()
