#!/usr/bin/env python3
"""Design-time profiling: choose (m, n) for a given Clos plant (§2.4).

Flat-tree converts *generic* Clos networks, so the right number of
6-port (m) and 4-port (n) converter switches per edge/aggregation pair
depends on the layout.  The paper's §2.4 answer is empirical: sweep the
(m, n) grid, build the approximated global random graph for each
candidate, and keep the design with the shortest average path length.

This example profiles two different plants — the paper's fat-tree(12)
and a 2:1 oversubscribed Clos — and shows where the resulting design
lands relative to the fat-tree and same-equipment random-graph
baselines.  It doubles as a telemetry demo: each phase runs inside an
``obs.span`` (JSONL progress events on stderr) and the script ends with
the metrics the sweep accumulated — per-candidate timings, skipped
candidates, conversion churn.

Run:  python examples/profiling_design.py
"""

import random

from repro import FlatTree, Mode, convert, fat_tree_params, obs, profile_mn
from repro.core.design import FlatTreeDesign
from repro.topology import (
    ClosParams,
    JellyfishSpec,
    average_server_path_length,
    build_clos,
    build_jellyfish,
)


def profile_and_report(params: ClosParams, label: str, grid=None) -> None:
    print(f"=== profiling {label} ===")
    with obs.span("profile_plant", plant=label):
        result = profile_mn(params, candidates=grid)
    print(f"{'m':>3} {'n':>3} {'pattern':>9} {'APL':>8}")
    for row in result.as_rows():
        marker = "  <-- chosen" if row["best"] else ""
        print(f"{row['m']:>3} {row['n']:>3} {row['pattern']:>9} "
              f"{row['apl']:>8.4f}{marker}")
    for cand in result.skipped:
        print(f"  (skipped m={cand.m} n={cand.n}: {cand.reason})")

    best = result.best
    design = FlatTreeDesign(
        params=params, m=best.m, n=best.n, pattern=best.pattern
    )
    with obs.span("baselines", plant=label):
        flat = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        clos = build_clos(params)
        jelly = build_jellyfish(
            JellyfishSpec.matching(params), random.Random(0)
        )
        flat_apl = average_server_path_length(flat)
        clos_apl = average_server_path_length(clos)
        jelly_apl = average_server_path_length(jelly)
    print(f"\n  Clos baseline       {clos_apl:.4f} hops")
    print(f"  profiled flat-tree  {flat_apl:.4f} hops "
          f"({100 * (clos_apl - flat_apl) / clos_apl:.1f}% below Clos)")
    print(f"  random graph        {jelly_apl:.4f} hops "
          f"(flat-tree within "
          f"{100 * (flat_apl - jelly_apl) / jelly_apl:.1f}%)\n")


def main() -> None:
    obs.enable(obs.StderrSink())  # span events trace progress on stderr

    # The paper's evaluation plant: fat-tree(12).
    profile_and_report(fat_tree_params(12), "fat-tree(12)")

    # A generic plant the paper targets but never profiles: 6 Pods,
    # 2:1 edge oversubscription (r = 2), 4 servers per edge switch.
    oversubscribed = ClosParams(pods=6, d=4, r=2, h=4, servers_per_edge=4)
    grid = [(m, n) for m in (1, 2) for n in (1, 2)]
    profile_and_report(oversubscribed, "oversubscribed Clos (r=2)", grid)

    print("=== telemetry accumulated by the sweeps ===")
    print(obs.render_table())
    obs.disable()


if __name__ == "__main__":
    main()
