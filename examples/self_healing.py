#!/usr/bin/env python3
"""Self-recovery and elastic scaling: the paper's §5 future work, built.

Part 1 — self-healing.  A cable between a converter switch and its edge
switch is cut while the network runs in Clos mode.  In a fixed topology
the attached server goes dark; a convertible topology re-programs the
converter so the server comes back through its aggregation switch.

Part 2 — downscaling.  At idle time the offered load is a trickle; the
controller proves (with the concurrent-flow solver) how many core
switches can sleep while the remaining workload still meets its
throughput floor.

Run:  python examples/self_healing.py
"""

from repro import Controller, FlatTree, FlatTreeDesign, Mode
from repro.core.failures import (
    FailureSet,
    Leg,
    materialize_with_failures,
)
from repro.core.scaling import downscale_plan
from repro.mcf.commodities import Commodity
from repro.topology.stats import is_connected

K = 8


def part_one_self_healing(controller: Controller) -> None:
    print("=== part 1: self-healing after a cable cut ===")
    flattree = controller.flattree
    victim = sorted(flattree.four_port_ids())[0]
    server = flattree.converters[victim].server
    failures = FailureSet.of_legs((victim, Leg.EDGE))
    print(f"cut: converter {victim} loses its edge-switch cable "
          f"(server {server} rides on it in Clos mode)")

    degraded = materialize_with_failures(flattree, failures)
    stranded = set(range(flattree.params.num_servers)) - set(degraded.servers())
    print(f"before healing: {len(stranded)} server(s) dark: {sorted(stranded)}")

    plan = controller.recover(failures)
    print(f"heal: {plan.summary()}")
    healed = materialize_with_failures(flattree, failures)
    still_dark = set(range(flattree.params.num_servers)) - set(healed.servers())
    host = healed.server_switch(server)
    print(f"after healing: {len(still_dark)} server(s) dark; server "
          f"{server} now attached to {host} "
          f"(connected: {is_connected(healed)})\n")


def part_two_downscaling(controller: Controller) -> None:
    print("=== part 2: night-time downscaling ===")
    controller.apply_mode(Mode.CLOS)
    network = controller.network
    # The idle-hours trickle: a handful of cross-Pod flows.
    workload = [
        Commodity(0, 100),
        Commodity(17, 64),
        Commodity(33, 127),
        Commodity(70, 5),
    ]
    print(f"idle workload: {len(workload)} flows on "
          f"{network.num_servers} servers")
    plan = downscale_plan(
        network, workload, min_throughput_fraction=0.5, max_sleeping=8
    )
    print(f"downscale: {plan.summary()}")
    print(f"  baseline throughput {plan.baseline_throughput:.3f}, "
          f"after sleeping {plan.cores_slept} cores "
          f"{plan.achieved_throughput:.3f}")


def main() -> None:
    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(K)))
    part_one_self_healing(controller)
    part_two_downscaling(controller)


if __name__ == "__main__":
    main()
