#!/usr/bin/env python3
"""Flow-level view: what conversion buys running applications.

The paper evaluates capacity with an optimal-routing LP; applications
experience *flow completion time* under real (k-shortest-paths / ECMP)
routing.  This example runs the fluid flow-level simulator on the same
hot-spot-heavy workload in Clos mode and in global-random mode and
compares mean/p99 FCT — the LP's capacity advantage should survive
routing realism.

It doubles as a telemetry demo: the conversion + simulation of each
mode runs inside an ``obs.span`` (JSONL events on stderr) and the
script closes with the accumulated metrics — simulator event counts,
fair-share recomputes, route-cache hits, conversion churn.

Run:  python examples/live_conversion_fct.py
"""

import random

from repro import Controller, FlatTree, FlatTreeDesign, Mode, obs
from repro.flowsim import FlowSimulator, FlowSpec

K = 8
HOTSPOT_FLOWS = 60
BACKGROUND_FLOWS = 60
SEED = 11


def build_workload(params, rng) -> list:
    """A hot-spot broadcast plus random background pairs, unit sizes."""
    servers = list(range(params.num_servers))
    hotspot = rng.choice(servers)
    flows = []
    fid = 0
    others = [s for s in servers if s != hotspot]
    for dst in rng.sample(others, HOTSPOT_FLOWS):
        flows.append(FlowSpec(fid, hotspot, dst, size=1.0))
        fid += 1
    for _ in range(BACKGROUND_FLOWS):
        a, b = rng.sample(servers, 2)
        flows.append(FlowSpec(fid, a, b, size=1.0))
        fid += 1
    return flows


def simulate(controller: Controller, mode: Mode, flows) -> None:
    with obs.span("simulate_mode", mode=mode.value):
        plan = controller.apply_mode(mode)
        if not plan.is_noop():
            print(f"\nconvert to {mode.value}: {plan.summary()}")
        simulator = FlowSimulator(controller.network, controller.route)
        result = simulator.run(list(flows))
    print(f"{mode.value:>14}:  mean FCT {result.mean_fct:7.3f}   "
          f"p99 FCT {result.p99_fct:7.3f}   makespan {result.makespan:7.3f}")


def main() -> None:
    obs.enable(obs.StderrSink())  # span events trace progress on stderr

    design = FlatTreeDesign.for_fat_tree(K)
    controller = Controller(FlatTree(design))
    flows = build_workload(design.params, random.Random(SEED))
    print(f"workload: {HOTSPOT_FLOWS} hot-spot flows + "
          f"{BACKGROUND_FLOWS} background flows, unit size each")

    simulate(controller, Mode.CLOS, flows)
    simulate(controller, Mode.GLOBAL_RANDOM, flows)
    simulate(controller, Mode.LOCAL_RANDOM, flows)

    print("\nthe global-random conversion spreads the hot spot's servers "
          "over edge, aggregation and core switches, so the same flows "
          "drain faster than on the Clos hierarchy")

    print("\n=== telemetry accumulated by the runs ===")
    print(obs.render_table())
    obs.disable()


if __name__ == "__main__":
    main()
