"""Max-flow helpers: cut-based bounds and single-pair flows.

Concurrent-flow optima are expensive; these helpers provide cheap upper
bounds (used as sanity rails in tests and as fast previews in the CLI)
and an exact single-pair max-flow built on
:func:`scipy.sparse.csgraph.maximum_flow`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import maximum_flow

from repro.errors import SolverError
from repro.mcf.commodities import FlowProblem
from repro.topology.elements import Network, SwitchId

#: Capacities are scaled to integers for csgraph's integer max-flow.
_FLOW_SCALE = 10_000


def source_cut_bound(problem: FlowProblem) -> float:
    """λ upper bound from each group's source out-capacity.

    The concurrent rate cannot exceed (source out-capacity) / (group
    demand) for any group — a single cut, hence an upper bound.
    """
    out_cap = np.zeros(problem.num_nodes)
    np.add.at(out_cap, problem.arc_src, problem.arc_cap)
    bound = np.inf
    for g in problem.groups:
        bound = min(bound, out_cap[g.source] / g.total_demand)
    return float(bound)


def sink_cut_bound(problem: FlowProblem) -> float:
    """λ upper bound from per-sink in-capacity across all groups."""
    in_cap = np.zeros(problem.num_nodes)
    np.add.at(in_cap, problem.arc_dst, problem.arc_cap)
    demand_in: Dict[int, float] = {}
    for g in problem.groups:
        for sink, demand in zip(g.sinks, g.demands):
            demand_in[int(sink)] = demand_in.get(int(sink), 0.0) + float(demand)
    bound = np.inf
    for sink, demand in demand_in.items():
        bound = min(bound, in_cap[sink] / demand)
    return float(bound)


def concurrent_upper_bound(problem: FlowProblem) -> float:
    """Best available cheap upper bound on the concurrent throughput."""
    return min(source_cut_bound(problem), sink_cut_bound(problem))


def single_pair_max_flow(net: Network, src: SwitchId, dst: SwitchId) -> float:
    """Exact max flow between two switches over the fabric.

    Capacities are the cable-bundle capacities; both directions of a
    cable may be used simultaneously (full-duplex model).
    """
    if src == dst:
        raise SolverError("source and destination switches coincide")
    index = net.switch_index()
    n = len(index)
    rows, cols, vals = [], [], []
    for u, v, cap in net.edge_list():
        ui, vi = index[u], index[v]
        scaled = int(round(cap * _FLOW_SCALE))
        rows.extend((ui, vi))
        cols.extend((vi, ui))
        vals.extend((scaled, scaled))
    graph = sp.csr_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.int32)
    result = maximum_flow(graph, index[src], index[dst])
    return result.flow_value / _FLOW_SCALE
