"""Path decomposition of edge-flow solutions.

The exact LP returns *edge* flows per demand group; routing and
simulation want *paths*.  Classic flow decomposition recovers them: walk
from the source along positive-flow arcs to a sink, peel off the
bottleneck, repeat.  Any feasible group flow decomposes into at most
``#arcs`` paths (plus cycles, which carry no demand and are dropped).

This converts an optimal LP solution into an explicit routing — e.g. to
program SDN rules that *achieve* the LP throughput, or to feed the
fluid simulator with provably-optimal path sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SolverError
from repro.mcf.commodities import DemandGroup, FlowProblem

_EPS = 1e-9


@dataclass(frozen=True)
class PathFlow:
    """One decomposed path with the amount of flow it carries."""

    source: int
    sink: int
    nodes: Tuple[int, ...]
    amount: float


def decompose_group(
    problem: FlowProblem, group: DemandGroup, flow: np.ndarray
) -> List[PathFlow]:
    """Decompose one group's arc-flow vector into sink-terminated paths.

    ``flow`` has one entry per arc.  The remaining per-sink demand is
    tracked so each peeled path is attributed to a sink that still needs
    flow; residual circulation (cycles) is discarded.
    """
    if flow.shape != (problem.num_arcs,):
        raise SolverError("flow vector shape mismatch")
    residual = flow.astype(np.float64).copy()
    need: Dict[int, float] = {
        int(sink): float(demand)
        for sink, demand in zip(group.sinks, group.demands)
    }
    # The group's λ-scaled delivery: total outflow minus inflow at the
    # source tells how much each sink actually receives per unit demand.
    out_arcs: Dict[int, List[int]] = {}
    for arc in range(problem.num_arcs):
        out_arcs.setdefault(int(problem.arc_src[arc]), []).append(arc)

    scale = _delivered_fraction(problem, group, residual)
    for sink in need:
        need[sink] *= scale

    paths: List[PathFlow] = []
    for _ in range(problem.num_arcs + len(need) + 1):
        sink_needs = {t for t, d in need.items() if d > _EPS}
        if not sink_needs:
            break
        walk = _walk_to_sink(problem, out_arcs, residual, group.source,
                             sink_needs)
        if walk is None:
            break
        nodes, arcs, sink = walk
        bottleneck = min(
            float(residual[arcs].min()), need[sink]
        )
        if bottleneck <= _EPS:
            break
        residual[arcs] -= bottleneck
        need[sink] -= bottleneck
        paths.append(
            PathFlow(
                source=group.source,
                sink=sink,
                nodes=tuple(nodes),
                amount=bottleneck,
            )
        )
    return paths


def _delivered_fraction(
    problem: FlowProblem, group: DemandGroup, flow: np.ndarray
) -> float:
    """Fraction of the group demand this flow actually delivers (λ)."""
    net_out = 0.0
    for arc in range(problem.num_arcs):
        if int(problem.arc_src[arc]) == group.source:
            net_out += float(flow[arc])
        if int(problem.arc_dst[arc]) == group.source:
            net_out -= float(flow[arc])
    total = group.total_demand
    return max(0.0, net_out / total) if total > 0 else 0.0


def _walk_to_sink(problem, out_arcs, residual, source, sinks):
    """BFS along positive-residual arcs to the nearest needy sink.

    BFS (rather than a greedy walk) is robust to circulation in the LP
    solution: if any sink is reachable through positive flow, BFS finds
    a simple path to it.
    """
    from collections import deque

    via_arc: Dict[int, int] = {}
    via_node: Dict[int, int] = {}
    queue = deque([source])
    seen = {source}
    target = -1
    while queue:
        here = queue.popleft()
        if here in sinks and here != source:
            target = here
            break
        for arc in out_arcs.get(here, []):
            if float(residual[arc]) <= _EPS:
                continue
            nxt = int(problem.arc_dst[arc])
            if nxt in seen:
                continue
            seen.add(nxt)
            via_arc[nxt] = arc
            via_node[nxt] = here
            queue.append(nxt)
    if target < 0:
        return None
    nodes = [target]
    arcs: List[int] = []
    here = target
    while here != source:
        arcs.append(via_arc[here])
        here = via_node[here]
        nodes.append(here)
    nodes.reverse()
    arcs.reverse()
    return nodes, np.asarray(arcs, dtype=np.int64), target


def decompose_solution(
    problem: FlowProblem, flows: np.ndarray
) -> List[PathFlow]:
    """Decompose every group of a ``return_flows=True`` LP solution."""
    if flows.shape != (problem.num_groups, problem.num_arcs):
        raise SolverError("flows matrix shape mismatch")
    out: List[PathFlow] = []
    for group, row in zip(problem.groups, flows):
        out.extend(decompose_group(problem, group, row))
    return out


def delivered_per_commodity(
    paths: List[PathFlow],
) -> Dict[Tuple[int, int], float]:
    """Total decomposed flow per (source, sink) commodity."""
    totals: Dict[Tuple[int, int], float] = {}
    for path in paths:
        key = (path.source, path.sink)
        totals[key] = totals.get(key, 0.0) + path.amount
    return totals
