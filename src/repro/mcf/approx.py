"""Fleischer/Garg–Könemann approximation for max concurrent flow.

The exact LP (``repro.mcf.exact``) grows as #groups × #arcs and becomes
impractical for the paper's largest instances (k = 30–32 all-to-all
traffic) on a laptop.  This module implements the classic multiplicative-
weights FPTAS (Garg & Könemann 1998; Fleischer 2000):

* every arc carries a length ``l(a)``, initialized to ``δ / cap(a)``;
* in *phases*, each commodity routes its full demand along successive
  shortest paths (by current lengths), bumping traversed arc lengths by
  ``(1 + ε · sent / cap)``;
* the process stops once ``D(l) = Σ l(a)·cap(a) ≥ 1``.

Rather than relying on the theoretical scaling constants, the solver
returns a **certified feasible** throughput: the accumulated flow is
scaled down by the worst arc overload, and λ is the minimum scaled
rate over all commodities.  The guarantee λ ≥ (1 - ε)·OPT then holds
with comfortable margin in practice (tests cross-check against the
exact LP).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro import obs
from repro.errors import SolverError
from repro.mcf.commodities import FlowProblem
from repro.mcf.exact import MCFResult


def solve_concurrent_approx(
    problem: FlowProblem,
    epsilon: float = 0.1,
    max_phases: Optional[int] = None,
) -> MCFResult:
    """Approximate max concurrent flow within a (1 - ε) factor.

    ``max_phases`` optionally caps the phase count (the certified result
    stays feasible, just possibly further from optimal).
    """
    if not 0 < epsilon < 1:
        raise SolverError(f"epsilon must be in (0, 1), got {epsilon}")
    if problem.num_groups == 0:
        raise SolverError("no demand groups to solve")

    num_arcs = problem.num_arcs
    cap = problem.arc_cap
    delta = (1 + epsilon) * ((1 + epsilon) * num_arcs) ** (-1.0 / epsilon)
    lengths = delta / cap
    flow = np.zeros(num_arcs)
    routed: List[np.ndarray] = [
        np.zeros(len(g.sinks)) for g in problem.groups
    ]

    graph = _AdjacencyView(problem)
    d_value = float((lengths * cap).sum())
    phases = 0
    trees = 0
    budget = max_phases if max_phases is not None else _phase_budget(epsilon, num_arcs)
    # The phase budget is a theoretical worst case; d_value usually
    # crosses 1.0 far earlier, so the heartbeat ETA here is an upper
    # bound that only tightens (the clamp keeps it monotone).
    progress = obs.ProgressTracker("mcf.approx", total=budget)
    with obs.span("mcf.approx", groups=problem.num_groups, arcs=num_arcs), \
            obs.timer("mcf.approx.solve_s"):
        while d_value < 1.0 and phases < budget:
            for g_index, group in enumerate(problem.groups):
                remaining = group.demands.astype(np.float64).copy()
                # Route the whole group off shared shortest-path trees: one
                # Dijkstra serves every sink still carrying demand.  Length
                # bumps apply after each tree, not after each sink — a
                # standard batching of Fleischer's inner loop; the result
                # stays exact because feasibility is certified a posteriori.
                for _round in range(len(group.sinks) + 1):
                    if d_value >= 1.0 or not (remaining > 1e-12).any():
                        break
                    tree = graph.shortest_path_tree(lengths, group.source)
                    trees += 1
                    bump_amount = np.zeros(num_arcs)
                    for sink_pos, sink in enumerate(group.sinks):
                        if remaining[sink_pos] <= 1e-12:
                            continue
                        path_arcs = graph.tree_path(tree, int(sink))
                        if path_arcs is None:
                            # Unreachable sink: concurrent throughput is 0.
                            obs.incr("mcf.approx.unreachable_sinks")
                            return MCFResult(throughput=0.0,
                                             method="approx-gk")
                        bottleneck = float(cap[path_arcs].min())
                        amount = min(float(remaining[sink_pos]), bottleneck)
                        flow[path_arcs] += amount
                        bump_amount[path_arcs] += amount
                        routed[g_index][sink_pos] += amount
                        remaining[sink_pos] -= amount
                    bump = 1.0 + epsilon * bump_amount / cap
                    d_value += float((lengths * (bump - 1.0) * cap).sum())
                    lengths *= bump
            phases += 1
            progress.advance()
        progress.finish()

    obs.incr("mcf.approx.solves")
    obs.incr("mcf.approx.phases", phases)
    obs.incr("mcf.approx.dijkstra_calls", trees)
    result = _certify(problem, flow, routed)
    obs.set_gauge("mcf.approx.last_objective", result.throughput)
    return result


def _phase_budget(epsilon: float, num_arcs: int) -> int:
    """Theoretical upper bound on the number of phases (safety net)."""
    return int(math.ceil(2 * math.log((1 + epsilon) * num_arcs) / (epsilon**2))) + 2


def _certify(
    problem: FlowProblem, flow: np.ndarray, routed: List[np.ndarray]
) -> MCFResult:
    """Scale accumulated flow to feasibility and report the worst rate."""
    with np.errstate(divide="ignore", invalid="ignore"):
        overload = np.where(flow > 0, flow / problem.arc_cap, 0.0)
    worst = float(overload.max())
    scale = 1.0 if worst <= 1.0 else 1.0 / worst
    lam = math.inf
    for group, sent in zip(problem.groups, routed):
        rates = sent * scale / group.demands
        lam = min(lam, float(rates.min()))
    if not math.isfinite(lam):
        raise SolverError("approximation produced no routed flow")
    return MCFResult(throughput=lam, method="approx-gk")


class _AdjacencyView:
    """A CSR adjacency whose weights alias the arc-length array.

    The CSR structure is built once; each shortest-path query writes the
    current lengths into the matrix's ``data`` slots (a permutation,
    O(arcs)) and delegates to :func:`scipy.sparse.csgraph.dijkstra` —
    the C implementation is an order of magnitude faster than a Python
    heap loop, which dominates the FPTAS's runtime.

    Antiparallel arc pairs are unique per (src, dst) because parallel
    cables fold into single capacities upstream, so every arc owns
    exactly one CSR cell.
    """

    def __init__(self, problem: FlowProblem) -> None:
        import scipy.sparse as sp

        self.num_nodes = problem.num_nodes
        n = self.num_nodes
        coo = sp.coo_matrix(
            (
                np.ones(problem.num_arcs),
                (problem.arc_src, problem.arc_dst),
            ),
            shape=(n, n),
        )
        self._matrix = coo.tocsr()
        # Map each arc to its CSR data slot.
        lil_index = sp.csr_matrix(
            (
                np.arange(problem.num_arcs, dtype=np.int64),
                (problem.arc_src, problem.arc_dst),
            ),
            shape=(n, n),
        )
        # tocsr on duplicate-free input preserves per-cell values; the
        # data array of lil_index holds, per CSR slot, the arc index.
        self._slot_to_arc = lil_index.data.astype(np.int64)
        self._arc_to_slot = np.empty(problem.num_arcs, dtype=np.int64)
        self._arc_to_slot[self._slot_to_arc] = np.arange(problem.num_arcs)
        self._arc_dst = problem.arc_dst

    def shortest_path_tree(
        self, lengths: np.ndarray, source: int
    ) -> tuple:
        """One C Dijkstra: (distances, predecessors) from ``source``."""
        from scipy.sparse.csgraph import dijkstra

        self._matrix.data[self._arc_to_slot] = lengths
        dist, predecessors = dijkstra(
            self._matrix,
            directed=True,
            indices=source,
            return_predecessors=True,
        )
        return dist, predecessors, source

    def tree_path(self, tree: tuple, sink: int) -> Optional[np.ndarray]:
        """Arc indices from the tree's source to ``sink`` (None if cut)."""
        dist, predecessors, source = tree
        if sink == source or not np.isfinite(dist[sink]):
            return None
        arcs: List[int] = []
        node = sink
        while node != source:
            prev = int(predecessors[node])
            if prev < 0:
                return None
            row_start = self._matrix.indptr[prev]
            row_end = self._matrix.indptr[prev + 1]
            cols = self._matrix.indices[row_start:row_end]
            slot = row_start + int(np.searchsorted(cols, node))
            arcs.append(int(self._slot_to_arc[slot]))
            node = prev
        arcs.reverse()
        return np.asarray(arcs, dtype=np.int64)

    def shortest_path_arcs(
        self, lengths: np.ndarray, source: int, sink: int
    ) -> Optional[np.ndarray]:
        """Arc indices of a shortest source->sink path (None if cut off)."""
        return self.tree_path(self.shortest_path_tree(lengths, source), sink)
