"""Exact maximum concurrent multi-commodity flow via sparse LP.

The paper: "We assume optimal routing and solve the maximum concurrent
multi-commodity flow problem using a linear programming solver" (§3.1,
citing Leighton & Rao).  This module formulates the source-aggregated
edge-flow LP and solves it with ``scipy.optimize.linprog`` (HiGHS).

Formulation, for demand groups ``g`` with source ``s_g`` and per-sink
demands ``d_g(t)``:

    max   λ
    s.t.  Σ_out f_g  -  Σ_in f_g  =  λ · b_g(v)      ∀ g, v
          Σ_g f_g(a)  ≤  cap(a)                      ∀ arcs a
          f ≥ 0, λ ≥ 0

where ``b_g(s_g) = Σ_t d_g(t)``, ``b_g(t) = -d_g(t)``, else 0.  Source
aggregation is exact for concurrent flow: any per-commodity solution sums
to a group solution, and a group solution decomposes back by flow
decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro import obs
from repro.errors import SolverError
from repro.mcf.commodities import FlowProblem


@dataclass
class MCFResult:
    """Outcome of a concurrent-flow solve.

    ``throughput`` is the optimal ``λ`` (rate per unit demand).
    ``flows`` (optional) has shape ``(num_groups, num_arcs)``.
    """

    throughput: float
    method: str
    flows: Optional[np.ndarray] = None

    def utilization(self, problem: FlowProblem) -> np.ndarray:
        """Per-arc utilization of the solution (requires flows)."""
        if self.flows is None:
            raise SolverError("solve with return_flows=True for utilization")
        return self.flows.sum(axis=0) / problem.arc_cap


def solve_concurrent_exact(
    problem: FlowProblem, return_flows: bool = False
) -> MCFResult:
    """Solve the max concurrent flow LP exactly.

    A demand between disconnected components is not an error: it forces
    the optimum λ = 0, which is returned as such.  Raises
    :class:`SolverError` only on solver-level failure (λ = 0 with zero
    flow is always feasible, so genuine infeasibility cannot occur).
    """
    num_arcs = problem.num_arcs
    num_nodes = problem.num_nodes
    num_groups = problem.num_groups
    if num_groups == 0:
        raise SolverError("no demand groups to solve")
    num_vars = num_groups * num_arcs + 1
    lam_col = num_vars - 1

    # Equality block: flow conservation per (group, node), with -λ·b term.
    rows = []
    cols = []
    vals = []
    for g_index, group in enumerate(problem.groups):
        row_base = g_index * num_nodes
        col_base = g_index * num_arcs
        arc_cols = col_base + np.arange(num_arcs)
        rows.append(row_base + problem.arc_src)
        cols.append(arc_cols)
        vals.append(np.ones(num_arcs))
        rows.append(row_base + problem.arc_dst)
        cols.append(arc_cols)
        vals.append(-np.ones(num_arcs))
        # -λ·b(v): source row gets -total_demand·λ, sinks +d(t)·λ, moved
        # to the LHS as coefficients on the λ column.
        rows.append(np.asarray([row_base + group.source]))
        cols.append(np.asarray([lam_col]))
        vals.append(np.asarray([-group.total_demand]))
        rows.append(row_base + group.sinks)
        cols.append(np.full(len(group.sinks), lam_col))
        vals.append(group.demands)
    a_eq = sp.csr_matrix(
        (
            np.concatenate(vals),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(num_groups * num_nodes, num_vars),
    )
    b_eq = np.zeros(num_groups * num_nodes)

    # Capacity block: Σ_g f_g(a) ≤ cap(a).
    ub_rows = np.tile(np.arange(num_arcs), num_groups)
    ub_cols = np.arange(num_groups * num_arcs)
    a_ub = sp.csr_matrix(
        (np.ones(num_groups * num_arcs), (ub_rows, ub_cols)),
        shape=(num_arcs, num_vars),
    )
    b_ub = problem.arc_cap.astype(np.float64)

    c = np.zeros(num_vars)
    c[lam_col] = -1.0

    # Interior point is an order of magnitude faster than simplex on
    # these node-arc MCF formulations (measured: 15s vs 187s on a
    # jellyfish(k=8) all-to-all instance) and reaches the same optimum;
    # simplex remains as the fallback for the rare IPM non-convergence.
    result = None
    with obs.span("mcf.exact", groups=num_groups, arcs=num_arcs), \
            obs.timer("mcf.exact.solve_s"):
        for method in ("highs-ipm", "highs"):
            result = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=(0, None),
                method=method,
            )
            if result.success:
                break
            obs.incr("mcf.exact.method_fallbacks")
    if result is None or not result.success:
        raise SolverError(f"concurrent-flow LP failed: {result.message}")
    throughput = float(result.x[lam_col])
    obs.incr("mcf.exact.solves")
    obs.set_gauge("mcf.exact.last_objective", throughput)
    if getattr(result, "nit", None) is not None:
        obs.observe("mcf.exact.iterations", int(result.nit))
    flows = None
    if return_flows:
        flows = result.x[:lam_col].reshape(num_groups, num_arcs)
    return MCFResult(throughput=throughput, method="exact-lp", flows=flows)
