"""Maximum concurrent multi-commodity flow: exact LP and FPTAS."""

from repro.mcf.commodities import (
    Commodity,
    DemandGroup,
    FlowProblem,
    build_flow_problem,
    commodity_count,
)
from repro.mcf.decompose import (
    PathFlow,
    decompose_group,
    decompose_solution,
    delivered_per_commodity,
)
from repro.mcf.exact import MCFResult, solve_concurrent_exact
from repro.mcf.approx import solve_concurrent_approx
from repro.mcf.maxflow import (
    concurrent_upper_bound,
    single_pair_max_flow,
    sink_cut_bound,
    source_cut_bound,
)

__all__ = [
    "Commodity",
    "DemandGroup",
    "FlowProblem",
    "MCFResult",
    "PathFlow",
    "build_flow_problem",
    "decompose_group",
    "decompose_solution",
    "delivered_per_commodity",
    "commodity_count",
    "concurrent_upper_bound",
    "single_pair_max_flow",
    "sink_cut_bound",
    "solve_concurrent_approx",
    "solve_concurrent_exact",
    "source_cut_bound",
]
