"""Commodities and flow problems for throughput evaluation (paper §3.1).

The paper measures throughput by solving the **maximum concurrent
multi-commodity flow** problem at switch level: server bandwidth is
relaxed, all switch-switch links have unit capacity, and every commodity
(server pair with a demand) must receive the same rate ``λ`` per unit of
demand; the reported throughput is the maximal ``λ``.

Two modelling consequences are encoded here:

* **Switch contraction** — commodities between servers on the same switch
  are unconstraining under relaxed server bandwidth and are dropped;
  all others become switch-to-switch demands.
* **Source aggregation** — commodities sharing a source switch can share
  flow variables (flow conservation with multiple sinks), shrinking the
  LP by orders of magnitude without changing its optimum.

Links are full-duplex: each cable is two directed arcs of one capacity
unit each.  Incast traffic is therefore the arc-reversal of broadcast
traffic and achieves the identical ``λ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import TrafficError
from repro.topology.elements import Network, ServerId, SwitchId


@dataclass(frozen=True)
class Commodity:
    """A unit of demand from one server to another."""

    src: ServerId
    dst: ServerId
    demand: float = 1.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TrafficError(f"commodity from server {self.src} to itself")
        if self.demand <= 0:
            raise TrafficError(f"non-positive demand {self.demand}")


@dataclass
class DemandGroup:
    """All demands sharing one source switch (aggregated commodities)."""

    source: int
    sinks: np.ndarray
    demands: np.ndarray

    @property
    def total_demand(self) -> float:
        return float(self.demands.sum())


@dataclass
class FlowProblem:
    """A directed, capacitated flow network with aggregated demands.

    Node ids are dense integers (see ``switch_of``/``index_of`` for the
    mapping back to topology switches).  Arcs come in antiparallel pairs
    (full-duplex cables).
    """

    num_nodes: int
    arc_src: np.ndarray
    arc_dst: np.ndarray
    arc_cap: np.ndarray
    groups: List[DemandGroup]
    index_of: Dict[SwitchId, int] = field(default_factory=dict)

    @property
    def num_arcs(self) -> int:
        return int(self.arc_src.shape[0])

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def total_demand(self) -> float:
        return sum(g.total_demand for g in self.groups)

    def reversed(self) -> "FlowProblem":
        """The arc-reversed problem (models incast given broadcast).

        Demands are reversed per-commodity: each (source -> sink, d)
        becomes (sink -> source, d), re-aggregated by the new sources.
        """
        pairs: List[Tuple[int, int, float]] = []
        for g in self.groups:
            for sink, demand in zip(g.sinks, g.demands):
                pairs.append((int(sink), g.source, float(demand)))
        groups = _aggregate(pairs)
        return FlowProblem(
            num_nodes=self.num_nodes,
            arc_src=self.arc_dst.copy(),
            arc_dst=self.arc_src.copy(),
            arc_cap=self.arc_cap.copy(),
            groups=groups,
            index_of=dict(self.index_of),
        )


def build_flow_problem(
    net: Network, commodities: Iterable[Commodity]
) -> FlowProblem:
    """Contract server commodities to switch level and aggregate.

    Same-switch commodities are dropped (relaxed server bandwidth makes
    them unconstraining).  Raises :class:`TrafficError` if *every*
    commodity is dropped — a concurrent-flow value would be meaningless.
    """
    index = net.switch_index()
    pairs: List[Tuple[int, int, float]] = []
    for c in commodities:
        src_sw = index[net.server_switch(c.src)]
        dst_sw = index[net.server_switch(c.dst)]
        if src_sw == dst_sw:
            continue
        pairs.append((src_sw, dst_sw, c.demand))
    if not pairs:
        raise TrafficError(
            "all commodities are same-switch; concurrent flow is unbounded"
        )
    srcs: List[int] = []
    dsts: List[int] = []
    caps: List[float] = []
    for u, v, cap in net.edge_list():
        ui, vi = index[u], index[v]
        srcs.extend((ui, vi))
        dsts.extend((vi, ui))
        caps.extend((cap, cap))
    return FlowProblem(
        num_nodes=len(index),
        arc_src=np.asarray(srcs, dtype=np.int32),
        arc_dst=np.asarray(dsts, dtype=np.int32),
        arc_cap=np.asarray(caps, dtype=np.float64),
        groups=_aggregate(pairs),
        index_of=index,
    )


def _aggregate(pairs: List[Tuple[int, int, float]]) -> List[DemandGroup]:
    """Group (src, dst, demand) triples by source, summing duplicates."""
    by_source: Dict[int, Dict[int, float]] = {}
    for src, dst, demand in pairs:
        sinks = by_source.setdefault(src, {})
        sinks[dst] = sinks.get(dst, 0.0) + demand
    groups = []
    for src in sorted(by_source):
        sinks = by_source[src]
        order = sorted(sinks)
        groups.append(
            DemandGroup(
                source=src,
                sinks=np.asarray(order, dtype=np.int32),
                demands=np.asarray([sinks[t] for t in order], dtype=np.float64),
            )
        )
    return groups


def commodity_count(problem: FlowProblem) -> int:
    """Number of distinct switch-level commodities after aggregation."""
    return sum(len(g.sinks) for g in problem.groups)
