"""Command-line interface: regenerate paper experiments from a shell.

Examples::

    flattree fig5 --ks 4 8 12
    flattree fig7 --ks 4 6 8 --solver exact
    flattree hybrid --k 8 --fractions 0.25 0.5 0.75
    flattree profile --k 16
    flattree convert --k 8 --mode global-random
    flattree compare --k 8                 # side-by-side topology report
    flattree cost --ks 8 16 24             # section 2.7 bill of materials
    flattree schedule --k 8 --technology mems
    flattree export --k 8 --mode global-random --format dot
    flattree downscale --k 8 --floor 0.5
    flattree monitor --k 4 --pattern alltoall   # link utilization heatmap
    flattree fct --ks 4 --monitor          # utilization across a conversion
    flattree info                          # versions + telemetry sinks
    flattree bench --select "fig5"         # durable BENCH_<seq>.json session
    flattree --telemetry fig5 --ks 4      # spans/metrics JSONL to stderr
    flattree --telemetry=run.jsonl fig5   # ... or to a file
    flattree --telemetry=run.jsonl --trace-malloc fig5  # + mem_peak_kb

Every subcommand prints an aligned text table (the library's equivalent
of the paper's figures) to stdout.  The global ``--telemetry`` flag
(before the subcommand) enables the :mod:`repro.obs` subsystem: JSONL
events stream to stderr or the given path, and a final metrics table is
printed after the subcommand finishes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__, obs
from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.profiling import profile_mn
from repro.experiments.fig5_pathlength import run_fig5
from repro.experiments.fig6_pod_pathlength import run_fig6
from repro.experiments.fig7_broadcast import run_fig7
from repro.experiments.fig8_alltoall import run_fig8
from repro.experiments.hybrid import DEFAULT_FRACTIONS, run_hybrid
from repro.topology.clos import fat_tree_params
from repro.topology.stats import server_counts_by_kind


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (console script ``flattree``)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Bare ``--telemetry`` would greedily swallow the subcommand name
    # (argparse nargs="?"); normalize it to the explicit stderr form.
    argv = ["--telemetry=-" if tok == "--telemetry" else tok
            for tok in argv]
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    if args.telemetry is None:
        return args.handler(args)
    return _run_with_telemetry(args)


def _run_with_telemetry(args) -> int:
    """Run a handler under an enabled obs subsystem; print the table."""
    sink = (obs.StderrSink() if args.telemetry in ("-", "")
            else obs.FileSink(args.telemetry))
    obs.registry.reset()
    obs.enable(sink, emit_metric_events=True,
               trace_malloc=True if args.trace_malloc else None)
    try:
        with obs.span("cli", command=args.command):
            code = args.handler(args)
        print("\n== telemetry ==")
        print(obs.render_table())
    finally:
        obs.disable()
    return code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flattree",
        description="Flat-tree (HotNets 2016) reproduction experiments",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--telemetry", nargs="?", const="-", default=None, metavar="PATH",
        help="enable telemetry; JSONL events go to PATH (default: stderr) "
             "and a final metrics table is printed",
    )
    parser.add_argument(
        "--trace-malloc", action="store_true",
        help="with --telemetry: add per-span tracemalloc peak-delta "
             "memory accounting (mem_peak_kb on span events; also "
             f"enabled by {obs.TRACEMALLOC_ENV}=1)",
    )
    sub = parser.add_subparsers(title="experiments", dest="command")

    for name, runner, note in (
        ("fig5", run_fig5, "average path length, entire network"),
        ("fig6", run_fig6, "average path length within Pods"),
        ("fig7", run_fig7, "broadcast/incast throughput"),
        ("fig8", run_fig8, "all-to-all throughput"),
    ):
        p = sub.add_parser(name, help=note)
        p.add_argument("--ks", type=int, nargs="+", default=None,
                       help="fat-tree parameters to sweep")
        p.add_argument("--seed", type=int, default=0)
        if name in ("fig7", "fig8"):
            p.add_argument("--solver", choices=("exact", "approx"),
                           default=None)
        p.set_defaults(handler=_figure_handler(runner, name))

    p = sub.add_parser("hybrid", help="section 3.4 zone-isolation study")
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--fractions", type=float, nargs="+",
                   default=list(DEFAULT_FRACTIONS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--solver", choices=("exact", "approx"), default=None)
    p.set_defaults(handler=_hybrid_handler)

    p = sub.add_parser("profile", help="(m, n) profiling sweep (section 2.4)")
    p.add_argument("--k", type=int, required=True)
    p.set_defaults(handler=_profile_handler)

    p = sub.add_parser("convert", help="convert a flat-tree and summarize")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--mode", choices=[m.value for m in Mode],
                   default=Mode.GLOBAL_RANDOM.value)
    p.set_defaults(handler=_convert_handler)

    p = sub.add_parser("compare",
                       help="side-by-side report of all topologies at one k")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_compare_handler)

    p = sub.add_parser("cost", help="section 2.7 bill of materials")
    p.add_argument("--ks", type=int, nargs="+", default=[8, 16, 24])
    p.set_defaults(handler=_cost_handler)

    p = sub.add_parser("schedule",
                       help="conversion timing per switching technology")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--mode", choices=[m.value for m in Mode],
                   default=Mode.GLOBAL_RANDOM.value)
    p.add_argument("--technology", choices=("mems", "mzi", "packet"),
                   default="mems")
    p.add_argument("--max-batch", type=int, default=64)
    p.set_defaults(handler=_schedule_handler)

    p = sub.add_parser("export", help="dump a topology (dot/json/edges)")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--mode", choices=[m.value for m in Mode],
                   default=Mode.CLOS.value)
    p.add_argument("--format", choices=("dot", "json", "edges"),
                   default="dot")
    p.add_argument("--servers", action="store_true",
                   help="include servers in DOT output")
    p.set_defaults(handler=_export_handler)

    p = sub.add_parser("degradation",
                       help="throughput under random link failures")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.0, 0.05, 0.1, 0.2])
    p.add_argument("--draws", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_degradation_handler)

    p = sub.add_parser("report",
                       help="regenerate every artifact into one markdown file")
    p.add_argument("--out", default="report.md")
    p.add_argument("--scale", choices=("quick", "standard"),
                   default="quick")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_report_handler)

    p = sub.add_parser("fct",
                       help="flow-level FCT per mode under ksp routing")
    p.add_argument("--ks", type=int, nargs="+", default=[4, 6])
    p.add_argument("--flows", type=int, default=24)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--monitor", action="store_true",
                   help="record link utilization across a mid-run "
                        "Clos -> global-random conversion (first k only)")
    p.add_argument("--technology", choices=("mems", "mzi", "packet"),
                   default="mems")
    p.set_defaults(handler=_fct_handler)

    p = sub.add_parser("monitor",
                       help="run a traffic pattern under the network "
                            "monitor; print heatmap + hotspot report")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--mode", choices=[m.value for m in Mode],
                   default=Mode.CLOS.value)
    p.add_argument("--pattern", choices=("alltoall", "hotspot"),
                   default="alltoall")
    p.add_argument("--flows", type=int, default=0,
                   help="cap on flow count (0 = the full pattern)")
    p.add_argument("--interval", type=float, default=0.0,
                   help="sampling interval in simulated seconds "
                        "(0 = every allocation event)")
    p.add_argument("--retention", type=int, default=None,
                   help="ring-buffer samples kept per link")
    p.add_argument("--bins", type=int, default=12)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_monitor_handler)

    p = sub.add_parser("chaos",
                       help="fault-injection sweep: conversion resilience "
                            "per fault rate and technology")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.0, 0.05, 0.1, 0.2])
    p.add_argument("--technologies", nargs="+",
                   choices=("mems", "mzi", "packet"),
                   default=["mems", "mzi", "packet"])
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-batch", type=int, default=16)
    p.set_defaults(handler=_chaos_handler)

    p = sub.add_parser("downscale",
                       help="sleep core switches under a throughput floor")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--floor", type=float, default=0.5)
    p.add_argument("--flows", type=int, default=8,
                   help="random idle flows to protect")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_downscale_handler)

    p = sub.add_parser("health",
                       help="one-shot fabric health report from a "
                            "recorded telemetry JSONL trace")
    p.add_argument("trace", metavar="TRACE",
                   help="telemetry JSONL file (record one with "
                        "--telemetry=PATH)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print the HealthReport as deterministic JSON "
                        "instead of text")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON HealthReport to PATH")
    p.add_argument("--prom", default=None, metavar="PATH",
                   help="write Prometheus text exposition to PATH")
    p.add_argument("--expect", default=None, metavar="RULES",
                   help="comma-separated alert rules the trace must have "
                        "fired, exactly ('' = none); exit 1 on mismatch")
    p.set_defaults(handler=_health_handler)

    p = sub.add_parser("top",
                       help="live plain-refresh fabric dashboard over a "
                            "telemetry JSONL trace")
    p.add_argument("--trace", required=True, metavar="PATH",
                   help="telemetry JSONL file to replay (or tail)")
    p.add_argument("--once", action="store_true",
                   help="consume the whole trace, print one final frame "
                        "(no ANSI), exit")
    p.add_argument("--follow", action="store_true",
                   help="keep tailing the trace for new events")
    p.add_argument("--every", type=int, default=None, metavar="N",
                   help="repaint every N consumed events")
    p.add_argument("--top", type=int, default=10, dest="topk",
                   help="hot links shown per frame")
    p.set_defaults(handler=_top_handler)

    p = sub.add_parser("heal",
                       help="closed-loop remediation: replay a telemetry "
                            "trace through the self-healing plane, tail "
                            "it live, or run the regret/soak harnesses")
    p.add_argument("trace", nargs="?", default=None, metavar="TRACE",
                   help="telemetry JSONL file to replay (omit with "
                        "--regret/--soak)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print the remediation ledger as deterministic "
                        "JSON instead of text")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON ledger to PATH")
    p.add_argument("--expect", default=None, metavar="ACTIONS",
                   help="comma-separated action kinds the loop must have "
                        "completed, exactly ('' = none); exit 1 on "
                        "mismatch")
    p.add_argument("--follow", action="store_true",
                   help="live mode: tail TRACE for new events until "
                        "Ctrl-C (or --max-polls consecutive empty reads)")
    p.add_argument("--poll", type=float, default=0.25, metavar="S",
                   help="--follow: seconds between tail reads")
    p.add_argument("--max-polls", type=int, default=None, metavar="N",
                   help="--follow: stop after N consecutive empty reads")
    p.add_argument("--regret", action="store_true",
                   help="run the seeded three-arm fault storm and print "
                        "the MTTR/regret report (exit 1 unless the "
                        "closed loop beats the no-op baseline)")
    p.add_argument("--soak", action="store_true",
                   help="run the flowsim soak: a mid-run leg failure and "
                        "the loop's repair land as TopologyEvents")
    p.add_argument("--k", type=int, default=4,
                   help="fat-tree parameter for --regret/--soak")
    p.add_argument("--seed", type=int, default=7,
                   help="storm/workload seed for --regret/--soak")
    p.add_argument("--duration", type=float, default=12.0,
                   help="--regret: storm horizon in trace seconds")
    p.add_argument("--episodes", type=int, default=2,
                   help="--regret: scripted hotspot episodes")
    p.add_argument("--flows", type=int, default=24,
                   help="--soak: workload size")
    p.set_defaults(handler=_heal_handler)

    p = sub.add_parser("bench",
                       help="run pytest benchmarks/ and record a durable "
                            "BENCH_<seq>.json perf session")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="session file to write (default: the next free "
                        "repo-root BENCH_<seq>.json)")
    p.add_argument("--select", default=None, metavar="EXPR",
                   help="pytest -k expression limiting which benches run")
    p.add_argument("--benchmarks", default=None, metavar="DIR",
                   help="benchmark directory (default: the checkout's "
                        "benchmarks/)")
    p.add_argument("--label", default="bench",
                   help="free-form session label recorded in the file")
    p.set_defaults(handler=_bench_handler)

    p = sub.add_parser("hotspots",
                       help="run the sampling-profiler campaign battery "
                            "and record a durable HOTSPOTS_<seq>.json")
    p.add_argument("--k", type=int, default=32,
                   help="fat-tree parameter for the build/convert/KSP "
                        "stages (default 32; MCF and flowsim stages are "
                        "capped internally)")
    p.add_argument("--hz", type=float, default=97.0,
                   help="sampling rate; a prime avoids aliasing "
                        "(default 97; raise for short campaigns)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="artifact to write (default: the next free "
                        "repo-root HOTSPOTS_<seq>.json)")
    p.add_argument("--label", default="hotspots",
                   help="free-form campaign label recorded in the file")
    p.add_argument("--top", type=int, default=60,
                   help="functions to keep in the artifact (default 60)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--flows", type=int, default=200,
                   help="flow count for the flowsim FCT stage")
    p.set_defaults(handler=_hotspots_handler)

    p = sub.add_parser("trend",
                       help="trajectory-aware regression analytics over "
                            "the recorded BENCH_*/HOTSPOTS_* sessions")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="directory scanned for numbered sessions "
                        "(default: the repo root)")
    p.add_argument("--window", type=int, default=None,
                   help="trailing sessions the noise model is fitted to "
                        "(default 8)")
    p.add_argument("--sigmas", type=float, default=None,
                   help="band half-width in robust MAD sigmas (default 4)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON report here")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of text")
    p.set_defaults(handler=_trend_handler)

    p = sub.add_parser("info",
                       help="package version, dependencies, telemetry sinks")
    p.set_defaults(handler=_info_handler)
    return parser


def _figure_handler(runner, name):
    def handler(args) -> int:
        kwargs = {"ks": args.ks, "seed": args.seed}
        if hasattr(args, "solver"):
            kwargs["solver"] = args.solver
        result = runner(**kwargs)
        print(f"== {result.experiment} ==")
        print(result.table())
        return 0

    return handler


def _hybrid_handler(args) -> int:
    result = run_hybrid(
        k=args.k,
        fractions=tuple(args.fractions),
        seed=args.seed,
        solver=args.solver,
    )
    print(f"== {result.experiment} ==")
    print(result.table())
    return 0


def _profile_handler(args) -> int:
    result = profile_mn(fat_tree_params(args.k))
    print(f"== (m, n) profiling, k={args.k} ==")
    header = f"{'m':>3}  {'n':>3}  {'pattern':>8}  {'APL':>8}  best"
    print(header)
    print("-" * len(header))
    for row in result.as_rows():
        mark = "  <-- minimum" if row["best"] else ""
        print(
            f"{row['m']:>3}  {row['n']:>3}  {row['pattern']:>8}  "
            f"{row['apl']:>8.4f}{mark}"
        )
    for cand in result.skipped:
        print(f"# skipped m={cand.m} n={cand.n}: {cand.reason}")
    return 0


def _bench_handler(args) -> int:
    """Run the bench suite and write one BENCH_<seq>.json session."""
    import json
    import os
    import subprocess
    import tempfile
    from pathlib import Path

    from repro.obs import bench as bench_sessions

    root = bench_sessions.repo_root()
    bench_dir = (Path(args.benchmarks) if args.benchmarks
                 else root / "benchmarks")
    if not bench_dir.is_dir():
        print(f"bench: no benchmark directory at {bench_dir} "
              "(run from a repo checkout or pass --benchmarks DIR)",
              file=sys.stderr)
        return 2
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print("bench: pytest-benchmark is required "
              "(pip install -e .[dev])", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else bench_sessions.next_bench_path(root)

    with tempfile.TemporaryDirectory() as tmp:
        bench_json = Path(tmp) / "pytest-benchmark.json"
        cmd = [sys.executable, "-m", "pytest", str(bench_dir),
               "--benchmark-only", "-q", f"--benchmark-json={bench_json}"]
        if args.select:
            cmd += ["-k", args.select]
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        proc = subprocess.run(cmd, cwd=str(root), env=env)
        if proc.returncode != 0:
            print(f"bench: pytest exited {proc.returncode}; "
                  "no session written", file=sys.stderr)
            return 1
        raw = json.loads(bench_json.read_text(encoding="utf-8"))

    stats = bench_sessions.parse_pytest_benchmark_json(raw)
    metrics = None
    metrics_path = bench_dir / "METRICS.json"
    if metrics_path.is_file():
        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
    session = bench_sessions.build_session(
        stats, metrics, label=args.label, root=root)
    bench_sessions.write_session(out, session)
    obs.event("perf.bench_session", out=str(out), benches=len(stats))
    print(f"bench: wrote {out} — {len(stats)} benchmarks, "
          f"commit {session['environment'].get('git_commit') or '?'}")
    for key, entry in sorted(session["benchmarks"].items()):
        print(f"  {entry['wall_s']:>10.4f}s  {key}")
    print("compare sessions with: python -m tools.perfreport compare "
          "BASE NEW (see docs/performance.md)")
    return 0


def _hotspots_handler(args) -> int:
    """Run the hotspot campaign and write one HOTSPOTS_<seq>.json."""
    from pathlib import Path

    from repro.errors import ReproError
    from repro.experiments.hotspot_campaign import run_campaign
    from repro.obs import bench as bench_sessions
    from repro.obs import hotspots as hotspot_docs

    if args.k < 4 or args.k % 2:
        print(f"hotspots: k must be an even number >= 4, got {args.k}",
              file=sys.stderr)
        return 2
    root = bench_sessions.repo_root()
    out = (Path(args.out) if args.out
           else hotspot_docs.next_hotspots_path(root))
    result = run_campaign(k=args.k, hz=args.hz, seed=args.seed,
                          flows=args.flows)
    document = hotspot_docs.build_document(
        result.profile, result.stages, k=args.k, label=args.label,
        top=args.top, root=root)
    try:
        hotspot_docs.write_document(out, document)
    except ReproError as exc:
        print(f"hotspots: {exc}", file=sys.stderr)
        return 1
    obs.event("perf.hotspot_session", out=str(out),
              functions=len(document["functions"]),
              samples=result.profile.samples)
    print(hotspot_docs.render_document(document, top=args.top))
    print(f"\nhotspots: wrote {out} — {result.profile.samples} samples, "
          f"{len(document['functions'])} functions")
    print("inspect with: python -m tools.perfreport hotspots "
          f"{out.name} (see docs/performance.md)")
    return 0


def _trend_handler(args) -> int:
    """Judge the recorded perf trajectory against its own noise model.

    Exit codes follow the comparator convention: 0 = the newest
    sessions sit inside their MAD noise bands, 1 = at least one metric
    stepped up (regression).
    """
    import json
    from pathlib import Path

    from repro.obs import bench as bench_sessions
    from repro.obs import trend as trend_engine

    root = Path(args.root) if args.root else bench_sessions.repo_root()
    kwargs = {}
    if args.window is not None:
        kwargs["window"] = args.window
    if args.sigmas is not None:
        kwargs["sigmas"] = args.sigmas
    report = trend_engine.analyze_trajectory(root, **kwargs)
    if args.out:
        Path(args.out).write_text(
            json.dumps(trend_engine.render_json(report), indent=1,
                       sort_keys=True) + "\n", encoding="utf-8")
        print(f"trend: wrote {args.out}")
    print(json.dumps(trend_engine.render_json(report), indent=1,
                     sort_keys=True)
          if args.json else trend_engine.render_text(report))
    trend_engine.emit_trend_event(report)
    return report.exit_code


def _health_handler(args) -> int:
    """Replay a telemetry trace through the health plane and judge it.

    Exit codes follow the flatlint convention: 0 = healthy (or the
    ``--expect``-ed alerts fired, exactly), 1 = degraded or expectation
    mismatch, 2 = usage/IO error.
    """
    from pathlib import Path

    from repro import health
    from repro.errors import ReproError

    trace = Path(args.trace)
    if not trace.is_file():
        print(f"health: no trace at {trace}", file=sys.stderr)
        return 2
    aggregator = health.new_aggregator()
    try:
        with trace.open("r", encoding="utf-8") as handle:
            aggregator.replay_lines(handle)
    except (ReproError, OSError) as exc:
        print(f"health: {exc}", file=sys.stderr)
        return 2
    report = health.HealthReport(aggregator)

    if args.out:
        Path(args.out).write_text(report.to_json(), encoding="utf-8")
    if args.prom:
        Path(args.prom).write_text(
            health.prometheus_text(aggregator, report), encoding="utf-8")
    print(report.to_json() if args.as_json else report.render_text(),
          end="")

    if args.expect is not None:
        expected = {name.strip() for name in args.expect.split(",")
                    if name.strip()}
        fired = {str(entry["rule"]) for entry in aggregator.log
                 if entry["event"] == "alert_firing"}
        if fired != expected:
            print(
                f"health: expected alerts {sorted(expected)!r}, "
                f"trace fired {sorted(fired)!r}", file=sys.stderr)
            return 1
        return 0
    return 0 if report.healthy else 1


def _top_handler(args) -> int:
    from pathlib import Path

    from repro import health
    from repro.errors import ReproError
    from repro.health.top import REFRESH_EVENTS

    trace = Path(args.trace)
    if not args.follow and not trace.is_file():
        print(f"top: no trace at {trace}", file=sys.stderr)
        return 2
    try:
        health.run_top(
            str(trace),
            out=sys.stdout,
            aggregator=health.new_aggregator(),
            once=args.once,
            follow=args.follow,
            refresh_events=(args.every if args.every is not None
                            else REFRESH_EVENTS),
            k=args.topk,
        )
    except (ReproError, OSError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print()
    return 0


def _heal_handler(args) -> int:
    """Drive the closed-loop remediation plane from the CLI.

    Exit codes follow the flatlint convention: 0 = converged (or the
    ``--expect``-ed actions completed, exactly; or the closed loop
    beat the no-op baseline under ``--regret``), 1 = failed actions /
    expectation mismatch / gate miss, 2 = usage or IO error.
    """
    from pathlib import Path

    from repro import selfheal
    from repro.errors import ReproError

    if args.regret:
        try:
            report = selfheal.run_regret(
                k=args.k, seed=args.seed, duration=args.duration,
                episodes=args.episodes)
        except ReproError as exc:
            print(f"heal: {exc}", file=sys.stderr)
            return 2
        print(report.table())
        if args.out:
            Path(args.out).write_text(report.ledger.to_json(),
                                      encoding="utf-8")
        return 0 if report.closed_beats_noop else 1

    if args.soak:
        from repro.experiments.selfheal_soak import run_selfheal_soak

        try:
            result = run_selfheal_soak(
                k=args.k, flows=args.flows, seed=args.seed)
        except ReproError as exc:
            print(f"heal: {exc}", file=sys.stderr)
            return 2
        print(result.table())
        if args.out:
            Path(args.out).write_text(result.ledger.to_json(),
                                      encoding="utf-8")
        return 0 if result.repaired else 1

    if not args.trace:
        print("heal: TRACE is required unless --regret/--soak",
              file=sys.stderr)
        return 2
    trace = Path(args.trace)
    if args.follow:
        loop = selfheal.SelfHealLoop(
            str(trace), poll_s=args.poll, max_polls=args.max_polls)
        try:
            with loop:
                while not loop.finished.wait(0.2):
                    pass
        except KeyboardInterrupt:
            print()
        if loop.error is not None:
            print(f"heal: loop died: {loop.error}", file=sys.stderr)
            return 2
        engine = loop.engine
    else:
        if not trace.is_file():
            print(f"heal: no trace at {trace}", file=sys.stderr)
            return 2
        try:
            _, engine = selfheal.replay_path(str(trace))
        except ReproError as exc:
            print(f"heal: {exc}", file=sys.stderr)
            return 2

    ledger = engine.ledger
    if args.out:
        Path(args.out).write_text(ledger.to_json(), encoding="utf-8")
    print(ledger.to_json() if args.as_json
          else ledger.render_text() + "\n", end="")
    if args.expect is not None:
        expected = {name.strip() for name in args.expect.split(",")
                    if name.strip()}
        done = set(ledger.succeeded_actions())
        if done != expected:
            print(f"heal: expected actions {sorted(expected)!r}, "
                  f"loop completed {sorted(done)!r}", file=sys.stderr)
            return 1
        return 0
    return 1 if ledger.by_status("failed") else 0


def _info_handler(args) -> int:
    import platform

    import networkx

    print(f"repro {__version__}")
    print(f"python {platform.python_version()} on {platform.system()}")
    print(f"networkx {networkx.__version__}")
    for dep in ("numpy", "scipy"):
        try:
            module = __import__(dep)
            print(f"{dep} {module.__version__}")
        except ImportError:
            print(f"{dep} (not installed)")
    if obs.enabled():
        print(f"telemetry: enabled -> {obs.current_sink().describe()}")
    else:
        print("telemetry: disabled (run with --telemetry[=PATH])")
    from repro.monitor import CAPABILITIES, DEFAULT_INTERVAL, DEFAULT_RETENTION

    interval = ("every event" if DEFAULT_INTERVAL == 0
                else f"{DEFAULT_INTERVAL:g}s")
    print(
        f"monitor: events {'/'.join(CAPABILITIES)} -> telemetry sinks; "
        f"sampling interval {interval}, "
        f"retention {DEFAULT_RETENTION} samples/link "
        f"(flattree monitor --help)"
    )
    from repro.health import default_rules, default_slos

    print(
        f"health: {len(default_rules())} alert rules + "
        f"{len(default_slos())} SLOs over streaming rollups "
        "(flattree health TRACE, flattree top --trace PATH, "
        "docs/health.md)"
    )
    from repro.selfheal import default_policy as selfheal_policy

    print(
        f"selfheal: closed-loop remediation, "
        f"{len(selfheal_policy().rules)} policy rules + anti-flap "
        "guards + deterministic ledger "
        "(flattree heal, docs/robustness.md)"
    )
    try:
        from tools.flatlint import capability_line
    except ImportError:
        # Installed outside a repo checkout: the lint tooling is not
        # on the path, but the library works fine without it.
        print("lint: flatlint unavailable (run from a repo checkout; "
              "see docs/static-analysis.md)")
    else:
        print(f"lint: {capability_line()}")
    from repro.obs import bench as bench_sessions
    from repro.obs import hotspots as hotspot_docs

    root = bench_sessions.repo_root()
    sessions = bench_sessions.bench_paths(root)
    campaigns = hotspot_docs.hotspot_paths(root)
    print(
        "perf: span-tree profiler + folded-stack export "
        "(python -m tools.perfreport profile/flamegraph), "
        f"bench trajectory {len(sessions)} BENCH_*.json session(s) "
        "(flattree bench, docs/performance.md), differential analysis "
        "(perfreport diff: span-tree/hotspot/bench deltas + "
        "differential flamegraphs), trajectory trend gate with MAD "
        "noise bands (flattree trend, perfreport trend)"
    )
    print(
        "hotspots: sampling profiler + progress heartbeats, "
        f"{len(campaigns)} HOTSPOTS_*.json campaign(s) "
        "(flattree hotspots, python -m tools.perfreport hotspots)"
    )
    return 0


def _convert_handler(args) -> int:
    design = FlatTreeDesign.for_fat_tree(args.k)
    controller = Controller(FlatTree(design))
    plan = controller.apply_mode(Mode(args.mode))
    net = controller.network
    print(f"== flat-tree(k={args.k}) -> {args.mode} ==")
    print(f"plan: {plan.summary()}")
    for stage in plan.stages:
        print(f"  - {stage}")
    print(
        f"network: {net.num_switches} switches, {net.num_servers} servers, "
        f"{net.num_cables} cables"
    )
    print(f"servers by switch kind: {server_counts_by_kind(net)}")
    return 0


def _compare_handler(args) -> int:
    from repro.analysis.report import compare_networks
    from repro.core.conversion import convert
    from repro.experiments.common import baseline_networks

    baselines = baseline_networks(args.k, seed=args.seed)
    ft = FlatTree(FlatTreeDesign.for_fat_tree(args.k))
    nets = [
        baselines["fat-tree"],
        convert(ft, Mode.GLOBAL_RANDOM, name="flat-tree[global]"),
        convert(ft, Mode.LOCAL_RANDOM, name="flat-tree[local]"),
        baselines["random graph"],
        baselines["two-stage"],
    ]
    print(f"== topology comparison, k={args.k} ==")
    print(compare_networks(nets, seed=args.seed))
    return 0


def _cost_handler(args) -> int:
    from repro.core.cost import bill_of_materials, relative_cost

    print("== section 2.7 cost analysis ==")
    header = (f"{'k':>3}  {'4-port':>7}  {'6-port':>7}  {'extra cables':>12}  "
              f"{'side bundles':>12}  {'rel. cost':>9}")
    print(header)
    print("-" * len(header))
    for k in args.ks:
        design = FlatTreeDesign.for_fat_tree(k)
        bom = bill_of_materials(design)
        print(
            f"{k:>3}  {bom.four_port_converters:>7}  "
            f"{bom.six_port_converters:>7}  {bom.extra_cables:>12}  "
            f"{bom.side_bundles:>12}  {relative_cost(design):>9.3f}"
        )
    print("# rel. cost assumes a converter port costs 0.1 switch ports")
    return 0


def _schedule_handler(args) -> int:
    from repro.core.reconfigure import (
        MACH_ZEHNDER,
        MEMS_OPTICAL,
        PACKET_CHIP,
        schedule,
    )

    tech = {"mems": MEMS_OPTICAL, "mzi": MACH_ZEHNDER,
            "packet": PACKET_CHIP}[args.technology]
    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(args.k)))
    before = controller.network
    plan = controller.apply_mode(Mode(args.mode))
    sched = schedule(plan, before, technology=tech,
                     max_batch=args.max_batch)
    print(f"== conversion schedule, k={args.k} -> {args.mode} ==")
    print(f"plan: {plan.summary()}")
    print(f"schedule: {sched.summary()}")
    return 0


def _export_handler(args) -> int:
    from repro.core.conversion import convert
    from repro.topology.export import to_dot, to_edge_list, to_json_dict

    net = convert(FlatTree(FlatTreeDesign.for_fat_tree(args.k)),
                  Mode(args.mode))
    if args.format == "dot":
        print(to_dot(net, include_servers=args.servers))
    elif args.format == "json":
        import json

        print(json.dumps(to_json_dict(net), indent=1, sort_keys=True))
    else:
        print(to_edge_list(net))
    return 0


def _degradation_handler(args) -> int:
    from repro.experiments.degradation import run_degradation

    result = run_degradation(
        k=args.k, fractions=tuple(args.fractions), draws=args.draws,
        seed=args.seed,
    )
    print(f"== {result.experiment} ==")
    print(result.table())
    return 0


def _chaos_handler(args) -> int:
    from repro.experiments.chaos_sweep import run_chaos_sweep

    result = run_chaos_sweep(
        k=args.k,
        rates=tuple(args.rates),
        technologies=tuple(
            _technology_by_name(name) for name in args.technologies
        ),
        trials=args.trials,
        seed=args.seed,
        max_batch=args.max_batch,
    )
    print(
        f"== chaos sweep: conversion resilience, k={result.k}, "
        f"{result.trials} trials/point, seed {result.seed} =="
    )
    print(result.table())
    return 0


def _report_handler(args) -> int:
    from repro.experiments.report import ReportScale, write_report

    scale = (ReportScale.standard() if args.scale == "standard"
             else ReportScale.quick())
    report = write_report(args.out, scale=scale, seed=args.seed)
    print(f"wrote {args.out}: {len(report.results)} experiments at "
          f"scale {scale.name!r}")
    return 0


def _fct_handler(args) -> int:
    from repro.experiments.fct import run_fct

    if args.monitor:
        return _fct_monitor_handler(args)
    result = run_fct(ks=tuple(args.ks), flows=args.flows, seed=args.seed)
    print(f"== {result.experiment} ==")
    print(result.table())
    return 0


def _technology_by_name(name: str):
    from repro.core.reconfigure import (
        MACH_ZEHNDER,
        MEMS_OPTICAL,
        PACKET_CHIP,
    )

    return {"mems": MEMS_OPTICAL, "mzi": MACH_ZEHNDER,
            "packet": PACKET_CHIP}[name]


def _fct_monitor_handler(args) -> int:
    from repro.experiments.fct import run_fct_monitored
    from repro.monitor import heatmap_table, hotspot_report

    k = args.ks[0]
    run = run_fct_monitored(
        k=k, flows=args.flows, seed=args.seed,
        technology=_technology_by_name(args.technology),
    )
    print(f"== monitored FCT across a live conversion, k={k} ==")
    print(f"plan: {run.plan_summary}")
    print(f"schedule: {run.schedule.summary()}")
    print(
        f"conversion at t={run.t_convert:.4f}, "
        f"fabric restored at t={run.t_restored:.4f}"
    )
    print(
        f"clos phase: {len(run.before.completed)} flows, "
        f"mean FCT {run.before.mean_fct:.4f}; converted phase: "
        f"{len(run.after.completed)} flows, "
        f"mean FCT {run.after.mean_fct:.4f}"
    )
    print(
        f"disruption: {run.disrupted_fraction:.3f} of in-flight flows "
        f"crossed a blinking link; {run.dark_traffic * 1e3:.4f} "
        f"flow-ms traversed dark links"
    )
    print()
    print(heatmap_table(run.monitor, top=args.flows // 4 or 4))
    print()
    print(hotspot_report(run.monitor))
    return 0


def _monitor_handler(args) -> int:
    import random

    from repro.experiments.fct import _hotspot_workload
    from repro.flowsim.simulator import FlowSimulator, FlowSpec
    from repro.monitor import NetworkMonitor, heatmap_table, hotspot_report

    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(args.k)))
    controller.apply_mode(Mode(args.mode))
    net = controller.network
    rng = random.Random(args.seed)
    if args.pattern == "alltoall":
        pairs = [(a, b) for a in net.servers() for b in net.servers()
                 if a != b]
        if args.flows and args.flows < len(pairs):
            pairs = rng.sample(pairs, args.flows)
        flows = [FlowSpec(i, a, b, size=1.0)
                 for i, (a, b) in enumerate(pairs)]
    else:
        flows = _hotspot_workload(net.num_servers, args.flows or 24, rng)

    kwargs = {"interval": args.interval}
    if args.retention is not None:
        kwargs["retention"] = args.retention
    monitor = NetworkMonitor(net, **kwargs)
    sim = FlowSimulator(net, controller.route, monitor=monitor).run(flows)

    print(f"== network monitor: {args.pattern} on {net.name} "
          f"(k={args.k}) ==")
    print(f"{monitor.describe()}")
    print(
        f"{len(flows)} flows, mean FCT {sim.mean_fct:.4f}, "
        f"makespan {sim.makespan:.4f}"
    )
    print()
    print(heatmap_table(monitor, bins=args.bins, top=args.top))
    print()
    print(hotspot_report(monitor, top=args.top))
    return 0


def _downscale_handler(args) -> int:
    import random

    from repro.core.scaling import downscale_plan
    from repro.mcf.commodities import Commodity
    from repro.topology.fattree import build_fat_tree

    net = build_fat_tree(args.k)
    rng = random.Random(args.seed)
    servers = list(range(net.num_servers))
    workload = []
    while len(workload) < args.flows:
        a, b = rng.sample(servers, 2)
        if net.server_switch(a) != net.server_switch(b):
            workload.append(Commodity(a, b))
    plan = downscale_plan(net, workload,
                          min_throughput_fraction=args.floor)
    print(f"== downscale fat-tree(k={args.k}), floor {args.floor} ==")
    print(plan.summary())
    print(f"baseline {plan.baseline_throughput:.4f} -> "
          f"achieved {plan.achieved_throughput:.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
