"""Exception hierarchy for the flat-tree reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation on it is invalid.

    Examples: adding a cable to an unknown switch, exceeding a switch's
    port budget, or requesting a builder with inconsistent parameters.
    """


class PortBudgetError(TopologyError):
    """A switch ran out of physical ports."""


class ConfigurationError(ReproError):
    """An invalid converter-switch or conversion-engine configuration.

    Raised, for instance, when a 4-port converter is asked to take the
    ``side`` configuration, or when paired 6-port converters are given
    incompatible configurations.
    """


class WiringError(ReproError):
    """Pod-core or inter-Pod wiring parameters are inconsistent."""


class SolverError(ReproError):
    """An optimization (LP / approximation) failed to produce a solution."""


class TrafficError(ReproError):
    """A traffic pattern or placement request cannot be satisfied."""


class RoutingError(ReproError):
    """A routing computation failed (e.g. no path between endpoints)."""
