"""Fluid flow-level simulator: arrivals, departures, completion times.

A discrete-event simulator over the max-min fair allocator: between
events every active flow transfers at its fair rate; events are flow
arrivals and completions.  Rates are recomputed at each event (ideal
fluid congestion control), which is the standard flow-level model used
to study data center topologies when packet-level detail is not needed.

This extends the paper's evaluation (which is LP-only) with
*routing-sensitive, time-varying* behavior: e.g. how flow completion
times change when the controller converts the topology under load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError
from repro.flowsim.fairshare import RoutedFlow, max_min_fair_rates
from repro.obs.stats import nearest_rank_quantile
from repro.routing.base import Path
from repro.topology.elements import Network


@dataclass(frozen=True)
class FlowSpec:
    """A flow to simulate: endpoints are switch-level paths via a router.

    ``size`` is in capacity-units x time (a size of 1.0 takes 1.0 time
    units at full link rate).
    """

    flow_id: int
    src_server: int
    dst_server: int
    size: float
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ReproError(f"flow {self.flow_id} has non-positive size")
        if self.arrival < 0:
            raise ReproError(f"flow {self.flow_id} arrives before t=0")


@dataclass
class CompletedFlow:
    """Simulation outcome for one flow."""

    spec: FlowSpec
    start: float
    finish: float
    path_hops: int
    path: Optional[Path] = None

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class FailedFlow:
    """A flow the simulation could not finish after a topology event.

    Its path crossed a link that died mid-run and the router found no
    surviving replacement — the flowsim analogue of a connection reset.
    """

    spec: FlowSpec
    start: float
    failed_at: float
    remaining: float
    reason: str = ""


@dataclass
class SimulationResult:
    """All completions plus derived statistics."""

    completed: List[CompletedFlow] = field(default_factory=list)
    failed: List[FailedFlow] = field(default_factory=list)
    rerouted: int = 0

    @property
    def mean_fct(self) -> float:
        if not self.completed:
            raise ReproError("no completed flows")
        return sum(c.duration for c in self.completed) / len(self.completed)

    @property
    def p99_fct(self) -> float:
        if not self.completed:
            raise ReproError("no completed flows")
        return nearest_rank_quantile(
            (c.duration for c in self.completed), 0.99
        )

    @property
    def makespan(self) -> float:
        if not self.completed:
            raise ReproError("no completed flows")
        return max(c.finish for c in self.completed)


#: A router maps (src_server, dst_server, flow_id) to a concrete path.
Router = Callable[[int, int, int], Path]


@dataclass(frozen=True)
class TopologyEvent:
    """A mid-run topology change the simulator must absorb at ``t``.

    ``net`` replaces the simulator's network (e.g. the degraded
    materialization after a failure, or the post-conversion network);
    ``router`` optionally replaces the routing function — when omitted
    the existing router keeps serving, which is only safe if it routes
    over the new network (e.g. a controller whose ``network`` property
    already reflects the change).
    """

    t: float
    net: Network
    router: Optional[Router] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ReproError(f"topology event before t=0 ({self.t})")


def _path_alive(path: Path, net: Network) -> bool:
    return all(net.capacity(u, v) > 0 for u, v in path.edges())


class FlowSimulator:
    """Discrete-event fluid simulation over a fixed topology.

    ``monitor`` (a :class:`repro.monitor.NetworkMonitor`) receives the
    per-link allocation of every rate recomputation, stamped with
    simulated time — the flowsim side of the network monitoring plane.
    ``None`` (the default) keeps the event loop monitoring-free.
    """

    def __init__(self, net: Network, router: Router,
                 monitor=None) -> None:
        self.net = net
        self.router = router
        self.monitor = monitor

    def run(
        self,
        flows: List[FlowSpec],
        max_events: Optional[int] = None,
        events: Sequence[TopologyEvent] = (),
    ) -> SimulationResult:
        """Simulate until every flow completes or fails.

        Rates are recomputed at each arrival/completion.  Flows between
        servers on one switch complete at infinite rate (the fabric is
        not involved), consistent with the relaxed-server-bandwidth
        model; their FCT is 0.

        ``events`` injects mid-run :class:`TopologyEvent` changes: at
        each event the network (and optionally the router) is swapped,
        and every active flow whose path crosses a now-dead link is
        re-routed over the surviving topology — or, when the router
        finds no path, recorded in :attr:`SimulationResult.failed`.
        """
        if not flows:
            raise ReproError("nothing to simulate")
        ids = [f.flow_id for f in flows]
        if len(set(ids)) != len(ids):
            raise ReproError("flow ids must be unique")

        arrivals = sorted(flows, key=lambda f: (f.arrival, f.flow_id))
        pending = list(arrivals)
        topo = sorted(events, key=lambda e: e.t)
        active: Dict[int, FlowSpec] = {}
        remaining: Dict[int, float] = {}
        paths: Dict[int, Path] = {}
        result = SimulationResult()
        budget = max_events if max_events is not None else (
            10 * len(flows) + 10 * len(topo) + 100
        )

        with obs.span("flowsim.run", flows=len(flows), net=self.net.name), \
                obs.timer("flowsim.run_s"):
            self._event_loop(pending, active, remaining, paths, result,
                             budget, topo)
        return result

    def _event_loop(self, pending, active, remaining, paths, result,
                    budget, topo=None) -> None:
        topo = list(topo or [])
        now = 0.0
        events = 0
        recomputes = 0
        progress = obs.ProgressTracker(
            "flowsim.run", total=len(pending) + len(active))
        while pending or active:
            events += 1
            if events > budget:
                raise ReproError(
                    f"simulation exceeded {budget} events (livelock?)"
                )
            # Apply due topology changes first: router swaps must
            # precede this instant's admissions and rate recomputation.
            while topo and topo[0].t <= now + 1e-12:
                self._apply_topology(topo.pop(0), now, active, remaining,
                                     paths, result)
            # Admit all arrivals at or before `now`.
            while pending and pending[0].arrival <= now + 1e-12:
                spec = pending.pop(0)
                path = self.router(spec.src_server, spec.dst_server,
                                   spec.flow_id)
                active[spec.flow_id] = spec
                remaining[spec.flow_id] = spec.size
                paths[spec.flow_id] = path
            if not active:
                if not pending:
                    break  # a topology event failed the last flows
                now = pending[0].arrival
                if topo and topo[0].t < now:
                    now = topo[0].t
                continue

            rates = max_min_fair_rates(
                self.net,
                [RoutedFlow(fid, paths[fid]) for fid in active],
                monitor=self.monitor,
                now=now,
            ).rates
            recomputes += 1
            # Next event: earliest completion vs next arrival.
            next_completion = math.inf
            for fid in active:
                rate = rates[fid]
                if rate <= 0:
                    raise ReproError(f"flow {fid} starved (rate 0)")
                if math.isinf(rate):
                    next_completion = 0.0
                    break
                next_completion = min(next_completion,
                                      remaining[fid] / rate)
            next_arrival = pending[0].arrival - now if pending else math.inf
            next_topo = topo[0].t - now if topo else math.inf
            step = min(next_completion, next_arrival, max(next_topo, 0.0))

            finished: List[int] = []
            for fid in list(active):
                rate = rates[fid]
                if math.isinf(rate):
                    remaining[fid] = 0.0
                else:
                    remaining[fid] -= rate * step
                if remaining[fid] <= 1e-9:
                    finished.append(fid)
            now += step
            for fid in finished:
                spec = active.pop(fid)
                result.completed.append(
                    CompletedFlow(
                        spec=spec,
                        start=spec.arrival,
                        finish=now,
                        path_hops=paths[fid].hops,
                        path=paths[fid],
                    )
                )
                del remaining[fid]
                # Per-completion FCT observation: the health plane's
                # windowed-p99 regression rollup feeds off this stream.
                obs.observe("flowsim.fct_s", now - spec.arrival)
            if finished:
                progress.advance(len(finished))
        progress.finish()
        obs.incr("flowsim.events", events)
        obs.incr("flowsim.fairshare_recomputes", recomputes)
        obs.incr("flowsim.flows_completed", len(result.completed))
        if result.failed:
            obs.incr("flowsim.flows_failed", len(result.failed))

    def _apply_topology(self, event: TopologyEvent, now, active, remaining,
                        paths, result) -> None:
        """Swap in a new network, salvaging active flows.

        Flows whose path lost a link are re-routed through the (new)
        router; flows the router cannot place are dropped into
        ``result.failed`` with their unfinished byte count.
        """
        self.net = event.net
        if event.router is not None:
            self.router = event.router
        if self.monitor is not None:
            self.monitor.rebind(event.net)
        obs.incr("flowsim.topology_events")
        for fid in sorted(active):
            if _path_alive(paths[fid], self.net):
                continue
            spec = active[fid]
            try:
                path = self.router(spec.src_server, spec.dst_server, fid)
                path.validate_on(self.net)
            except (ReproError, KeyError) as exc:
                active.pop(fid)
                result.failed.append(FailedFlow(
                    spec=spec,
                    start=spec.arrival,
                    failed_at=now,
                    remaining=remaining.pop(fid),
                    reason=str(exc) or "no surviving path",
                ))
                del paths[fid]
                obs.event("flowsim.flow_rerouted", flow_id=fid,
                          outcome="failed", t=now)
                continue
            paths[fid] = path
            result.rerouted += 1
            obs.incr("flowsim.flows_rerouted")
            obs.event("flowsim.flow_rerouted", flow_id=fid,
                      outcome="rerouted", t=now)
