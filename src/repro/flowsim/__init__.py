"""Flow-level simulation: max-min fair shares and fluid FCT simulation."""

from repro.flowsim.fairshare import (
    FairShareResult,
    RoutedFlow,
    link_allocation,
    max_min_fair_rates,
)
from repro.flowsim.simulator import (
    CompletedFlow,
    FailedFlow,
    FlowSimulator,
    FlowSpec,
    SimulationResult,
    TopologyEvent,
)

__all__ = [
    "CompletedFlow",
    "FailedFlow",
    "FairShareResult",
    "FlowSimulator",
    "FlowSpec",
    "RoutedFlow",
    "SimulationResult",
    "TopologyEvent",
    "link_allocation",
    "max_min_fair_rates",
]
