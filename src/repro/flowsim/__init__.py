"""Flow-level simulation: max-min fair shares and fluid FCT simulation."""

from repro.flowsim.fairshare import (
    FairShareResult,
    RoutedFlow,
    max_min_fair_rates,
)
from repro.flowsim.simulator import (
    CompletedFlow,
    FlowSimulator,
    FlowSpec,
    SimulationResult,
)

__all__ = [
    "CompletedFlow",
    "FairShareResult",
    "FlowSimulator",
    "FlowSpec",
    "RoutedFlow",
    "SimulationResult",
    "max_min_fair_rates",
]
