"""Flow-level simulation: max-min fair shares and fluid FCT simulation."""

from repro.flowsim.fairshare import (
    FairShareResult,
    RoutedFlow,
    link_allocation,
    max_min_fair_rates,
)
from repro.flowsim.simulator import (
    CompletedFlow,
    FlowSimulator,
    FlowSpec,
    SimulationResult,
)

__all__ = [
    "CompletedFlow",
    "FairShareResult",
    "FlowSimulator",
    "FlowSpec",
    "RoutedFlow",
    "SimulationResult",
    "link_allocation",
    "max_min_fair_rates",
]
