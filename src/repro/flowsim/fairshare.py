"""Max-min fair rate allocation over routed flows (water-filling).

The paper evaluates throughput with an optimal-routing LP; real networks
run flows over concrete paths with congestion control approximating
max-min fairness.  This module provides the classic progressive-filling
algorithm: repeatedly find the most-constrained link, freeze the rates of
the flows crossing it at their fair share, remove the link's residual
capacity, and continue.

It serves as a *routing-sensitive* second opinion next to the LP: the
same workload evaluated over ECMP or KSP path choices yields a rate
profile whose aggregate never exceeds the LP optimum and whose trends
across topologies match it (cross-checked in tests and an ablation
bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.routing.base import Path
from repro.topology.elements import Network, SwitchId

LinkKey = Tuple[SwitchId, SwitchId]


@dataclass(frozen=True)
class RoutedFlow:
    """A flow pinned to one switch-level path.

    ``flow_id`` identifies the flow; ``path`` may have zero hops (both
    endpoints on one switch), in which case the flow is unconstrained by
    the fabric and gets rate ``math.inf`` unless ``demand`` caps it.
    ``demand`` is an optional rate ceiling (None = elastic flow).
    """

    flow_id: int
    path: Path
    demand: Optional[float] = None


@dataclass
class FairShareResult:
    """Per-flow max-min rates plus aggregate statistics."""

    rates: Dict[int, float]

    @property
    def total(self) -> float:
        return sum(r for r in self.rates.values() if math.isfinite(r))

    @property
    def min_rate(self) -> float:
        return min(self.rates.values()) if self.rates else 0.0

    def bounded_rates(self) -> Dict[int, float]:
        """Rates of fabric-constrained flows only (finite values)."""
        return {f: r for f, r in self.rates.items() if math.isfinite(r)}


def _directed_key(u: SwitchId, v: SwitchId) -> LinkKey:
    return (u, v)


def link_allocation(
    flows: List[RoutedFlow], rates: Dict[int, float]
) -> Tuple[Dict[LinkKey, float], Dict[LinkKey, int]]:
    """Fold per-flow rates into per-directed-link (rate, flow count).

    The monitoring plane's view of an allocation: summing the returned
    rates over all links equals ``sum(rate * hops)`` over the flows,
    which tests use to cross-check monitor samples against the
    allocator.  Infinite-rate (zero-hop) flows touch no link.
    """
    link_rates: Dict[LinkKey, float] = {}
    link_flows: Dict[LinkKey, int] = {}
    for flow in flows:
        rate = rates[flow.flow_id]
        if not math.isfinite(rate):
            continue
        for u, v in flow.path.edges():
            key = _directed_key(u, v)
            link_rates[key] = link_rates.get(key, 0.0) + rate
            link_flows[key] = link_flows.get(key, 0) + 1
    return link_rates, link_flows


def max_min_fair_rates(
    net: Network,
    flows: List[RoutedFlow],
    monitor=None,
    now: float = 0.0,
) -> FairShareResult:
    """Progressive filling over directed link capacities.

    Each fabric cable contributes its capacity independently per
    direction (full-duplex, consistent with the MCF model).  Runs in
    O(links x flows) in the worst case — fine for the tens of thousands
    of flows the examples and benches use.

    ``monitor`` (a :class:`repro.monitor.NetworkMonitor`, or anything
    with ``on_allocation``) receives the per-directed-link rates and
    active-flow counts of this allocation, stamped at simulated time
    ``now``; ``None`` skips all monitoring work.
    """
    capacity: Dict[LinkKey, float] = {}
    for u, v, cap in net.edge_list():
        if cap <= 0:
            raise ReproError(
                f"link {u!r} - {v!r} has non-positive capacity {cap}; "
                f"flows crossing it could never be allocated a rate"
            )
        capacity[_directed_key(u, v)] = cap
        capacity[_directed_key(v, u)] = cap

    flows_on: Dict[LinkKey, List[RoutedFlow]] = {}
    for flow in flows:
        flow.path.validate_on(net)
        for u, v in flow.path.edges():
            flows_on.setdefault(_directed_key(u, v), []).append(flow)

    rates: Dict[int, float] = {}
    active: Dict[int, RoutedFlow] = {f.flow_id: f for f in flows}
    if len(active) != len(flows):
        raise ReproError("flow ids must be unique")
    remaining = dict(capacity)
    active_count: Dict[LinkKey, int] = {
        link: len(fs) for link, fs in flows_on.items()
    }

    # Zero-hop flows (endpoints on one switch) never cross the fabric;
    # freeze them immediately or they would keep the loop alive forever.
    for flow in list(active.values()):
        if flow.path.hops == 0:
            rate = flow.demand if flow.demand is not None else math.inf
            _freeze(flow, rate, rates, active, remaining, active_count)

    # Demand-capped flows that the fabric never saturates finish at their
    # demand; handle them inside the loop via the fair-share comparison.
    while active:
        # Most-constrained link: minimal fair share among loaded links.
        best_link = None
        best_share = math.inf
        for link, count in active_count.items():
            if count <= 0:
                continue
            share = remaining[link] / count
            if share < best_share:
                best_share = share
                best_link = link
        # Demand ceilings below the bottleneck share freeze first.
        capped = [
            f for f in active.values()
            if f.demand is not None and f.demand <= best_share
        ]
        if capped:
            for flow in capped:
                _freeze(flow, flow.demand, rates, active, remaining,
                        active_count)
            continue
        if best_link is None:
            # Remaining flows cross no loaded link: unconstrained.
            for flow in list(active.values()):
                rate = flow.demand if flow.demand is not None else math.inf
                _freeze(flow, rate, rates, active, remaining, active_count)
            break
        for flow in list(flows_on.get(best_link, [])):
            if flow.flow_id in active:
                _freeze(flow, best_share, rates, active, remaining,
                        active_count)
    if monitor is not None:
        monitor.on_allocation(now, *link_allocation(flows, rates))
    return FairShareResult(rates=rates)


def _freeze(
    flow: RoutedFlow,
    rate: float,
    rates: Dict[int, float],
    active: Dict[int, "RoutedFlow"],
    remaining: Dict[LinkKey, float],
    active_count: Dict[LinkKey, int],
) -> None:
    rates[flow.flow_id] = rate
    del active[flow.flow_id]
    if not math.isfinite(rate):
        return
    for u, v in flow.path.edges():
        key = _directed_key(u, v)
        remaining[key] = max(0.0, remaining[key] - rate)
        active_count[key] -= 1
