"""Fat-tree(k) builder (Al-Fares et al., SIGCOMM 2008).

A fat-tree with parameter ``k`` (even) has ``k`` Pods, each with ``k/2``
edge and ``k/2`` aggregation switches, ``(k/2)^2`` core switches, and
``k/2`` servers per edge switch — ``k^3/4`` servers in total, full
bisection bandwidth, every switch with exactly ``k`` ports.

This is both the Clos baseline of the paper's evaluation and the physical
substrate flat-tree converts.  The builder simply instantiates the generic
Clos builder at the fat-tree operating point; it exists as a separate,
independently-tested entry point because the paper's experiments are all
phrased in terms of ``k``.
"""

from __future__ import annotations

from repro import obs
from repro.topology.clos import ClosParams, build_clos, fat_tree_params
from repro.topology.elements import Network


def build_fat_tree(k: int) -> Network:
    """Build fat-tree(k) as a :class:`~repro.topology.elements.Network`."""
    params = fat_tree_params(k)
    with obs.timer("topology.fattree.build_s"):
        net = build_clos(params, name=f"fat-tree(k={k})")
    obs.incr("topology.fattree.builds")
    obs.incr("topology.fattree.switches", net.num_switches)
    obs.incr("topology.fattree.cables", net.num_cables)
    return net


def fat_tree_equipment(k: int) -> ClosParams:
    """Alias for :func:`repro.topology.clos.fat_tree_params` (public API)."""
    return fat_tree_params(k)
