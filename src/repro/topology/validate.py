"""Topology audits: port budgets, equipment equality, connectivity.

The paper's comparisons only make sense when every topology is built
"using the same switches and servers" (§1).  These helpers let tests and
experiment drivers assert that invariant, plus basic well-formedness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TopologyError
from repro.topology.elements import Network, equipment_signature
from repro.topology.stats import is_connected


@dataclass
class AuditReport:
    """Outcome of :func:`audit`; ``ok`` is True when no problems remain."""

    problems: List[str] = field(default_factory=list)
    free_ports: int = 0
    num_switches: int = 0
    num_servers: int = 0
    num_cables: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems


def audit(net: Network, require_connected: bool = True) -> AuditReport:
    """Run all structural checks on a network and collect problems."""
    report = AuditReport(
        num_switches=net.num_switches,
        num_servers=net.num_servers,
        num_cables=net.num_cables,
    )
    for s in net.switches():
        used = net.ports_used(s)
        budget = net.ports(s)
        if used > budget:
            report.problems.append(
                f"switch {s!r} uses {used} ports but has only {budget}"
            )
        report.free_ports += budget - used
    recount = _recount_ports(net)
    for s in net.switches():
        if recount.get(s, 0) != net.ports_used(s):
            report.problems.append(
                f"switch {s!r} port ledger out of sync: "
                f"ledger={net.ports_used(s)} actual={recount.get(s, 0)}"
            )
    if require_connected and net.num_switches > 0 and not is_connected(net):
        report.problems.append("switch fabric is not connected")
    return report


def _recount_ports(net: Network) -> Dict:
    """Recompute port usage from cables + servers, ignoring the ledger."""
    counts: Dict = {s: 0 for s in net.switches()}
    for u, v, d in net.fabric.edges(data=True):
        counts[u] += d["mult"]
        counts[v] += d["mult"]
    for server in net.servers():
        counts[net.server_switch(server)] += 1
    return counts


def assert_valid(net: Network, require_connected: bool = True) -> None:
    """Raise :class:`TopologyError` if :func:`audit` finds any problem."""
    report = audit(net, require_connected=require_connected)
    if not report.ok:
        raise TopologyError(
            f"{net.name}: " + "; ".join(report.problems)
        )


def assert_same_equipment(a: Network, b: Network) -> None:
    """Raise unless both networks use identical equipment.

    Identical equipment means: same server count, same switch count, and
    the same multiset of per-switch port budgets.
    """
    sig_a = equipment_signature(a)
    sig_b = equipment_signature(b)
    if sig_a != sig_b:
        raise TopologyError(
            f"equipment mismatch: {a.name} has (servers, switches)="
            f"{sig_a[:2]}, {b.name} has {sig_b[:2]}"
        )
