"""Jellyfish-style random graph builder (Singla et al., NSDI 2012).

The paper's "random graph" baseline is a Jellyfish network built with the
same equipment as the fat-tree / flat-tree under test: the same number of
switches, the same port count per switch, and the same number of servers.
Servers are spread as evenly as possible over the switches and the
remaining ports are wired into a random (near-)regular graph.

The construction follows the Jellyfish procedure: draw random candidate
switch pairs with free ports, reject self-loops and duplicate links, and
when the process wedges, perform the edge-swap repair moves from the
Jellyfish paper until (almost) every port is used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.errors import TopologyError
from repro.topology.clos import ClosParams, fat_tree_params
from repro.topology.elements import Network, PlainSwitch

_MAX_STUCK_DRAWS = 200


@dataclass(frozen=True)
class JellyfishSpec:
    """Equipment description for a Jellyfish build."""

    num_switches: int
    ports_per_switch: int
    num_servers: int

    def __post_init__(self) -> None:
        if self.num_switches < 2:
            raise TopologyError("Jellyfish needs at least 2 switches")
        if self.ports_per_switch < 1:
            raise TopologyError("switches need at least one port")
        capacity = self.num_switches * self.ports_per_switch
        if self.num_servers >= capacity:
            raise TopologyError(
                f"{self.num_servers} servers leave no network ports "
                f"({capacity} total ports)"
            )

    @classmethod
    def matching(cls, params: ClosParams, ports: Optional[int] = None) -> "JellyfishSpec":
        """Equipment matching a Clos layout (same switches/ports/servers).

        ``ports`` overrides the per-switch port count; by default all Clos
        switches are assumed to share one (true for fat-tree), and the
        maximum budget is used otherwise.
        """
        if ports is None:
            ports = max(params.edge_ports, params.agg_ports, params.core_ports)
        return cls(
            num_switches=params.num_switches,
            ports_per_switch=ports,
            num_servers=params.num_servers,
        )


def build_jellyfish(
    spec: JellyfishSpec,
    rng: Optional[random.Random] = None,
    name: str = "jellyfish",
) -> Network:
    """Build a Jellyfish random graph for ``spec``.

    Server ids are assigned by a random permutation over the host slots,
    so consecutive server ids land on unrelated switches — this models
    the paper's observation that in a random graph "servers scatter
    around the network".

    An odd total number of free network ports necessarily leaves one port
    unused; any other leftover is repaired away or, in pathological tiny
    cases, reported via the returned network's free-port audit.
    """
    rng = rng or random.Random(0)
    with obs.timer("topology.jellyfish.build_s"):
        net = Network(name)
        switches = [PlainSwitch(i) for i in range(spec.num_switches)]
        for s in switches:
            net.add_switch(s, spec.ports_per_switch)

        _attach_servers(net, switches, spec.num_servers, rng)
        free = {s: net.ports_free(s) for s in switches}
        _random_match(net, free, rng)
        _repair_leftovers(net, free, rng)
    obs.incr("topology.jellyfish.builds")
    obs.incr("topology.jellyfish.cables", net.num_cables)
    return net


def build_jellyfish_like_fat_tree(
    k: int, rng: Optional[random.Random] = None
) -> Network:
    """Jellyfish with the same equipment as fat-tree(k) (paper §3.1)."""
    spec = JellyfishSpec.matching(fat_tree_params(k))
    return build_jellyfish(spec, rng=rng, name=f"jellyfish(k={k})")


def _attach_servers(
    net: Network,
    switches: List[PlainSwitch],
    num_servers: int,
    rng: random.Random,
) -> None:
    """Spread servers evenly; break ties randomly; scatter ids randomly."""
    base, extra = divmod(num_servers, len(switches))
    lucky = set(rng.sample(range(len(switches)), extra))
    slots: List[PlainSwitch] = []
    for i, s in enumerate(switches):
        slots.extend([s] * (base + (1 if i in lucky else 0)))
    rng.shuffle(slots)
    for server_id, host in enumerate(slots):
        net.add_server(server_id, host)


def _random_match(
    net: Network, free: Dict[PlainSwitch, int], rng: random.Random
) -> None:
    """Randomly pair free ports until no easy progress remains."""
    candidates = [s for s, f in free.items() if f > 0]
    stuck = 0
    rejected = 0
    while len(candidates) >= 2 and stuck < _MAX_STUCK_DRAWS:
        u, v = rng.sample(candidates, 2)
        if net.fabric.has_edge(u, v):
            stuck += 1
            rejected += 1
            continue
        net.add_cable(u, v)
        stuck = 0
        for s in (u, v):
            free[s] -= 1
            if free[s] == 0:
                candidates.remove(s)
    obs.incr("topology.jellyfish.rejected_draws", rejected)


def _repair_leftovers(
    net: Network, free: Dict[PlainSwitch, int], rng: random.Random
) -> None:
    """Jellyfish repair: absorb leftover ports via edge swaps.

    A switch ``w`` with two or more free ports steals a random existing
    link ``(u, v)`` (with neither endpoint adjacent to ``w``) and replaces
    it with ``(w, u)`` and ``(w, v)``.  Two leftover ports on already
    adjacent switches are resolved by a 2-swap.  A single global leftover
    port is unavoidable when the total stub count is odd.
    """
    iterations = 0
    try:
        for _ in range(10 * len(free) + 100):
            iterations += 1
            leftovers = [s for s, f in free.items() if f > 0]
            total_free = sum(free[s] for s in leftovers)
            if total_free <= 1:
                return
            if len(leftovers) == 1 or max(free[s] for s in leftovers) >= 2:
                w = max(leftovers, key=lambda s: free[s])
                if _absorb_with_swap(net, free, w, rng):
                    continue
                return
            u, v = rng.sample(leftovers, 2)
            if not net.fabric.has_edge(u, v):
                net.add_cable(u, v)
                free[u] -= 1
                free[v] -= 1
                continue
            if not _cross_swap(net, free, u, v, rng):
                return
    finally:
        obs.incr("topology.jellyfish.repair_iterations", iterations)


def _absorb_with_swap(
    net: Network,
    free: Dict[PlainSwitch, int],
    w: PlainSwitch,
    rng: random.Random,
) -> bool:
    """Remove a random link (u, v) and add (w, u), (w, v)."""
    edges = [
        (u, v)
        for u, v in net.fabric.edges()
        if w not in (u, v)
        and not net.fabric.has_edge(w, u)
        and not net.fabric.has_edge(w, v)
    ]
    if not edges:
        return False
    u, v = rng.choice(edges)
    net.remove_cable(u, v)
    net.add_cable(w, u)
    net.add_cable(w, v)
    free[w] -= 2
    return True


def _cross_swap(
    net: Network,
    free: Dict[PlainSwitch, int],
    u: PlainSwitch,
    v: PlainSwitch,
    rng: random.Random,
) -> bool:
    """Remove a random link (x, y) and add (u, x), (v, y).

    Used when the last two free ports sit on switches that are already
    adjacent, so a direct link would create a parallel cable.
    """
    edges = [
        (x, y)
        for x, y in net.fabric.edges()
        if u not in (x, y)
        and v not in (x, y)
        and not net.fabric.has_edge(u, x)
        and not net.fabric.has_edge(v, y)
    ]
    if not edges:
        return False
    x, y = rng.choice(edges)
    net.remove_cable(x, y)
    net.add_cable(u, x)
    net.add_cable(v, y)
    free[u] -= 1
    free[v] -= 1
    return True
