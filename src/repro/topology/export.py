"""Topology export: DOT, JSON, and edge-list dumps.

Operators and papers want pictures and machine-readable dumps of the
materialized topologies.  The exporters here are dependency-free (plain
text formats):

* :func:`to_dot` — Graphviz DOT with per-layer styling (cores striped,
  aggs gridded, edges shaded, matching the paper's Figure 2 legend);
* :func:`to_json_dict` / :func:`from_json_dict` — a loss-free
  round-trip of any :class:`~repro.topology.elements.Network`;
* :func:`to_edge_list` — a flat text dump for external graph tools.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.errors import TopologyError
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
    PlainSwitch,
    SwitchId,
)
from repro.topology.twostage import PodSwitch

_DOT_STYLE = {
    "core": 'shape=box style="striped" fillcolor="gray60:white"',
    "agg": 'shape=box style="filled" fillcolor=gray85',
    "edge": 'shape=box style="filled" fillcolor=gray95',
    "switch": "shape=box",
    "podsw": "shape=box",
}


def _node_id(switch: SwitchId) -> str:
    fields = [str(f) for f in switch[:-1]]  # drop the kind discriminant
    return f"{switch.kind}_" + "_".join(fields)


def to_dot(net: Network, include_servers: bool = False) -> str:
    """Render the fabric (optionally with servers) as Graphviz DOT."""
    lines = [f'graph "{net.name}" {{', "  node [fontsize=10];"]
    for switch in net.switches():
        style = _DOT_STYLE.get(switch.kind, "shape=box")
        lines.append(
            f'  {_node_id(switch)} [label="{_node_id(switch)}" {style}];'
        )
    for u, v, data in net.fabric.edges(data=True):
        attr = f' [penwidth={data["mult"]}]' if data["mult"] > 1 else ""
        lines.append(f"  {_node_id(u)} -- {_node_id(v)}{attr};")
    if include_servers:
        for server in sorted(net.servers()):
            host = net.server_switch(server)
            lines.append(f"  srv_{server} [shape=circle label={server}];")
            lines.append(f"  srv_{server} -- {_node_id(host)} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)


_KINDS = {
    "core": CoreSwitch,
    "agg": AggSwitch,
    "edge": EdgeSwitch,
    "switch": PlainSwitch,
    "podsw": PodSwitch,
}


def _switch_to_json(switch: SwitchId) -> List:
    return [switch.kind] + [int(f) for f in switch[:-1]]


def _switch_from_json(data: List) -> SwitchId:
    kind = data[0]
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise TopologyError(f"unknown switch kind {kind!r}") from None
    return cls(*data[1:])


def to_json_dict(net: Network) -> Dict:
    """A loss-free JSON-safe representation of a network."""
    return {
        "name": net.name,
        "switches": [
            {"id": _switch_to_json(s), "ports": net.ports(s)}
            for s in net.switches()
        ],
        "cables": [
            {
                "u": _switch_to_json(u),
                "v": _switch_to_json(v),
                "mult": data["mult"],
                "capacity": data["capacity"],
            }
            for u, v, data in net.fabric.edges(data=True)
        ],
        "servers": {
            str(server): _switch_to_json(net.server_switch(server))
            for server in sorted(net.servers())
        },
    }


def from_json_dict(data: Dict) -> Network:
    """Inverse of :func:`to_json_dict` (port accounting re-validated)."""
    try:
        net = Network(data["name"])
        for entry in data["switches"]:
            net.add_switch(_switch_from_json(entry["id"]), entry["ports"])
        for cable in data["cables"]:
            u = _switch_from_json(cable["u"])
            v = _switch_from_json(cable["v"])
            per_cable = cable["capacity"] / cable["mult"]
            for _ in range(cable["mult"]):
                net.add_cable(u, v, capacity=per_cable)
        for server, host in data["servers"].items():
            net.add_server(int(server), _switch_from_json(host))
    except (KeyError, TypeError) as exc:
        raise TopologyError(f"malformed network dump: {exc}") from exc
    return net


def save_json(net: Network, path: str) -> None:
    """Write :func:`to_json_dict` to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_json_dict(net), handle, indent=1, sort_keys=True)


def load_json(path: str) -> Network:
    """Read a network previously written by :func:`save_json`."""
    with open(path, encoding="utf-8") as handle:
        return from_json_dict(json.load(handle))


def to_edge_list(net: Network) -> str:
    """One ``u<TAB>v<TAB>capacity`` line per fabric edge."""
    lines = []
    for u, v, cap in net.edge_list():
        lines.append(f"{_node_id(u)}\t{_node_id(v)}\t{cap:g}")
    return "\n".join(lines)
