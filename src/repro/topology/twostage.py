"""Two-stage random graph baseline (paper §3.1, Figures 6 and 8).

"[We] compare it with two-stage random graph, which first forms random
graphs in each Pod with the same number of links as flat-tree, and takes
the Pods as super nodes to form another layer of random graph together
with core switches."

Construction, using the same equipment as the Clos/flat-tree under test:

* each Pod keeps its switch inventory (``d`` edge-class and ``d/r``
  agg-class port budgets) but the switches are undifferentiated;
* the Pod's servers and its ``d * h/r`` core-facing uplinks are spread
  over its switches (balanced, random tie-breaks), and the ports left
  over — exactly twice the Clos intra-Pod link count — are wired into a
  random simple graph inside the Pod;
* the super layer matches Pod uplink stubs and core stubs (``pods`` per
  core) into a random multigraph over {Pods} ∪ {cores}; Pod endpoints
  are then resolved to concrete Pod switches.

Server ids follow the same dense Pod-major scheme as the Clos builders so
per-Pod groupings and locality placements stay comparable.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.topology.clos import ClosParams
from repro.topology.elements import CoreSwitch, Network
from repro.topology.stubmatch import match_stubs


class PodSwitch(NamedTuple):
    """An undifferentiated switch inside a two-stage random-graph Pod."""

    pod: int
    index: int
    kind: str = "podsw"


def build_two_stage(
    params: ClosParams,
    rng: Optional[random.Random] = None,
    name: str = "two-stage",
) -> Network:
    """Build the two-stage random graph for ``params``' equipment."""
    rng = rng or random.Random(0)
    net = Network(name)
    for c in range(params.num_cores):
        net.add_switch(CoreSwitch(c), params.core_ports)

    uplink_slots: Dict[int, List[PodSwitch]] = {}
    for p in range(params.pods):
        uplink_slots[p] = _build_pod(net, params, p, rng)

    _wire_super_layer(net, params, uplink_slots, rng)
    return net


def _build_pod(
    net: Network, params: ClosParams, pod: int, rng: random.Random
) -> List[PodSwitch]:
    """Create one Pod's switches, servers, and intra-Pod random graph.

    Returns the Pod's uplink slots: a shuffled list with one entry (a Pod
    switch) per core-facing stub, consumed later by the super layer.
    """
    n_pod = params.d + params.aggs_per_pod
    budgets = [params.edge_ports] * params.d + (
        [params.agg_ports] * params.aggs_per_pod
    )
    switches = [PodSwitch(pod, i) for i in range(n_pod)]
    for s, ports in zip(switches, budgets):
        net.add_switch(s, ports)

    free = list(budgets)
    server_hosts = _greedy_assign(switches, free, params.servers_per_pod, rng)
    uplink_hosts = _greedy_assign(
        switches, free, params.d * params.group_size, rng
    )

    # Whatever ports remain must pair up inside the Pod; by construction
    # their total equals twice the Clos intra-Pod link count.
    degrees = {s: free[i] for i, s in enumerate(switches)}
    for u, v in match_stubs(degrees, rng, allow_parallel=False):
        net.add_cable(u, v)

    rng.shuffle(server_hosts)
    for slot, host in enumerate(server_hosts):
        net.add_server(params.server_id(pod, slot // params.servers_per_edge,
                                        slot % params.servers_per_edge), host)

    rng.shuffle(uplink_hosts)
    return uplink_hosts


def _greedy_assign(
    switches: List[PodSwitch],
    free: List[int],
    count: int,
    rng: random.Random,
) -> List[PodSwitch]:
    """Assign ``count`` slots to switches, always picking a max-free one.

    Mutates ``free`` in place.  Balanced assignment keeps every switch's
    leftover intra-Pod degree non-negative and near-equal.
    """
    hosts: List[PodSwitch] = []
    for _ in range(count):
        best = max(free)
        candidates = [i for i, f in enumerate(free) if f == best]
        i = rng.choice(candidates)
        free[i] -= 1
        hosts.append(switches[i])
    return hosts


def _wire_super_layer(
    net: Network,
    params: ClosParams,
    uplink_slots: Dict[int, List[PodSwitch]],
    rng: random.Random,
) -> None:
    """Random super-layer over {Pods} ∪ {cores}, resolved to switches."""
    stubs: Dict[Tuple[str, int], int] = {}
    for p in range(params.pods):
        stubs[("pod", p)] = len(uplink_slots[p])
    for c in range(params.num_cores):
        stubs[("core", c)] = params.pods

    for a, b in match_stubs(stubs, rng, allow_parallel=True):
        net.add_cable(_resolve(a, uplink_slots), _resolve(b, uplink_slots))


def _resolve(endpoint, uplink_slots: Dict[int, List[PodSwitch]]):
    tag, index = endpoint
    if tag == "core":
        return CoreSwitch(index)
    return uplink_slots[index].pop()
