"""Topology substrates: network model, builders, metrics, audits."""

from repro.topology.clos import ClosParams, build_clos, fat_tree_params
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
    PlainSwitch,
    equipment_signature,
)
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import (
    JellyfishSpec,
    build_jellyfish,
    build_jellyfish_like_fat_tree,
)
from repro.topology.stats import (
    average_server_path_length,
    average_within_group_path_length,
    degree_histogram,
    is_connected,
    link_kind_profile,
    server_counts_by_kind,
    server_spread,
    switch_distances,
)
from repro.topology.twostage import PodSwitch, build_two_stage
from repro.topology.validate import (
    AuditReport,
    assert_same_equipment,
    assert_valid,
    audit,
)

__all__ = [
    "AggSwitch",
    "AuditReport",
    "ClosParams",
    "CoreSwitch",
    "EdgeSwitch",
    "JellyfishSpec",
    "Network",
    "PlainSwitch",
    "PodSwitch",
    "assert_same_equipment",
    "assert_valid",
    "audit",
    "average_server_path_length",
    "average_within_group_path_length",
    "build_clos",
    "build_fat_tree",
    "build_jellyfish",
    "build_jellyfish_like_fat_tree",
    "build_two_stage",
    "degree_histogram",
    "equipment_signature",
    "fat_tree_params",
    "is_connected",
    "link_kind_profile",
    "server_counts_by_kind",
    "server_spread",
    "switch_distances",
]
