"""Generic single-Pod-layer Clos parameterization and builder.

The paper's flat-tree design targets *generic* Clos networks: ``d`` edge
switches and ``d/r`` aggregation switches per Pod, ``h`` uplinks per
aggregation switch, any number of Pods, servers attached at the edge.  The
fat-tree used for evaluation is the special case ``r = 1``,
``d = h = servers_per_edge = k/2``, ``pods = k``.

This module defines :class:`ClosParams` — the single source of truth for
layout arithmetic shared by the Clos builder, the flat-tree Pod, and the
wiring patterns — plus :func:`build_clos`, which materializes the plain
(non-convertible) Clos network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import TopologyError
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
)


@dataclass(frozen=True)
class ClosParams:
    """Layout of a single-Pod-layer Clos network.

    Attributes
    ----------
    pods:
        Number of Pods.
    d:
        Edge switches per Pod.
    r:
        Edge-to-aggregation ratio; each Pod has ``d / r`` aggregation
        switches and aggregation switch ``a`` serves edge switches
        ``a*r .. a*r + r - 1``.
    h:
        Core-facing uplinks per aggregation switch.  Each *edge group*
        (the connectors associated with one edge switch, see paper §2.3)
        owns ``h / r`` of them.
    servers_per_edge:
        Servers attached to each edge switch in Clos mode.
    """

    pods: int
    d: int
    r: int
    h: int
    servers_per_edge: int

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise TopologyError("need at least one Pod")
        if self.d < 1 or self.h < 1 or self.servers_per_edge < 1:
            raise TopologyError("d, h and servers_per_edge must be positive")
        if self.r < 1 or self.d % self.r != 0:
            raise TopologyError(f"r={self.r} must divide d={self.d}")
        if self.h % self.r != 0:
            raise TopologyError(f"r={self.r} must divide h={self.h}")

    # ------------------------------------------------------------------
    # derived sizes
    # ------------------------------------------------------------------
    @property
    def aggs_per_pod(self) -> int:
        return self.d // self.r

    @property
    def group_size(self) -> int:
        """Core switches per edge group (= ``h / r``)."""
        return self.h // self.r

    @property
    def num_cores(self) -> int:
        return self.d * self.group_size

    @property
    def num_switches(self) -> int:
        return self.pods * (self.d + self.aggs_per_pod) + self.num_cores

    @property
    def servers_per_pod(self) -> int:
        return self.d * self.servers_per_edge

    @property
    def num_servers(self) -> int:
        return self.pods * self.servers_per_pod

    @property
    def edge_ports(self) -> int:
        """Port budget of an edge switch: servers + one link per Pod agg."""
        return self.servers_per_edge + self.aggs_per_pod

    @property
    def agg_ports(self) -> int:
        """Port budget of an aggregation switch: Pod edges + uplinks."""
        return self.d + self.h

    @property
    def core_ports(self) -> int:
        """Port budget of a core switch: one link per Pod."""
        return self.pods

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    def agg_of_edge(self, j: int) -> int:
        """Index of the aggregation switch paired with edge ``j``."""
        return j // self.r

    def core_group(self, j: int) -> range:
        """Global indices of the core switches in edge group ``j``."""
        start = j * self.group_size
        return range(start, start + self.group_size)

    def server_id(self, pod: int, edge: int, slot: int) -> int:
        """Global id of the server in ``slot`` on edge switch ``edge``.

        Server ids are dense and ordered Pod-major, edge-switch-minor, so
        "continuous placement across servers" (paper §3.1) is simply
        id order.
        """
        if not 0 <= slot < self.servers_per_edge:
            raise TopologyError(f"server slot {slot} out of range")
        return (pod * self.d + edge) * self.servers_per_edge + slot

    def server_pod(self, server: int) -> int:
        """Pod a server id belongs to (by the dense id scheme)."""
        return server // self.servers_per_pod

    def server_edge(self, server: int) -> int:
        """Edge-switch index (within its Pod) a server id belongs to."""
        return (server % self.servers_per_pod) // self.servers_per_edge

    def server_slot(self, server: int) -> int:
        """Slot of a server on its edge switch."""
        return server % self.servers_per_edge

    def pod_servers(self, pod: int) -> range:
        """All server ids of a Pod."""
        start = pod * self.servers_per_pod
        return range(start, start + self.servers_per_pod)


def fat_tree_params(k: int) -> ClosParams:
    """The fat-tree(k) layout used throughout the paper's evaluation."""
    if k < 4 or k % 2 != 0:
        raise TopologyError(f"fat-tree requires even k >= 4, got {k}")
    half = k // 2
    return ClosParams(pods=k, d=half, r=1, h=half, servers_per_edge=half)


def add_clos_switches(net: Network, params: ClosParams) -> None:
    """Register all switches of a Clos/flat-tree layout on ``net``.

    Insertion order is deterministic (cores, then per-Pod edge and
    aggregation switches) so dense index mappings are stable.
    """
    for c in range(params.num_cores):
        net.add_switch(CoreSwitch(c), params.core_ports)
    for p in range(params.pods):
        for j in range(params.d):
            net.add_switch(EdgeSwitch(p, j), params.edge_ports)
        for a in range(params.aggs_per_pod):
            net.add_switch(AggSwitch(p, a), params.agg_ports)


def add_intra_pod_bipartite(net: Network, params: ClosParams) -> None:
    """Wire the complete edge-aggregation bipartite inside every Pod.

    These links are never touched by converter switches; flat-tree keeps
    them in every operating mode.
    """
    for p in range(params.pods):
        for j in range(params.d):
            for a in range(params.aggs_per_pod):
                net.add_cable(EdgeSwitch(p, j), AggSwitch(p, a))


def build_clos(params: ClosParams, name: str = "clos") -> Network:
    """Build the plain Clos network described by ``params``.

    Pod-core wiring follows the paper's Figure 4a: the connectors of edge
    group ``j`` in every Pod go to the same ``h/r`` core switches, all of
    them owned by aggregation switch ``j // r``.
    """
    net = Network(name)
    add_clos_switches(net, params)
    add_intra_pod_bipartite(net, params)
    progress = obs.ProgressTracker("topology.build_clos", total=params.pods)
    for p in range(params.pods):
        for j in range(params.d):
            agg = AggSwitch(p, params.agg_of_edge(j))
            for c in params.core_group(j):
                net.add_cable(agg, CoreSwitch(c))
            edge = EdgeSwitch(p, j)
            for slot in range(params.servers_per_edge):
                net.add_server(params.server_id(p, j, slot), edge)
        progress.advance()
    progress.finish()
    return net
