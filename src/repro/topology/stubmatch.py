"""Configuration-model stub matching with rewiring repair.

Several builders (two-stage random graph, ablation topologies) need "a
random graph with this exact degree sequence".  This module implements
the standard construction: expand each node into *stubs*, shuffle, pair
consecutively, then repair self-loops (and, optionally, parallel edges)
by swapping endpoints with randomly chosen other pairs.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Tuple

from repro.errors import TopologyError

Node = Hashable
_MAX_REPAIR_ROUNDS = 500


def match_stubs(
    stubs: Dict[Node, int],
    rng: random.Random,
    allow_parallel: bool = False,
) -> List[Tuple[Node, Node]]:
    """Pair stubs into edges honoring the given degree sequence.

    Parameters
    ----------
    stubs:
        Node -> stub count.  The total must be even.
    rng:
        Source of randomness (pass a seeded ``random.Random`` for
        reproducible topologies).
    allow_parallel:
        When False (default) the result is a simple graph; when True
        parallel edges may remain (self-loops are always repaired).

    Raises
    ------
    TopologyError
        If the stub total is odd or the repair loop cannot reach a valid
        matching (degree sequence not realizable or extremely unlucky).
    """
    pool: List[Node] = []
    for node, count in stubs.items():
        if count < 0:
            raise TopologyError(f"negative stub count for {node!r}")
        pool.extend([node] * count)
    if len(pool) % 2 != 0:
        raise TopologyError(f"odd stub total {len(pool)} cannot be matched")
    if not pool:
        return []

    rng.shuffle(pool)
    edges = [(pool[i], pool[i + 1]) for i in range(0, len(pool), 2)]
    for _ in range(_MAX_REPAIR_ROUNDS):
        bad = _violations(edges, allow_parallel)
        if not bad:
            return edges
        _repair_round(edges, bad, rng, allow_parallel)
    raise TopologyError(
        "stub matching failed to converge; degree sequence may not be "
        "realizable as a simple graph"
    )


def _edge_key(u: Node, v: Node) -> frozenset:
    return frozenset((u, v))


def _violations(
    edges: List[Tuple[Node, Node]], allow_parallel: bool
) -> List[int]:
    """Indices of edges that are self-loops or (optionally) duplicates."""
    seen: Dict[frozenset, int] = {}
    bad: List[int] = []
    for i, (u, v) in enumerate(edges):
        if u == v:
            bad.append(i)
            continue
        if allow_parallel:
            continue
        key = _edge_key(u, v)
        if key in seen:
            bad.append(i)
        else:
            seen[key] = i
    return bad


def _repair_round(
    edges: List[Tuple[Node, Node]],
    bad: List[int],
    rng: random.Random,
    allow_parallel: bool,
) -> None:
    """Swap each violating pair's endpoint with a random other pair.

    A swap always preserves the degree sequence; it may or may not fix
    the violation, which is why the caller loops until clean.
    """
    for i in bad:
        j = rng.randrange(len(edges))
        if i == j:
            continue
        u, v = edges[i]
        x, y = edges[j]
        if rng.random() < 0.5:
            edges[i], edges[j] = (u, x), (v, y)
        else:
            edges[i], edges[j] = (u, y), (v, x)


def spread_evenly(
    total: int, buckets: int, rng: random.Random
) -> List[int]:
    """Split ``total`` into ``buckets`` near-equal non-negative parts.

    The ``total % buckets`` remainder is assigned to randomly chosen
    buckets, so no positional bias accumulates across pods/switches.
    """
    if buckets <= 0:
        raise TopologyError("need a positive bucket count")
    base, extra = divmod(total, buckets)
    parts = [base] * buckets
    for i in rng.sample(range(buckets), extra):
        parts[i] += 1
    return parts
