"""Graph metrics: server-pair path lengths and link/degree statistics.

The paper's primary structural metric is the **average path length (APL)
in hops between server pairs** (Figures 5 and 6).  Converter switches are
physical-layer devices and contribute no hops; server-to-switch links
contribute one hop each, so two servers on different switches ``u`` and
``v`` are ``d(u, v) + 2`` hops apart and two servers on the same switch
are 2 hops apart.

Distances are computed switch-level with :mod:`scipy.sparse.csgraph`
(C-implemented BFS/Dijkstra), then averaged with server-count weights —
orders of magnitude faster than per-server BFS in Python.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components, shortest_path

from repro.errors import TopologyError
from repro.topology.elements import Network, ServerId, SwitchId


def adjacency_matrix(
    net: Network, index: Optional[Dict[SwitchId, int]] = None
) -> sp.csr_matrix:
    """Unweighted switch adjacency (parallel cables collapse to 1)."""
    idx = index or net.switch_index()
    n = len(idx)
    rows: List[int] = []
    cols: List[int] = []
    for u, v, _cap in net.edge_list():
        ui, vi = idx[u], idx[v]
        rows.extend((ui, vi))
        cols.extend((vi, ui))
    data = np.ones(len(rows), dtype=np.int8)
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def switch_distances(
    net: Network,
) -> Tuple[np.ndarray, Dict[SwitchId, int]]:
    """All-pairs switch hop distances and the switch index used.

    Returns a dense ``(n, n)`` float array (``inf`` marks disconnected
    pairs) and the switch -> row index mapping.
    """
    idx = net.switch_index()
    adj = adjacency_matrix(net, idx)
    dist = shortest_path(adj, method="D", directed=False, unweighted=True)
    return dist, idx


def is_connected(net: Network) -> bool:
    """Whether the switch fabric is a single connected component."""
    if net.num_switches == 0:
        return True
    adj = adjacency_matrix(net)
    ncomp, _labels = connected_components(adj, directed=False)
    return ncomp == 1


def _server_counts(
    net: Network, idx: Dict[SwitchId, int], servers: Optional[Iterable[ServerId]]
) -> np.ndarray:
    counts = np.zeros(len(idx), dtype=np.int64)
    if servers is None:
        for switch, c in net.host_counts().items():
            counts[idx[switch]] = c
    else:
        for server in servers:
            counts[idx[net.server_switch(server)]] += 1
    return counts


def _weighted_pair_hops(
    dist: np.ndarray, counts: np.ndarray
) -> Tuple[float, float]:
    """Total (hops, pair count) over ordered server pairs.

    Cross-switch pairs contribute ``d(u, v) + 2`` hops; same-switch pairs
    contribute 2 hops (server - switch - server).
    """
    active = np.flatnonzero(counts)
    if active.size == 0:
        return 0.0, 0.0
    c = counts[active].astype(np.float64)
    sub = dist[np.ix_(active, active)]
    if np.isinf(sub).any():
        raise TopologyError("server switches are not mutually reachable")
    weights = np.outer(c, c)
    np.fill_diagonal(weights, 0.0)
    total_servers = c.sum()
    cross_pairs = float(weights.sum())
    same_pairs = float((c * (c - 1)).sum())
    hops = float((weights * (sub + 2.0)).sum()) + 2.0 * same_pairs
    pairs = cross_pairs + same_pairs
    assert abs(pairs - total_servers * (total_servers - 1)) < 1e-6
    return hops, pairs


def average_server_path_length(
    net: Network,
    distances: Optional[Tuple[np.ndarray, Dict[SwitchId, int]]] = None,
) -> float:
    """Average hop count over all ordered server pairs (paper Fig. 5).

    ``distances`` may be a precomputed :func:`switch_distances` result to
    amortize the all-pairs computation across several metrics.
    """
    if net.num_servers < 2:
        raise TopologyError("need at least two servers for a path length")
    dist, idx = distances or switch_distances(net)
    counts = _server_counts(net, idx, None)
    hops, pairs = _weighted_pair_hops(dist, counts)
    return hops / pairs


def average_within_group_path_length(
    net: Network,
    groups: Sequence[Iterable[ServerId]],
    distances: Optional[Tuple[np.ndarray, Dict[SwitchId, int]]] = None,
) -> float:
    """Average hop count over server pairs within each group (Fig. 6).

    Groups are aggregated by pair count (equal-size groups therefore get
    equal weight).  Singleton and empty groups contribute nothing.
    """
    dist, idx = distances or switch_distances(net)
    total_hops = 0.0
    total_pairs = 0.0
    for group in groups:
        counts = _server_counts(net, idx, group)
        hops, pairs = _weighted_pair_hops(dist, counts)
        total_hops += hops
        total_pairs += pairs
    if total_pairs == 0:
        raise TopologyError("no group contains two or more servers")
    return total_hops / total_pairs


def server_counts_by_kind(net: Network) -> Dict[str, int]:
    """Total servers attached to each switch kind (e.g. edge/agg/core)."""
    out: Dict[str, int] = {}
    for switch, count in net.host_counts().items():
        out[switch.kind] = out.get(switch.kind, 0) + count
    return out


def server_spread(net: Network, kind: str) -> Tuple[int, int]:
    """(min, max) servers per switch over all switches of ``kind``.

    Used to verify the paper's wiring Property 1 ("servers are
    distributed uniformly across the core switches").
    """
    switches = net.switches_of_kind(kind)
    if not switches:
        raise TopologyError(f"no switches of kind {kind!r}")
    per_switch = [net.server_count(s) for s in switches]
    return min(per_switch), max(per_switch)


def link_kind_profile(net: Network, switch: SwitchId) -> Dict[str, int]:
    """Cable count from ``switch`` to each neighbor kind.

    Used to verify wiring Property 2 ("the core switches have equal
    number of links of the same type").
    """
    profile: Dict[str, int] = {}
    for nbr in net.fabric[switch]:
        mult = net.fabric[switch][nbr]["mult"]
        profile[nbr.kind] = profile.get(nbr.kind, 0) + mult
    return profile


def degree_histogram(net: Network) -> Dict[int, int]:
    """Histogram of cable-level switch degrees."""
    hist: Dict[int, int] = {}
    for s in net.switches():
        d = net.degree(s)
        hist[d] = hist.get(d, 0) + 1
    return hist
