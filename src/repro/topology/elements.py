"""Network element model shared by every topology in the library.

The model is deliberately simple and physical:

* a :class:`Network` is a set of **switches**, each with a fixed port
  budget, a set of **servers**, each attached to exactly one switch, and a
  set of **cables** between switches;
* parallel cables between the same switch pair are folded into a single
  fabric edge whose ``capacity``/``multiplicity`` attributes accumulate
  (hop counts are unaffected by parallelism, flow capacity is);
* ports are accounted for: every cable endpoint and every hosted server
  consumes one port of the switch it touches.

Switch identity uses small :class:`typing.NamedTuple` subclasses.  Each
carries a ``kind`` discriminant with a class-specific default so that, for
example, ``EdgeSwitch(0, 1)`` and ``AggSwitch(0, 1)`` never collide even
though both are 2-field tuples at heart.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Tuple, Union

import networkx as nx

from repro.errors import PortBudgetError, TopologyError


class CoreSwitch(NamedTuple):
    """A core-layer switch, identified by its global index."""

    index: int
    kind: str = "core"


class AggSwitch(NamedTuple):
    """An aggregation switch inside a Pod."""

    pod: int
    index: int
    kind: str = "agg"


class EdgeSwitch(NamedTuple):
    """An edge (top-of-rack) switch inside a Pod."""

    pod: int
    index: int
    kind: str = "edge"


class PlainSwitch(NamedTuple):
    """An undifferentiated switch (random-graph topologies)."""

    index: int
    kind: str = "switch"


SwitchId = Union[CoreSwitch, AggSwitch, EdgeSwitch, PlainSwitch]
ServerId = int


def switch_kind(node: SwitchId) -> str:
    """Return the layer/kind discriminant of a switch node."""
    return node.kind


class Network:
    """A switch fabric with attached servers and port accounting.

    Parameters
    ----------
    name:
        Human-readable topology name (used in reports and ``repr``).

    Notes
    -----
    The fabric is held as an undirected :class:`networkx.Graph`.  Every
    edge has two attributes:

    ``capacity``
        total bandwidth of the bundle, in link-bandwidth units (one unit
        per physical cable);
    ``mult``
        number of parallel physical cables folded into the edge.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._fabric = nx.Graph()
        self._ports: Dict[SwitchId, int] = {}
        self._ports_used: Dict[SwitchId, int] = {}
        self._server_loc: Dict[ServerId, SwitchId] = {}
        self._servers_on: Dict[SwitchId, List[ServerId]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_switch(self, node: SwitchId, ports: int) -> None:
        """Register a switch with a fixed number of physical ports."""
        if node in self._ports:
            raise TopologyError(f"switch {node!r} already exists")
        if ports <= 0:
            raise TopologyError(f"switch {node!r} needs a positive port count")
        self._ports[node] = ports
        self._ports_used[node] = 0
        self._servers_on[node] = []
        self._fabric.add_node(node)

    def add_server(self, server: ServerId, switch: SwitchId) -> None:
        """Attach ``server`` to ``switch``, consuming one switch port."""
        if server in self._server_loc:
            raise TopologyError(f"server {server} already attached")
        self._consume_port(switch)
        self._server_loc[server] = switch
        self._servers_on[switch].append(server)

    def add_cable(self, u: SwitchId, v: SwitchId, capacity: float = 1.0) -> None:
        """Add one physical cable between two distinct switches.

        Parallel cables accumulate on a single fabric edge.  Each cable
        consumes one port on each endpoint.
        """
        if u == v:
            raise TopologyError(f"self-loop cable on {u!r}")
        self._consume_port(u)
        self._consume_port(v)
        if self._fabric.has_edge(u, v):
            data = self._fabric[u][v]
            data["capacity"] += capacity
            data["mult"] += 1
        else:
            self._fabric.add_edge(u, v, capacity=capacity, mult=1)

    def remove_cable(self, u: SwitchId, v: SwitchId, capacity: float = 1.0) -> None:
        """Remove one physical cable between ``u`` and ``v``, freeing ports."""
        if not self._fabric.has_edge(u, v):
            raise TopologyError(f"no cable between {u!r} and {v!r}")
        data = self._fabric[u][v]
        data["mult"] -= 1
        data["capacity"] -= capacity
        if data["mult"] == 0:
            self._fabric.remove_edge(u, v)
        self._ports_used[u] -= 1
        self._ports_used[v] -= 1

    def detach_server(self, server: ServerId) -> SwitchId:
        """Detach ``server`` from its switch, freeing one port."""
        if server not in self._server_loc:
            raise TopologyError(f"server {server} is not attached")
        switch = self._server_loc.pop(server)
        self._servers_on[switch].remove(server)
        self._ports_used[switch] -= 1
        return switch

    def _consume_port(self, switch: SwitchId) -> None:
        if switch not in self._ports:
            raise TopologyError(f"unknown switch {switch!r}")
        if self._ports_used[switch] >= self._ports[switch]:
            raise PortBudgetError(
                f"switch {switch!r} has no free ports "
                f"({self._ports[switch]} total)"
            )
        self._ports_used[switch] += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def fabric(self) -> nx.Graph:
        """The switch-level graph (read it, do not mutate it)."""
        return self._fabric

    def switches(self) -> Iterator[SwitchId]:
        """Iterate over all switch nodes."""
        return iter(self._ports)

    def switches_of_kind(self, kind: str) -> List[SwitchId]:
        """All switches whose ``kind`` discriminant equals ``kind``."""
        return [s for s in self._ports if s.kind == kind]

    def servers(self) -> Iterator[ServerId]:
        """Iterate over all server ids."""
        return iter(self._server_loc)

    def server_switch(self, server: ServerId) -> SwitchId:
        """The switch a server is attached to."""
        try:
            return self._server_loc[server]
        except KeyError:
            raise TopologyError(f"server {server} is not attached") from None

    def servers_on(self, switch: SwitchId) -> List[ServerId]:
        """Servers attached to ``switch`` (copy)."""
        if switch not in self._servers_on:
            raise TopologyError(f"unknown switch {switch!r}")
        return list(self._servers_on[switch])

    def server_count(self, switch: SwitchId) -> int:
        """Number of servers attached to ``switch``."""
        if switch not in self._servers_on:
            raise TopologyError(f"unknown switch {switch!r}")
        return len(self._servers_on[switch])

    def ports(self, switch: SwitchId) -> int:
        """Total port budget of a switch."""
        return self._ports[switch]

    def ports_used(self, switch: SwitchId) -> int:
        """Ports consumed on a switch by cables and servers."""
        return self._ports_used[switch]

    def ports_free(self, switch: SwitchId) -> int:
        """Ports still available on a switch."""
        return self._ports[switch] - self._ports_used[switch]

    @property
    def num_switches(self) -> int:
        return len(self._ports)

    @property
    def num_servers(self) -> int:
        return len(self._server_loc)

    @property
    def num_cables(self) -> int:
        """Physical cable count (parallel cables counted individually)."""
        return sum(d["mult"] for _, _, d in self._fabric.edges(data=True))

    def capacity(self, u: SwitchId, v: SwitchId) -> float:
        """Total capacity of the bundle between ``u`` and ``v`` (0 if none)."""
        if not self._fabric.has_edge(u, v):
            return 0.0
        return self._fabric[u][v]["capacity"]

    def degree(self, switch: SwitchId) -> int:
        """Cable-level degree of ``switch`` (parallel cables counted)."""
        return sum(
            self._fabric[switch][nbr]["mult"] for nbr in self._fabric[switch]
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def switch_index(self) -> Dict[SwitchId, int]:
        """A stable switch -> dense integer index mapping.

        The ordering is the switch insertion order, which builders keep
        deterministic, so the same topology always yields the same index.
        """
        return {s: i for i, s in enumerate(self._ports)}

    def host_counts(self) -> Dict[SwitchId, int]:
        """Mapping switch -> number of attached servers (only non-zero)."""
        return {s: len(v) for s, v in self._servers_on.items() if v}

    def copy(self) -> "Network":
        """Deep-enough copy: fabric, ports, and server attachments."""
        clone = Network(self.name)
        for s, p in self._ports.items():
            clone.add_switch(s, p)
        for u, v, d in self._fabric.edges(data=True):
            for _ in range(d["mult"]):
                clone.add_cable(u, v, capacity=d["capacity"] / d["mult"])
        for server, switch in self._server_loc.items():
            clone.add_server(server, switch)
        return clone

    def edge_list(self) -> List[Tuple[SwitchId, SwitchId, float]]:
        """All fabric edges as ``(u, v, capacity)`` tuples."""
        return [
            (u, v, d["capacity"]) for u, v, d in self._fabric.edges(data=True)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Network {self.name!r}: {self.num_switches} switches, "
            f"{self.num_servers} servers, {self.num_cables} cables>"
        )


def total_ports(net: Network) -> int:
    """Sum of the port budgets over all switches (equipment audit helper)."""
    return sum(net.ports(s) for s in net.switches())


def equipment_signature(net: Network) -> Tuple[int, int, Tuple[int, ...]]:
    """A summary used to check two topologies use identical equipment.

    Returns ``(num_servers, num_switches, sorted port budgets)``.  Two
    networks built "with the same equipment" in the paper's sense must
    have equal signatures.
    """
    budgets = tuple(sorted(net.ports(s) for s in net.switches()))
    return (net.num_servers, net.num_switches, budgets)


def merge_parallel(
    edges: Iterable[Tuple[SwitchId, SwitchId]]
) -> Dict[frozenset, int]:
    """Count multiplicity of undirected edge pairs in ``edges``.

    Keys are 2-element frozensets so that heterogeneous switch kinds
    (whose tuples are not mutually orderable) can be mixed freely.
    Helper for builders that generate raw cable lists before loading them
    into a :class:`Network`.
    """
    counts: Dict[frozenset, int] = {}
    for u, v in edges:
        key = frozenset((u, v))
        counts[key] = counts.get(key, 0) + 1
    return counts
