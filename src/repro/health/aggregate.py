"""Streaming aggregation over the telemetry bus.

:class:`HealthAggregator` is an incremental consumer of the wire
events defined by :mod:`repro.obs.contract`.  It attaches to the live
bus through :class:`HealthSink` (a tee installed by
:func:`repro.health.attach`) or replays any recorded telemetry JSONL
(:meth:`HealthAggregator.replay_lines`), and maintains **windowed
rollups** per series:

* per-directed-link utilization EWMA, peak, and freshness from
  ``link_sample`` events — the top-k hot-link view and the Gini
  imbalance probe;
* per-metric-name rollups (EWMA + sliding-window quantiles via
  :class:`repro.obs.WindowedQuantile`) from ``histogram`` / ``timer`` /
  ``gauge`` / ``counter`` updates — e.g. the windowed ``flowsim.fct_s``
  p99 the FCT-regression rule watches;
* one-off event counts with a bounded timestamp window (retry storms);
* the conversion downtime ledger from ``link_down`` / ``link_up``.

Costs follow the :mod:`repro.obs` contract: O(1) state per series,
no per-event allocation on the hot path (rollups are keyed dicts of
``__slots__`` objects), and zero overhead when nothing is attached.
Rules (:mod:`repro.health.rules`) and SLOs (:mod:`repro.health.slo`)
are evaluated every ``eval_every`` consumed events — never per event —
so judgment stays off the hot path too.

Determinism: the aggregator's clock is the **simulated** ``t`` carried
by link/one-off events, never wall-clock ``ts``, so replaying the same
JSONL twice yields byte-identical judgments and reports.
"""

from __future__ import annotations

import json
import math
import threading
from typing import (TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.errors import ReproError
from repro.obs import Ewma, WindowedQuantile, gini
from repro.obs.sinks import Sink, TelemetryEvent

if TYPE_CHECKING:  # circular at runtime: rules/slo probe the aggregator
    from repro.health.rules import RulesEngine
    from repro.health.slo import SloTracker

#: Default sliding-window size for per-metric quantile rollups.
DEFAULT_WINDOW = 128
#: Default rule/SLO evaluation cadence, in consumed events.
DEFAULT_EVAL_EVERY = 32
#: A link not sampled for this many simulated seconds is stale: it
#: drops out of the hotspot probe (its flows finished or moved).
DEFAULT_STALE_AFTER = 1.0
#: EWMA smoothing for utilization/metric rollups.
DEFAULT_ALPHA = 0.2
#: A metric's self-baseline (for ``ratio:`` regression probes) freezes
#: as the window p99 once this many samples have arrived.
BASELINE_SAMPLES = 32


class LinkRollup:
    """O(1) utilization state for one directed link."""

    __slots__ = ("link", "ewma", "peak", "last", "last_t", "samples")

    def __init__(self, link: str, alpha: float) -> None:
        self.link = link
        self.ewma = Ewma(alpha)
        self.peak = 0.0
        self.last = 0.0
        self.last_t = 0.0
        self.samples = 0

    def record(self, t: float, utilization: float) -> None:
        # Inlined Ewma.update: this runs once per link_sample, the
        # dominant event on a monitored bus, and the method call +
        # defensive float() there are measurable at that volume.
        self.samples += 1
        ewma = self.ewma
        ewma.count += 1
        if ewma.count == 1:
            ewma.value = utilization
        else:
            ewma.value += ewma.alpha * (utilization - ewma.value)
        self.last = utilization
        self.last_t = t
        if utilization > self.peak:
            self.peak = utilization

    def snapshot(self) -> Dict[str, object]:
        return {
            "link": self.link,
            "ewma": self.ewma.value,
            "peak": self.peak,
            "last": self.last,
            "last_t": self.last_t,
            "samples": self.samples,
        }


class MetricRollup:
    """EWMA + sliding-window quantiles + rate-of-change for one metric."""

    __slots__ = ("name", "kind", "ewma", "window", "total", "last",
                 "prev", "rate_of_change", "baseline")

    def __init__(self, name: str, kind: str, alpha: float,
                 window: int) -> None:
        self.name = name
        self.kind = kind
        self.ewma = Ewma(alpha)
        self.window = WindowedQuantile(window)
        self.total = 0.0
        self.last = 0.0
        self.prev = 0.0
        self.rate_of_change = 0.0
        #: p99 of the first :data:`BASELINE_SAMPLES` observations —
        #: the denominator of ``ratio:`` regression probes (nan until
        #: enough samples arrive, then frozen for the trace).
        self.baseline = math.nan

    def record(self, value: float) -> None:
        self.prev, self.last = self.last, value
        if self.window.count:
            self.rate_of_change = value - self.prev
        self.ewma.update(value)
        self.window.push(value)
        self.total += value
        if self.window.count == BASELINE_SAMPLES:
            self.baseline = self.window.quantile(0.99)

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "count": self.window.count,
            "total": self.total,
            "ewma": self.ewma.value,
            "last": self.last,
            "rate_of_change": self.rate_of_change,
            "baseline": self.baseline,
        }
        out.update(self.window.summary())
        return out


class EventRollup:
    """Count + bounded timestamp window for one registered one-off event."""

    __slots__ = ("name", "count", "times")

    def __init__(self, name: str, window: int) -> None:
        self.name = name
        self.count = 0
        self.times = WindowedQuantile(window)

    def record(self, t: Optional[float]) -> None:
        self.count += 1
        if t is not None:
            self.times.push(t)

    def rate(self) -> float:
        """Events per simulated second over the retained window."""
        if len(self.times) < 2:
            return 0.0
        span = self.times.quantile(1.0) - self.times.quantile(0.0)
        if span <= 0:
            return 0.0
        return (len(self.times) - 1) / span

    def snapshot(self) -> Dict[str, object]:
        return {"count": self.count, "window_rate": self.rate()}


class HealthAggregator:
    """Incremental judgments over a telemetry stream.

    Feed it wire events via :meth:`consume` (live, through
    :class:`HealthSink`) or :meth:`replay_lines` (offline); read
    :meth:`hottest_links`, :meth:`link_gini`, :attr:`dark_seconds`,
    per-metric rollups, the alert log and SLO state — or render all of
    it as a :class:`repro.health.report.HealthReport`.

    ``rules`` is a :class:`repro.health.rules.RulesEngine` (or None);
    ``slos`` a sequence of :class:`repro.health.slo.SloTracker`.  Both
    are evaluated every ``eval_every`` events and once at
    :meth:`finish`.
    """

    def __init__(
        self,
        rules: Optional["RulesEngine"] = None,
        slos: Sequence["SloTracker"] = (),
        window: int = DEFAULT_WINDOW,
        alpha: float = DEFAULT_ALPHA,
        eval_every: int = DEFAULT_EVAL_EVERY,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        if window < 1:
            raise ReproError("rollup window must be >= 1")
        if eval_every < 1:
            raise ReproError("eval_every must be >= 1")
        if stale_after <= 0:
            raise ReproError("stale_after must be positive")
        self.rules = rules
        self.slos: Tuple["SloTracker", ...] = tuple(slos)
        self.window = window
        self.alpha = alpha
        self.eval_every = eval_every
        self.stale_after = stale_after

        self.t = 0.0                      # trace clock (simulated s)
        self.events = 0                   # wire events consumed
        self.links: Dict[str, LinkRollup] = {}
        self.metrics: Dict[str, MetricRollup] = {}
        self.event_counts: Dict[str, EventRollup] = {}
        #: Latest ``progress.heartbeat`` payload per phase name — the
        #: long-run progress plane the ``top`` dashboard renders.
        self.progress: Dict[str, Dict[str, object]] = {}
        #: Open dark windows: link -> down_t.
        self.dark_open: Dict[str, float] = {}
        #: Cumulative closed dark time (link-seconds).
        self.dark_seconds = 0.0
        self.blink_windows = 0
        #: Rule firing/resolved + SLO burn episodes, in trace order.
        self.log: List[Dict[str, object]] = []
        #: Trace clock at the last evaluation (so same-``t`` event
        #: batches are judged once, not per eval_every boundary).
        self._last_eval_t = -math.inf
        #: The health tee runs :meth:`consume` on whatever thread
        #: emits (the self-heal loop, the sampler's stop path, the
        #: main thread replaying a file), so every rollup mutation and
        #: every rule/SLO evaluation happens under this lock.  The
        #: ``health.*`` early-return in :meth:`consume` stays outside
        #: it: rule firings re-enter through the tee, and the lock is
        #: deliberately non-reentrant.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def consume(self, event: Mapping[str, object]) -> None:
        """Fold one wire event into the rollups (hot path)."""
        get = event.get
        name = get("name")
        if not isinstance(name, str) or name.startswith("health."):
            return  # never aggregate our own judgments (no feedback loop)
        kind = get("kind")
        with self._lock:
            self.events += 1
            t = get("t")
            if t.__class__ is float:              # the wire-common case
                if t > self.t:
                    self.t = t
            elif isinstance(t, (int, float)) and not isinstance(t, bool):
                if t > self.t:
                    self.t = float(t)
            else:
                t = None

            if kind == "link_sample":
                # ~90% of a monitored run's bus traffic lands here: keep
                # it to two dict probes and one inlined rollup update
                # (the LinkRollup.record body, spelled out to drop a
                # call frame per sample — see the 5% bar in benchmarks).
                link = get("link")
                utilization = get("utilization")
                if isinstance(link, str) and isinstance(utilization,
                                                        (int, float)):
                    rollup = self.links.get(link)
                    if rollup is None:
                        rollup = LinkRollup(link, self.alpha)
                        self.links[link] = rollup
                    rollup.samples += 1
                    ewma = rollup.ewma
                    ewma.count += 1
                    if ewma.count == 1:
                        ewma.value = utilization
                    else:
                        ewma.value += ewma.alpha * (utilization - ewma.value)
                    rollup.last = utilization
                    rollup.last_t = self.t if t is None else t
                    if utilization > rollup.peak:
                        rollup.peak = utilization
            elif kind == "link_down":
                link = event.get("link")
                if isinstance(link, str) and t is not None:
                    self.dark_open.setdefault(link, float(t))
            elif kind == "link_up":
                link = event.get("link")
                if isinstance(link, str) and t is not None:
                    down_t = self.dark_open.pop(link, None)
                    if down_t is not None:
                        self.dark_seconds += max(0.0, float(t) - down_t)
                        self.blink_windows += 1
            elif kind in ("histogram", "gauge", "counter"):
                value = event.get("value")
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    self._metric(name, str(kind)).record(float(value))
            elif kind == "timer":
                duration = event.get("duration_s")
                if isinstance(duration, (int, float)):
                    self._metric(name, "timer").record(float(duration))
            elif kind == "event":
                rollup = self.event_counts.get(name)
                if rollup is None:
                    rollup = EventRollup(name, self.window)
                    self.event_counts[name] = rollup
                rollup.record(None if t is None else float(t))
                if name == "progress.heartbeat":
                    phase = event.get("phase")
                    if isinstance(phase, str) and phase:
                        self.progress[phase] = {
                            "done": event.get("done"),
                            "total": event.get("total"),
                            "elapsed_s": event.get("elapsed_s"),
                            "eta_s": event.get("eta_s"),
                            "rss_kb": event.get("rss_kb"),
                        }
            # span events carry phase timings already rolled up by
            # repro.obs.perf; the health plane does not re-aggregate them.

            # Judge every ``eval_every`` events, but only once per
            # distinct trace-clock value: the monitor emits each
            # sampling step as a same-``t`` batch of per-link events,
            # and re-judging mid-batch would re-derive the same verdict
            # at O(links) cost each time.
            if (self.events % self.eval_every == 0
                    and self.t > self._last_eval_t):
                self._evaluate_locked()

    def _metric(self, name: str, kind: str) -> MetricRollup:
        rollup = self.metrics.get(name)
        if rollup is None:
            rollup = MetricRollup(name, kind, self.alpha, self.window)
            self.metrics[name] = rollup
        return rollup

    def replay_lines(self, lines: Iterable[str]) -> "HealthAggregator":
        """Replay a recorded telemetry JSONL stream (offline mode)."""
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"bad telemetry line: {exc}") from exc
            if isinstance(event, dict):
                self.consume(event)
        self.finish()
        return self

    def finish(self) -> None:
        """Final rule/SLO evaluation once the stream ends."""
        self.evaluate()

    def evaluate(self) -> None:
        """Run the rules engine and SLO trackers against current state."""
        with self._lock:
            self._evaluate_locked()

    def _evaluate_locked(self) -> None:
        # Callers hold self._lock (consume's cadence check calls this
        # directly — the lock is non-reentrant).
        self._last_eval_t = self.t
        for slo in self.slos:
            slo.observe(self)
        if self.rules is not None:
            self.rules.evaluate(self)

    # ------------------------------------------------------------------
    # probes (consumed by rules, the report, and the TUI)
    # ------------------------------------------------------------------
    def fresh_links(self) -> List[LinkRollup]:
        """Links sampled within ``stale_after`` of the trace clock."""
        horizon = self.t - self.stale_after
        return [r for r in self.links.values() if r.last_t >= horizon]

    def hottest_links(self, k: int = 10) -> List[LinkRollup]:
        """Top-``k`` fresh links by EWMA utilization (stable order)."""
        return sorted(
            self.fresh_links(),
            key=lambda r: (-r.ewma.value, r.link),
        )[:k]

    def hottest_utilization(self) -> float:
        """EWMA utilization of the hottest fresh link (0 when none).

        Single pass, no sort: this probe runs on every rule evaluation,
        so it must stay O(links) with no per-call allocation.
        """
        horizon = self.t - self.stale_after
        best = 0.0
        for rollup in self.links.values():
            if rollup.last_t >= horizon and rollup.ewma.value > best:
                best = rollup.ewma.value
        return best

    def link_gini(self) -> float:
        """Gini coefficient over per-link EWMA utilization.

        Covers every link that ever carried traffic (stale links keep
        their final EWMA), mirroring the Jellyfish-style imbalance
        argument: a few links carrying everything scores high.
        """
        if not self.links:
            return 0.0
        return gini(r.ewma.value for r in self.links.values())

    def open_dark_links(self) -> List[str]:
        return sorted(self.dark_open)

    def event_count(self, name: str) -> int:
        rollup = self.event_counts.get(name)
        return rollup.count if rollup is not None else 0

    def event_rate(self, name: str) -> float:
        rollup = self.event_counts.get(name)
        return rollup.rate() if rollup is not None else 0.0

    def metric_stat(self, name: str, stat: str) -> float:
        """A named statistic of one metric rollup (nan when absent)."""
        rollup = self.metrics.get(name)
        if rollup is None:
            return float("nan")
        if stat in ("p50", "p90", "p99"):
            return rollup.window.quantile(float(stat[1:]) / 100.0)
        if stat == "ewma":
            return rollup.ewma.value
        if stat == "last":
            return rollup.last
        if stat == "mean":
            return rollup.window.mean
        if stat == "total":
            return rollup.total
        if stat == "rate_of_change":
            return rollup.rate_of_change
        raise ReproError(
            f"unknown rollup stat {stat!r} "
            "(want p50/p90/p99/ewma/last/mean/total/rate_of_change)"
        )

    def describe(self) -> str:
        return (
            f"health({self.events} events, {len(self.links)} links, "
            f"{len(self.metrics)} metric rollups, t={self.t:g})"
        )


class HealthSink(Sink):
    """Bus tee: forward every event to a sink *and* an aggregator.

    Install via :func:`repro.health.attach`, which wraps the current
    sink — producers keep emitting exactly as before, the aggregator
    sees every event, and the JSONL stream is unchanged.  Alert events
    the aggregator emits while consuming re-enter :meth:`emit` once and
    are ignored by :meth:`HealthAggregator.consume` (``health.*``
    names), so the tee cannot loop.
    """

    def __init__(self, inner: Sink, aggregator: HealthAggregator) -> None:
        self.inner = inner
        self.aggregator = aggregator
        # Bound-method caches: emit() runs per wire event, and the two
        # attribute chases per call are measurable at bus volume.
        self._forward = inner.emit
        self._consume = aggregator.consume

    def emit(self, event: TelemetryEvent) -> None:
        self._forward(event)
        self._consume(event)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> str:
        return f"health-tee({self.inner.describe()})"
