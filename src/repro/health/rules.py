"""Declarative alert rules over health-plane rollups.

A rule names a **probe** (what to measure on the aggregator), a
**threshold**, an optional **clear threshold** (hysteresis), and an
optional **sustained-for** duration in trace seconds.  The engine
drives each rule through the firing lifecycle::

    ok --breach--> pending --sustained--> firing --cleared--> ok
                      \\--recovered--> ok       (emits resolved)
        (emits firing when it promotes)

Firing and resolution are emitted on the telemetry bus as the
contract-registered events ``health.alert_firing`` /
``health.alert_resolved`` (no-ops when telemetry is off) and appended
to the aggregator's :attr:`~repro.health.aggregate.HealthAggregator.log`
either way, so offline replays produce the same judgment trail.

Probes are addressed by name:

==========================  =============================================
``link.hottest_ewma``       EWMA utilization of the hottest *fresh* link
``link.gini``               Gini imbalance over per-link EWMA utilization
``conversion.dark_s``       cumulative conversion downtime (link-seconds)
``conversion.dark_open``    count of links currently dark (down with no
                            matching up yet — open failure windows)
``rollup:<metric>:<stat>``  any metric rollup stat (p50/p90/p99/ewma/
                            last/mean/total/rate_of_change)
``ratio:<metric>``          windowed p99 of *metric* over its own
                            frozen early-trace p99 baseline
``event_count:<name>``      occurrences of a registered one-off event
``event_rate:<name>``       windowed rate (events / trace second)
==========================  =============================================

This module is the importable subscription surface the future online
mode controller consumes (ROADMAP item 3): build a
:class:`RulesEngine`, attach it to a live aggregator, and read
:meth:`RulesEngine.active` instead of parsing CLI output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.health.aggregate import HealthAggregator


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert over an aggregator probe.

    ``comparison`` is ``">"`` (breach when the probe exceeds
    ``threshold``) or ``"<"``; ``clear_threshold`` arms the hysteresis
    band — a firing alert resolves only once the probe crosses *it*
    (default: the threshold itself, i.e. no band); ``for_duration``
    requires the breach to persist that many trace seconds before the
    alert promotes from pending to firing.
    """

    name: str
    probe: str
    threshold: float
    clear_threshold: Optional[float] = None
    for_duration: float = 0.0
    comparison: str = ">"
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in (">", "<"):
            raise ReproError(
                f"rule {self.name!r}: comparison must be '>' or '<'")
        if self.for_duration < 0:
            raise ReproError(
                f"rule {self.name!r}: for_duration must be >= 0")
        clear = self.clear_threshold
        if clear is not None:
            if self.comparison == ">" and clear > self.threshold:
                raise ReproError(
                    f"rule {self.name!r}: clear_threshold must sit at or "
                    "below the firing threshold for '>' rules")
            if self.comparison == "<" and clear < self.threshold:
                raise ReproError(
                    f"rule {self.name!r}: clear_threshold must sit at or "
                    "above the firing threshold for '<' rules")

    @property
    def clear_at(self) -> float:
        return (self.threshold if self.clear_threshold is None
                else self.clear_threshold)

    def breached(self, value: float) -> bool:
        if math.isnan(value):
            return False
        return value > self.threshold if self.comparison == ">" \
            else value < self.threshold

    def cleared(self, value: float) -> bool:
        """Has the probe crossed back through the hysteresis band?"""
        if math.isnan(value):
            return False
        return value < self.clear_at if self.comparison == ">" \
            else value > self.clear_at


def probe_value(aggregator: "HealthAggregator", probe: str) -> float:
    """Evaluate one probe name against an aggregator (nan = undefined)."""
    return _compile_probe(probe)(aggregator)


#: One compiled probe: aggregator in, probe value out (nan = undefined).
ProbeFn = Callable[["HealthAggregator"], float]

#: Parsed probe cache — probes are evaluated on every rule/SLO
#: evaluation, and re-splitting the same handful of strings each time
#: is measurable against the health plane's 5% overhead bar.
_COMPILED_PROBES: Dict[str, ProbeFn] = {}


def _compile_probe(probe: str) -> ProbeFn:
    """Parse a probe name once into an ``aggregator -> float`` callable."""
    fn = _COMPILED_PROBES.get(probe)
    if fn is not None:
        return fn
    if probe == "link.hottest_ewma":
        fn = lambda agg: agg.hottest_utilization()           # noqa: E731
    elif probe == "link.gini":
        fn = lambda agg: agg.link_gini()                     # noqa: E731
    elif probe == "conversion.dark_s":
        fn = lambda agg: agg.dark_seconds                    # noqa: E731
    elif probe == "conversion.dark_open":
        fn = lambda agg: float(len(agg.dark_open))           # noqa: E731
    elif probe.startswith("rollup:"):
        try:
            _, metric, stat = probe.split(":", 2)
        except ValueError:
            raise ReproError(f"malformed probe {probe!r} "
                             "(want rollup:<metric>:<stat>)") from None
        fn = lambda agg: agg.metric_stat(metric, stat)       # noqa: E731
    elif probe.startswith("ratio:"):
        metric = probe.split(":", 1)[1]
        fn = lambda agg: _baseline_ratio(agg, metric)        # noqa: E731
    elif probe.startswith("event_count:"):
        name = probe.split(":", 1)[1]
        fn = lambda agg: float(agg.event_count(name))        # noqa: E731
    elif probe.startswith("event_rate:"):
        name = probe.split(":", 1)[1]
        fn = lambda agg: agg.event_rate(name)                # noqa: E731
    else:
        raise ReproError(f"unknown probe {probe!r}")
    _COMPILED_PROBES[probe] = fn
    return fn


def _baseline_ratio(aggregator: "HealthAggregator", metric: str) -> float:
    """Windowed p99 over the metric's frozen early-trace p99 baseline.

    Undefined (nan) until :data:`repro.health.aggregate.BASELINE_SAMPLES`
    observations froze the baseline — short traces never trip it.
    """
    rollup = aggregator.metrics.get(metric)
    if rollup is None:
        return math.nan
    baseline = rollup.baseline
    if math.isnan(baseline) or baseline <= 0:
        return math.nan
    return rollup.window.quantile(0.99) / baseline


@dataclass
class AlertState:
    """Mutable lifecycle state the engine keeps per rule."""

    rule: AlertRule
    status: str = "ok"            # ok | pending | firing
    pending_since: float = 0.0
    fired_at: float = 0.0
    value: float = math.nan       # last probe evaluation

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule.name,
            "probe": self.rule.probe,
            "status": self.status,
            "severity": self.rule.severity,
            "threshold": self.rule.threshold,
            "value": self.value,
        }
        if self.status == "firing":
            out["fired_at"] = self.fired_at
        return out


class RulesEngine:
    """Evaluates a rule set against an aggregator, with hysteresis.

    Drive it via :meth:`evaluate` (the aggregator does this on its
    evaluation cadence); inspect :meth:`active` for currently-firing
    alerts, or read the firing/resolved trail from the aggregator log.
    """

    def __init__(self, rules: Tuple[AlertRule, ...] = ()) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ReproError("alert rule names must be unique")
        self.states: Dict[str, AlertState] = {
            r.name: AlertState(rule=r) for r in rules
        }

    def evaluate(self, aggregator: "HealthAggregator") -> None:
        now = aggregator.t
        for state in self.states.values():
            rule = state.rule
            value = probe_value(aggregator, rule.probe)
            state.value = value
            if state.status == "firing":
                if rule.cleared(value):
                    self._resolve(aggregator, state, now, value)
            elif rule.breached(value):
                if state.status == "ok":
                    state.status = "pending"
                    state.pending_since = now
                if now - state.pending_since >= rule.for_duration:
                    self._fire(aggregator, state, now, value)
            else:
                state.status = "ok"

    def _fire(self, aggregator: "HealthAggregator", state: AlertState,
              now: float, value: float) -> None:
        state.status = "firing"
        state.fired_at = now
        rule = state.rule
        aggregator.log.append({
            "event": "alert_firing",
            "rule": rule.name,
            "metric": rule.probe,
            "severity": rule.severity,
            "value": value,
            "threshold": rule.threshold,
            "t": now,
        })
        obs.incr("health.alerts_fired")
        obs.event("health.alert_firing", rule=rule.name, metric=rule.probe,
                  value=value, threshold=rule.threshold, t=now)

    def _resolve(self, aggregator: "HealthAggregator", state: AlertState,
                 now: float, value: float) -> None:
        state.status = "ok"
        rule = state.rule
        fired_for = max(0.0, now - state.fired_at)
        aggregator.log.append({
            "event": "alert_resolved",
            "rule": rule.name,
            "metric": rule.probe,
            "severity": rule.severity,
            "value": value,
            "fired_for": fired_for,
            "t": now,
        })
        obs.incr("health.alerts_resolved")
        obs.event("health.alert_resolved", rule=rule.name,
                  metric=rule.probe, fired_for=fired_for, t=now)

    def active(self) -> List[AlertState]:
        """Currently-firing alerts, stable rule order."""
        return [s for s in sorted(self.states.values(),
                                  key=lambda s: s.rule.name)
                if s.status == "firing"]

    def snapshot(self) -> List[Dict[str, object]]:
        return [s.as_dict() for s in sorted(self.states.values(),
                                            key=lambda s: s.rule.name)]


def default_rules() -> Tuple[AlertRule, ...]:
    """The shipped rule catalog (documented in ``docs/health.md``).

    Thresholds are deliberately conservative: they fire on the
    pathologies the paper's conversion story cares about (a sustained
    hotspot the random-graph modes would dissolve, fabric imbalance,
    a conversion blowing its downtime budget, a retry storm from the
    resilient executor, an FCT-tail regression) without tripping on a
    balanced all-to-all.
    """
    return (
        AlertRule(
            name="link_hotspot",
            probe="link.hottest_ewma",
            threshold=0.9,
            clear_threshold=0.75,
            for_duration=0.5,
            severity="warning",
            description="a fresh link's EWMA utilization ran >90% for "
                        "0.5 simulated seconds (candidate zone for "
                        "random-graph conversion)",
        ),
        AlertRule(
            name="link_imbalance",
            probe="link.gini",
            threshold=0.6,
            clear_threshold=0.5,
            severity="warning",
            description="Gini over per-link EWMA utilization exceeds "
                        "0.6: a few links carry nearly everything",
        ),
        AlertRule(
            name="conversion_downtime",
            probe="conversion.dark_s",
            threshold=0.1,
            severity="critical",
            description="cumulative conversion downtime exceeded the "
                        "100 link-ms budget (never auto-resolves: "
                        "downtime is cumulative)",
        ),
        AlertRule(
            name="retry_storm",
            probe="event_count:core.reconfigure.converter_retry",
            threshold=10,
            severity="critical",
            description="more than 10 converter-command retries in one "
                        "run: the executor is fighting sustained faults",
        ),
        AlertRule(
            name="fct_regression",
            probe="ratio:flowsim.fct_s",
            threshold=1.5,
            clear_threshold=1.2,
            severity="warning",
            description="windowed flowsim FCT p99 rose >1.5x above the "
                        "run's own early baseline",
        ),
    )
