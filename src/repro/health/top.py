"""``flattree top`` — a live plain-refresh fabric dashboard.

Renders the health aggregator's state as a fixed-width ASCII frame:
per-link utilization bars for the hottest links, active alerts, SLO
error budgets, long-run progress heartbeats (``progress.heartbeat``
done/total bars with ETA and RSS), and conversion progress (downtime
ledger + reconfigure activity).  The renderer is a pure function of aggregator state, so
``--once`` frames are deterministic and testable; live mode just
reprints the frame behind an ANSI home/clear sequence every
``refresh_events`` consumed events (and can ``--follow`` a trace file
that is still being written).

No curses, no dependencies: ``print`` with ``\\x1b[H\\x1b[J`` is enough
for a data-center-fabric ``top`` and works in any terminal or CI log.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterator, List, Optional

from repro.errors import ReproError
from repro.health.aggregate import HealthAggregator

#: Frame width (bars scale to it).
WIDTH = 72
#: Utilization bar width in cells.
BAR_CELLS = 30
#: Default consumed-events-per-repaint in live mode.
REFRESH_EVENTS = 200

#: ANSI: cursor home + clear-to-end (plain refresh, no curses).
_CLEAR = "\x1b[H\x1b[J"

#: One-off event names surfaced in the conversion-progress panel.
_CONVERSION_EVENTS = (
    "core.reconfigure.step",
    "core.reconfigure.converter_retry",
    "flowsim.flow_rerouted",
)


def bar(fraction: float, cells: int = BAR_CELLS) -> str:
    """An ASCII utilization bar: ``[#######-----------]``."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * cells))
    return "[" + "#" * filled + "-" * (cells - filled) + "]"


def _as_int(value: object) -> int:
    """Best-effort integer for wire fields (0 when absent/malformed)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    return int(value)


def render_frame(aggregator: HealthAggregator, k: int = 10) -> str:
    """One dashboard frame, a pure function of aggregator state."""
    lines: List[str] = []
    lines.append(
        f"flattree top   t={aggregator.t:>8.3f}s   "
        f"events={aggregator.events}   links={len(aggregator.links)}   "
        f"metrics={len(aggregator.metrics)}"
    )
    lines.append("=" * WIDTH)

    lines.append(f"hot links (top {k} by EWMA, fresh within "
                 f"{aggregator.stale_after:g}s):")
    hottest = aggregator.hottest_links(k)
    if not hottest:
        lines.append("  (no link samples yet)")
    for rollup in hottest:
        lines.append(
            f"  {rollup.link:<24.24} {bar(rollup.ewma.value)} "
            f"{rollup.ewma.value:6.2f}  peak {rollup.peak:5.2f}"
        )
    lines.append(f"  fabric gini: {aggregator.link_gini():.3f}")

    lines.append("-" * WIDTH)
    rules = aggregator.rules
    if rules is None:
        lines.append("alerts: (no rules engine attached)")
    else:
        active = rules.active()  # type: ignore[attr-defined]
        lines.append(f"alerts: {len(active)} firing")
        for state in active:
            lines.append(
                f"  !! [{state.rule.severity}] {state.rule.name}  "
                f"{state.rule.probe} = {state.value:.4g} "
                f"(>{state.rule.threshold:g}) since t={state.fired_at:.3f}"
            )

    lines.append("-" * WIDTH)
    lines.append("slo budgets:")
    if not aggregator.slos:
        lines.append("  (none)")
    for tracker in aggregator.slos:
        snap = tracker.snapshot()  # type: ignore[attr-defined]
        budget = float(snap["budget"])  # type: ignore[arg-type]
        remaining = float(snap["budget_remaining"])  # type: ignore[arg-type]
        frac = remaining / budget if budget > 0 else 0.0
        flag = " BURNING" if snap["burning"] else ""
        lines.append(
            f"  {str(snap['slo']):<22.22} {bar(frac)} "
            f"{remaining:8.4f}/{budget:g} left{flag}"
        )

    if aggregator.progress:
        lines.append("-" * WIDTH)
        lines.append("progress (latest heartbeat per phase):")
        for phase in sorted(aggregator.progress):
            beat = aggregator.progress[phase]
            done = _as_int(beat.get("done"))
            total = _as_int(beat.get("total"))
            frac = done / total if total > 0 else 0.0
            detail = f"{done}/{total}" if total > 0 else f"{done} done"
            eta = beat.get("eta_s")
            if isinstance(eta, (int, float)) and not isinstance(eta, bool):
                detail += f"  eta {float(eta):.1f}s"
            rss = beat.get("rss_kb")
            if isinstance(rss, (int, float)) and not isinstance(rss, bool):
                detail += f"  rss {float(rss) / 1024:.0f}M"
            lines.append(
                f"  {phase:<24.24} {bar(frac, cells=16)} {detail}")

    lines.append("-" * WIDTH)
    lines.append(
        f"conversion: dark {aggregator.dark_seconds:.4f} link-s over "
        f"{aggregator.blink_windows} windows"
        + (f"; still dark: {len(aggregator.open_dark_links())}"
           if aggregator.dark_open else "")
    )
    for name in _CONVERSION_EVENTS:
        count = aggregator.event_count(name)
        if count:
            lines.append(f"  {name}: {count} "
                         f"({aggregator.event_rate(name):.2f}/s)")
    return "\n".join(lines) + "\n"


def _follow_lines(path: str, poll_s: float,
                  max_polls: Optional[int]) -> Iterator[str]:
    """Yield lines from a growing file, tail -f style."""
    polls = 0
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            line = handle.readline()
            if line:
                yield line
                continue
            polls += 1
            if max_polls is not None and polls >= max_polls:
                return
            time.sleep(poll_s)


def run_top(
    trace_path: str,
    out: IO[str],
    aggregator: HealthAggregator,
    once: bool = False,
    follow: bool = False,
    refresh_events: int = REFRESH_EVENTS,
    k: int = 10,
    poll_s: float = 0.25,
    max_polls: Optional[int] = None,
) -> HealthAggregator:
    """Drive the dashboard from a telemetry JSONL trace.

    ``once`` consumes the whole trace silently and prints a single
    final frame (no ANSI) — the CI/smoke-test mode.  Otherwise a frame
    is repainted every ``refresh_events`` consumed events; ``follow``
    keeps tailing the file for new lines (``max_polls`` bounds the
    wait, for tests).
    """
    if refresh_events < 1:
        raise ReproError("refresh_events must be >= 1")
    lines: Iterator[str]
    handle: Optional[IO[str]] = None
    if follow and not once:
        lines = _follow_lines(trace_path, poll_s, max_polls)
    else:
        handle = open(trace_path, "r", encoding="utf-8")
        lines = iter(handle)
    last_painted = 0
    try:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise ReproError(f"bad telemetry line: {exc}") from exc
            if isinstance(event, dict):
                aggregator.consume(event)
            if (not once
                    and aggregator.events - last_painted >= refresh_events):
                last_painted = aggregator.events
                out.write(_CLEAR + render_frame(aggregator, k=k))
                out.flush()
    finally:
        if handle is not None:
            handle.close()
    aggregator.finish()
    out.write(("" if once else _CLEAR) + render_frame(aggregator, k=k))
    out.flush()
    return aggregator
