"""Error budgets and multi-window burn-rate alerting.

An :class:`Slo` declares a **budget** of bad units (link-seconds of
conversion downtime, failed flows) allowed per ``slo_window`` of trace
time.  Its :class:`SloTracker` watches a *cumulative* aggregator probe
and keeps a bounded checkpoint history, from which it derives burn
rates over two trailing windows::

    burn(w) = (consumed over last w) / (budget * w / slo_window)

A burn rate of 1.0 means "spending exactly the budget"; the tracker
enters the *burning* state when **both** the short and the long window
exceed ``burn_threshold`` — the standard multi-window scheme: the long
window proves the problem is real, the short window proves it is still
happening, and together they keep a brief blip or a long-recovered
incident from paging.  Entering the burning state emits one
contract-registered ``health.slo_burn`` event and appends the episode
to the aggregator log; the state re-arms once either window recovers.

Probes must be cumulative (monotone non-decreasing); the tracker
clamps regressions, so a rollup that resets cannot refund budget.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Tuple

from repro import obs
from repro.errors import ReproError
from repro.health.rules import probe_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.health.aggregate import HealthAggregator


@dataclass(frozen=True)
class Slo:
    """One service-level objective over a cumulative probe."""

    name: str
    probe: str
    budget: float           # bad units allowed per slo_window
    slo_window: float       # trace seconds the budget covers
    short_window: float     # fast-burn detection window
    long_window: float      # sustained-burn confirmation window
    burn_threshold: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ReproError(f"slo {self.name!r}: budget must be positive")
        if not (0 < self.short_window <= self.long_window
                <= self.slo_window):
            raise ReproError(
                f"slo {self.name!r}: want 0 < short_window <= long_window "
                "<= slo_window")
        if self.burn_threshold <= 0:
            raise ReproError(
                f"slo {self.name!r}: burn_threshold must be positive")


class SloTracker:
    """Burn-rate state for one :class:`Slo` (attach to an aggregator)."""

    def __init__(self, slo: Slo) -> None:
        self.slo = slo
        #: (t, cumulative-consumed) checkpoints, oldest first, pruned
        #: to the retention horizon (one entry kept past it so trailing
        #: windows always have a reference point).
        self.history: Deque[Tuple[float, float]] = deque()
        self.consumed = 0.0     # cumulative, monotone-clamped
        self.burning = False
        self.burns = 0          # burn episodes entered

    # -- bookkeeping ---------------------------------------------------
    @property
    def _retention(self) -> float:
        return max(self.slo.long_window, self.slo.slo_window)

    def _checkpoint(self, now: float, cum: float) -> None:
        if self.history and self.history[-1][0] == now:
            self.history[-1] = (now, cum)
        else:
            self.history.append((now, cum))
        horizon = now - self._retention
        while len(self.history) > 1 and self.history[1][0] <= horizon:
            self.history.popleft()

    def _consumed_over(self, window: float, now: float) -> float:
        """Bad units spent in the trailing ``window`` trace seconds."""
        cutoff = now - window
        reference = self.history[0]
        for point in self.history:
            if point[0] <= cutoff:
                reference = point
            else:
                break
        return self.consumed - reference[1]

    def burn_rate(self, window: float, now: float) -> float:
        """Budget-normalized spend rate over one trailing window."""
        if not self.history:
            return 0.0
        allowed = self.slo.budget * window / self.slo.slo_window
        return self._consumed_over(window, now) / allowed

    @property
    def budget_remaining(self) -> float:
        """Budget left in the trailing ``slo_window`` (may go negative)."""
        if not self.history:
            return self.slo.budget
        now = self.history[-1][0]
        return self.slo.budget - self._consumed_over(self.slo.slo_window,
                                                     now)

    # -- evaluation (called by HealthAggregator.evaluate) --------------
    def observe(self, aggregator: "HealthAggregator") -> None:
        value = probe_value(aggregator, self.slo.probe)
        if not math.isnan(value) and value > self.consumed:
            self.consumed = value
        now = aggregator.t
        self._checkpoint(now, self.consumed)

        short = self.burn_rate(self.slo.short_window, now)
        long_ = self.burn_rate(self.slo.long_window, now)
        burning = (short >= self.slo.burn_threshold
                   and long_ >= self.slo.burn_threshold)
        if burning and not self.burning:
            self.burns += 1
            rate = max(short, long_)
            remaining = self.budget_remaining
            aggregator.log.append({
                "event": "slo_burn",
                "slo": self.slo.name,
                "burn_rate": rate,
                "burn_short": short,
                "burn_long": long_,
                "budget_remaining": remaining,
                "t": now,
            })
            obs.incr("health.slo_burns")
            obs.event("health.slo_burn", slo=self.slo.name, burn_rate=rate,
                      budget_remaining=remaining, t=now)
        self.burning = burning

    def snapshot(self) -> Dict[str, object]:
        now = self.history[-1][0] if self.history else 0.0
        return {
            "slo": self.slo.name,
            "probe": self.slo.probe,
            "budget": self.slo.budget,
            "slo_window": self.slo.slo_window,
            "consumed": self.consumed,
            "budget_remaining": self.budget_remaining,
            "burn_short": self.burn_rate(self.slo.short_window, now),
            "burn_long": self.burn_rate(self.slo.long_window, now),
            "burning": self.burning,
            "burns": self.burns,
        }


def default_slos() -> Tuple[SloTracker, ...]:
    """The shipped SLO catalog (documented in ``docs/health.md``).

    * ``conversion_downtime`` — the monitor's downtime ledger (PR 2)
      may spend at most 50 link-ms of dark time per 10 trace seconds:
      the paper's edit-sequence planner exists precisely to keep
      conversions inside such a budget.
    * ``flow_loss`` — at most 5 flows dropped-without-a-path per 10
      trace seconds, fed by the flowsim failure counter; chaos sweeps
      that partition the fabric burn this one.
    """
    return (
        SloTracker(Slo(
            name="conversion_downtime",
            probe="conversion.dark_s",
            budget=0.05,
            slo_window=10.0,
            short_window=1.0,
            long_window=5.0,
            description="cumulative link dark time during conversions "
                        "stays under 50 link-ms per 10 s",
        )),
        SloTracker(Slo(
            name="flow_loss",
            probe="rollup:flowsim.flows_failed:total",
            budget=5.0,
            slo_window=10.0,
            short_window=1.0,
            long_window=5.0,
            description="at most 5 flows lost to topology churn per "
                        "10 s of trace time",
        )),
    )
