"""repro.health — the fabric health plane.

Streaming aggregation over the telemetry bus, declarative alert rules
with hysteresis, SLO error budgets with multi-window burn-rate
alerting, and the rendering surfaces behind ``flattree top`` /
``flattree health`` (see ``docs/health.md``).

Two ways in:

* **live** — with telemetry enabled, :func:`attach` tees the current
  sink through a :class:`HealthSink`; every wire event keeps flowing
  to the original sink *and* folds into a :class:`HealthAggregator`.
  :func:`detach` restores the original sink and returns the aggregator
  for judgment.
* **offline** — :meth:`HealthAggregator.replay_lines` replays any
  recorded telemetry JSONL; same rollups, same rules, deterministic
  (byte-identical :class:`HealthReport` for the same trace).

The rule and SLO APIs are importable on purpose: the future online
mode controller (ROADMAP item 3) subscribes to
:meth:`RulesEngine.active` directly rather than scraping CLI output.
"""

from repro import obs
from repro.errors import ReproError
from repro.health.aggregate import (
    BASELINE_SAMPLES,
    DEFAULT_ALPHA,
    DEFAULT_EVAL_EVERY,
    DEFAULT_STALE_AFTER,
    DEFAULT_WINDOW,
    EventRollup,
    HealthAggregator,
    HealthSink,
    LinkRollup,
    MetricRollup,
)
from repro.health.report import HealthReport, prometheus_text
from repro.health.rules import (
    AlertRule,
    AlertState,
    RulesEngine,
    default_rules,
    probe_value,
)
from repro.health.slo import Slo, SloTracker, default_slos
from repro.health.top import render_frame, run_top

__all__ = [
    "AlertRule",
    "AlertState",
    "BASELINE_SAMPLES",
    "DEFAULT_ALPHA",
    "DEFAULT_EVAL_EVERY",
    "DEFAULT_STALE_AFTER",
    "DEFAULT_WINDOW",
    "EventRollup",
    "HealthAggregator",
    "HealthReport",
    "HealthSink",
    "LinkRollup",
    "MetricRollup",
    "RulesEngine",
    "Slo",
    "SloTracker",
    "attach",
    "default_rules",
    "default_slos",
    "detach",
    "new_aggregator",
    "probe_value",
    "prometheus_text",
    "render_frame",
    "run_top",
]


def new_aggregator(**kwargs: object) -> HealthAggregator:
    """A :class:`HealthAggregator` wired with the default catalogs."""
    kwargs.setdefault("rules", RulesEngine(default_rules()))
    kwargs.setdefault("slos", default_slos())
    return HealthAggregator(**kwargs)  # type: ignore[arg-type]


def attach(aggregator: "HealthAggregator | None" = None) -> HealthAggregator:
    """Tee the live telemetry bus into a health aggregator.

    Wraps the current sink in a :class:`HealthSink`; producers keep
    emitting exactly as before.  Telemetry must already be enabled
    (attach to a disabled bus would silently observe nothing), and
    stacking a second health tee is refused.
    """
    if not obs.enabled():
        raise ReproError(
            "telemetry is disabled — obs.enable(...) before health.attach()")
    if isinstance(obs.current_sink(), HealthSink):
        raise ReproError("health plane already attached")
    agg = aggregator if aggregator is not None else new_aggregator()
    obs.install_sink(HealthSink(obs.current_sink(), agg))
    return agg


def detach() -> HealthAggregator:
    """Restore the pre-:func:`attach` sink; finish + return the aggregator."""
    sink = obs.current_sink()
    if not isinstance(sink, HealthSink):
        raise ReproError("health plane is not attached")
    obs.install_sink(sink.inner)
    sink.aggregator.finish()
    return sink.aggregator
