"""HealthReport artifact: deterministic JSON/text/Prometheus renderings.

A :class:`HealthReport` freezes one aggregator's judgment — rollups,
alert states and trail, SLO budgets — into a plain dict.  Everything
in it derives from the trace's simulated clock (never wall time), and
the JSON rendering sorts keys and scrubs NaN, so replaying the same
telemetry JSONL twice yields **byte-identical** reports (CI diffs
them; see ``make health-smoke``).

:func:`prometheus_text` renders the same state in Prometheus text
exposition format for scrape-style integration.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.health.aggregate import HealthAggregator

#: Schema tag embedded in every report, bumped on breaking changes.
SCHEMA = "flattree.health/1"
#: Hot links included in the report body.
TOP_K = 10


def _scrub(value: object) -> object:
    """Replace NaN/inf with None so JSON stays standard and diffable."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value


class HealthReport:
    """One aggregator's state, frozen into a renderable artifact."""

    def __init__(self, aggregator: "HealthAggregator",
                 top_k: int = TOP_K) -> None:
        self.aggregator = aggregator
        self.top_k = top_k

    # -- structured ----------------------------------------------------
    def active_alerts(self) -> List[Dict[str, object]]:
        rules = self.aggregator.rules
        if rules is None:
            return []
        return [s.as_dict() for s in rules.active()]  # type: ignore[attr-defined]

    def alert_states(self) -> List[Dict[str, object]]:
        rules = self.aggregator.rules
        if rules is None:
            return []
        return list(rules.snapshot())  # type: ignore[attr-defined]

    def slo_states(self) -> List[Dict[str, object]]:
        return [slo.snapshot()  # type: ignore[attr-defined]
                for slo in self.aggregator.slos]

    @property
    def healthy(self) -> bool:
        """No alert firing and no SLO burning."""
        if self.active_alerts():
            return False
        return not any(s["burning"] for s in self.slo_states())

    def to_dict(self) -> Dict[str, object]:
        agg = self.aggregator
        return {
            "schema": SCHEMA,
            "healthy": self.healthy,
            "trace": {
                "events": agg.events,
                "t_end": agg.t,
                "links": len(agg.links),
                "metrics": len(agg.metrics),
            },
            "links": {
                "gini": agg.link_gini(),
                "fresh": len(agg.fresh_links()),
                "hottest": [r.snapshot() for r in
                            agg.hottest_links(self.top_k)],
            },
            "downtime": {
                "dark_seconds": agg.dark_seconds,
                "blink_windows": agg.blink_windows,
                "open": agg.open_dark_links(),
            },
            "metrics": {name: agg.metrics[name].snapshot()
                        for name in sorted(agg.metrics)},
            "events": {name: agg.event_counts[name].snapshot()
                       for name in sorted(agg.event_counts)},
            "alerts": {
                "states": self.alert_states(),
                "active": [str(a["rule"]) for a in self.active_alerts()],
            },
            "slos": self.slo_states(),
            "log": list(agg.log),
        }

    def to_json(self) -> str:
        return json.dumps(_scrub(self.to_dict()), sort_keys=True,
                          indent=2) + "\n"

    # -- human ---------------------------------------------------------
    def render_text(self) -> str:
        agg = self.aggregator
        lines = [
            f"flattree health — {agg.events} events, t={agg.t:g}s, "
            f"{len(agg.links)} links, {len(agg.metrics)} metric rollups",
            f"status: {'HEALTHY' if self.healthy else 'DEGRADED'}",
        ]
        active = self.active_alerts()
        lines.append(f"alerts firing: {len(active)}")
        for alert in active:
            lines.append(
                f"  [{alert['severity']}] {alert['rule']}: "
                f"{alert['probe']} = {_num(alert['value'])} "
                f"(threshold {_num(alert['threshold'])}, "
                f"since t={_num(alert.get('fired_at', 0.0))})"
            )
        for entry in agg.log:
            lines.append(f"  log: {entry['event']} "
                         f"{entry.get('rule', entry.get('slo'))} "
                         f"@t={_num(entry['t'])}")
        lines.append("slos:")
        for slo in self.slo_states():
            state = "BURNING" if slo["burning"] else "ok"
            lines.append(
                f"  {slo['slo']}: consumed {_num(slo['consumed'])} of "
                f"{_num(slo['budget'])}/{_num(slo['slo_window'])}s, "
                f"remaining {_num(slo['budget_remaining'])}, "
                f"burn {_num(slo['burn_short'])}x/{_num(slo['burn_long'])}x "
                f"[{state}]"
            )
        hottest = agg.hottest_links(self.top_k)
        if hottest:
            lines.append(f"hottest links (gini {_num(agg.link_gini())}):")
            for rollup in hottest:
                lines.append(
                    f"  {rollup.link}: ewma {_num(rollup.ewma.value)} "
                    f"peak {_num(rollup.peak)} "
                    f"({rollup.samples} samples)"
                )
        open_dark = agg.open_dark_links()
        lines.append(
            f"downtime: {_num(agg.dark_seconds)} link-s over "
            f"{agg.blink_windows} windows"
            + (f", still dark: {', '.join(open_dark)}" if open_dark else "")
        )
        return "\n".join(lines) + "\n"


def _num(value: object) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if isinstance(value, float) and math.isnan(value):
            return "n/a"
        return f"{value:.4g}"
    return str(value)


def _label(value: str) -> str:
    """Escape a Prometheus label value."""
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def prometheus_text(aggregator: "HealthAggregator",
                    report: Optional[HealthReport] = None) -> str:
    """Prometheus text exposition of the aggregator's current state."""
    report = report or HealthReport(aggregator)
    out: List[str] = []

    def family(name: str, kind: str, help_: str) -> None:
        out.append(f"# HELP {name} {help_}")
        out.append(f"# TYPE {name} {kind}")

    family("flattree_health_events_total", "counter",
           "Wire events consumed by the health aggregator.")
    out.append(f"flattree_health_events_total "
               f"{_prom_value(float(aggregator.events))}")

    family("flattree_link_utilization_ewma", "gauge",
           "EWMA utilization per hot directed link.")
    for rollup in aggregator.hottest_links(report.top_k):
        out.append(
            f'flattree_link_utilization_ewma{{link="{_label(rollup.link)}"}} '
            f"{_prom_value(rollup.ewma.value)}")

    family("flattree_link_gini", "gauge",
           "Gini imbalance over per-link EWMA utilization.")
    out.append(f"flattree_link_gini "
               f"{_prom_value(aggregator.link_gini())}")

    family("flattree_dark_seconds_total", "counter",
           "Cumulative conversion downtime (link-seconds).")
    out.append(f"flattree_dark_seconds_total "
               f"{_prom_value(aggregator.dark_seconds)}")

    family("flattree_metric", "gauge",
           "Windowed metric rollup statistics.")
    for name in sorted(aggregator.metrics):
        snap = aggregator.metrics[name].snapshot()
        for stat in ("p50", "p90", "p99", "ewma", "last"):
            value = snap[stat]
            assert isinstance(value, float)
            out.append(
                f'flattree_metric{{name="{_label(name)}",'
                f'stat="{stat}"}} {_prom_value(value)}')

    family("flattree_alert_firing", "gauge",
           "1 while the named alert rule is firing.")
    for state in report.alert_states():
        firing = 1.0 if state["status"] == "firing" else 0.0
        out.append(
            f'flattree_alert_firing{{rule="{_label(str(state["rule"]))}"}} '
            f"{_prom_value(firing)}")

    family("flattree_slo_budget_remaining", "gauge",
           "Error budget left in the trailing SLO window.")
    family_rows = []
    for slo in report.slo_states():
        family_rows.append(
            f'flattree_slo_budget_remaining{{slo="{_label(str(slo["slo"]))}"}} '
            f"{_prom_value(float(slo['budget_remaining']))}")  # type: ignore[arg-type]
    out.extend(family_rows)

    return "\n".join(out) + "\n"
