"""Flow-level FCT per operating mode (extension experiment).

The paper's evaluation scores capacity with an optimal-routing LP;
applications experience *flow completion time* under real
(k-shortest-paths) routing.  This experiment runs the fluid flow-level
simulator on a hot-spot-heavy workload in each operating mode and
reports mean FCT — the LP's capacity trends (random graph beats Clos on
skewed traffic) should survive routing realism.  It also exercises the
controller -> routing -> flowsim pipeline end to end, which makes it
the telemetry layer's coverage experiment for the routing and flowsim
metric families (see docs/observability.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.errors import ReproError
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.reconfigure import (
    MEMS_OPTICAL,
    Schedule,
    Technology,
    audit,
    disruption,
    schedule,
)
from repro.experiments.common import ExperimentResult
from repro.flowsim.simulator import (
    FlowSimulator,
    FlowSpec,
    SimulationResult,
)
from repro.monitor import NetworkMonitor

#: Modes compared; LOCAL_RANDOM adds nothing at small k and slows CI.
FCT_MODES: Tuple[Mode, ...] = (Mode.CLOS, Mode.GLOBAL_RANDOM)


def _hotspot_workload(num_servers: int, flows: int, rng: random.Random):
    """Half the flows fan out of one hot server, half are random pairs."""
    servers = list(range(num_servers))
    hotspot = rng.choice(servers)
    others = [s for s in servers if s != hotspot]
    specs = []
    for dst in rng.sample(others, min(flows // 2, len(others))):
        specs.append(FlowSpec(len(specs), hotspot, dst, size=1.0))
    while len(specs) < flows:
        a, b = rng.sample(servers, 2)
        specs.append(FlowSpec(len(specs), a, b, size=1.0))
    return specs


def run_fct(
    ks: Sequence[int] = (4, 6),
    flows: int = 24,
    seed: int = 0,
) -> ExperimentResult:
    """Mean FCT of a hot-spot workload per mode, over fat-tree k."""
    result = ExperimentResult(
        experiment="flow-level FCT under ksp routing (extension)",
        x_label="k",
        y_label="mean FCT (unit-size flows)",
    )
    series = {mode: result.new_series(mode.value) for mode in FCT_MODES}
    for k in ks:
        design = FlatTreeDesign.for_fat_tree(k)
        controller = Controller(FlatTree(design))
        workload = _hotspot_workload(
            design.params.num_servers, flows, random.Random(seed)
        )
        for mode, curve in series.items():
            controller.apply_mode(mode)
            simulator = FlowSimulator(controller.network, controller.route)
            sim = simulator.run(list(workload))
            curve.add(k, sim.mean_fct)
    result.notes.append(
        f"{flows} unit-size flows per point, half fanning out of one "
        f"hot-spot server; identical workload replayed per mode"
    )
    return result


@dataclass
class MonitoredConversionRun:
    """Artifacts of an FCT run monitored across a live conversion."""

    monitor: NetworkMonitor
    schedule: Schedule
    plan_summary: str
    t_convert: float
    t_restored: float
    before: SimulationResult
    after: SimulationResult
    dark_traffic: float
    disrupted_fraction: float


def run_fct_monitored(
    k: int = 4,
    flows: int = 24,
    seed: int = 0,
    technology: Technology = MEMS_OPTICAL,
    interval: float = 0.0,
) -> MonitoredConversionRun:
    """FCT run with the network monitor across a mid-run conversion.

    Timeline: the hot-spot workload's first half runs on Clos with a
    :class:`~repro.monitor.NetworkMonitor` sampling every allocation;
    at ``t_convert`` (mid-run of the Clos phase) the controller
    converts to global-random and :func:`repro.core.reconfigure.audit`
    replays the schedule's blink windows into the monitor's downtime
    ledger; the second half then runs on the converted fabric, arrivals
    stamped after the conversion completes, with the *same* monitor
    rebound to the new materialization.  The conversion is modeled as
    overlapping the Clos phase's tail (the fluid simulator cannot swap
    fabrics mid-event-loop), which is exactly what makes the
    ``dark_traffic`` figure non-trivial: it measures the flow-seconds
    of in-flight Clos traffic that crossed links while they blinked.
    """
    if flows < 2:
        raise ReproError("monitored FCT needs at least 2 flows "
                         "(one per conversion phase)")
    design = FlatTreeDesign.for_fat_tree(k)
    controller = Controller(FlatTree(design))
    workload = _hotspot_workload(
        design.params.num_servers, flows, random.Random(seed)
    )
    first, second = workload[: flows // 2], workload[flows // 2:]

    monitor = NetworkMonitor(controller.network, interval=interval)
    sim_before = FlowSimulator(
        controller.network, controller.route, monitor=monitor
    ).run(list(first))

    t_convert = 0.5 * sim_before.makespan
    before_net = controller.network
    plan = controller.apply_mode(Mode.GLOBAL_RANDOM)
    sched = schedule(plan, before_net, technology=technology)
    t_restored = audit(sched, monitor, start=t_convert)

    dark = monitor.dark_traffic(
        (c.path, c.start, c.finish)
        for c in sim_before.completed
        if c.path is not None
    )
    disrupted = disruption(
        plan,
        [(c.spec.flow_id, c.path) for c in sim_before.completed
         if c.path is not None],
    )

    monitor.rebind(controller.network)
    shifted = [
        FlowSpec(spec.flow_id, spec.src_server, spec.dst_server,
                 spec.size, arrival=t_restored + spec.arrival)
        for spec in second
    ]
    sim_after = FlowSimulator(
        controller.network, controller.route, monitor=monitor
    ).run(shifted)

    return MonitoredConversionRun(
        monitor=monitor,
        schedule=sched,
        plan_summary=plan.summary(),
        t_convert=t_convert,
        t_restored=t_restored,
        before=sim_before,
        after=sim_after,
        dark_traffic=dark,
        disrupted_fraction=disrupted,
    )
