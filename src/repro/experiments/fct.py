"""Flow-level FCT per operating mode (extension experiment).

The paper's evaluation scores capacity with an optimal-routing LP;
applications experience *flow completion time* under real
(k-shortest-paths) routing.  This experiment runs the fluid flow-level
simulator on a hot-spot-heavy workload in each operating mode and
reports mean FCT — the LP's capacity trends (random graph beats Clos on
skewed traffic) should survive routing realism.  It also exercises the
controller -> routing -> flowsim pipeline end to end, which makes it
the telemetry layer's coverage experiment for the routing and flowsim
metric families (see docs/observability.md).
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult
from repro.flowsim.simulator import FlowSimulator, FlowSpec

#: Modes compared; LOCAL_RANDOM adds nothing at small k and slows CI.
FCT_MODES: Tuple[Mode, ...] = (Mode.CLOS, Mode.GLOBAL_RANDOM)


def _hotspot_workload(num_servers: int, flows: int, rng: random.Random):
    """Half the flows fan out of one hot server, half are random pairs."""
    servers = list(range(num_servers))
    hotspot = rng.choice(servers)
    others = [s for s in servers if s != hotspot]
    specs = []
    for dst in rng.sample(others, min(flows // 2, len(others))):
        specs.append(FlowSpec(len(specs), hotspot, dst, size=1.0))
    while len(specs) < flows:
        a, b = rng.sample(servers, 2)
        specs.append(FlowSpec(len(specs), a, b, size=1.0))
    return specs


def run_fct(
    ks: Sequence[int] = (4, 6),
    flows: int = 24,
    seed: int = 0,
) -> ExperimentResult:
    """Mean FCT of a hot-spot workload per mode, over fat-tree k."""
    result = ExperimentResult(
        experiment="flow-level FCT under ksp routing (extension)",
        x_label="k",
        y_label="mean FCT (unit-size flows)",
    )
    series = {mode: result.new_series(mode.value) for mode in FCT_MODES}
    for k in ks:
        design = FlatTreeDesign.for_fat_tree(k)
        controller = Controller(FlatTree(design))
        workload = _hotspot_workload(
            design.params.num_servers, flows, random.Random(seed)
        )
        for mode, curve in series.items():
            controller.apply_mode(mode)
            simulator = FlowSimulator(controller.network, controller.route)
            sim = simulator.run(list(workload))
            curve.add(k, sim.mean_fct)
    result.notes.append(
        f"{flows} unit-size flows per point, half fanning out of one "
        f"hot-spot server; identical workload replayed per mode"
    )
    return result
