"""Self-healing soak: flowsim rides through a mid-run fault + repair.

The loop's end-to-end story on one timeline: a hot-spot workload runs
on a Clos fabric; at 40% of the baseline makespan an edge leg dies
(a ``TopologyEvent`` swaps in the degraded materialization — active
flows reroute over surviving links or fail); the remediation plane
sees the dark link, fires ``link_failure``, and heals the fabric
(converters re-programmed around the dead leg); a second
``TopologyEvent`` swaps in the healed materialization at the repair
time the ledger recorded.  The result compares the soaked run against
the undisturbed baseline — completions, reroutes, failures, and the
mean-FCT tax of living through the incident.

Everything is seeded and trace-clock driven: the repair time comes
from the deterministic remediation ledger, so two soaks with the same
arguments are identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.controller import Controller
from repro.core.design import FlatTreeDesign
from repro.core.failures import FailureSet, Leg, materialize_with_failures
from repro.core.flattree import FlatTree
from repro.core.reconfigure import MEMS_OPTICAL, Technology
from repro.errors import ReproError
from repro.experiments.fct import _hotspot_workload
from repro.flowsim import FlowSimulator, SimulationResult, TopologyEvent
from repro.selfheal.engine import (
    ControllerExecutor,
    RemediationEngine,
    new_selfheal_aggregator,
)
from repro.selfheal.ledger import RemediationLedger
from repro.selfheal.policy import ACTION_HEAL
from repro.selfheal.regret import DT, _link_down, _link_sample, ksp_router

#: How long (trace seconds) the loop gets to converge on the repair
#: before the soak declares it stuck.
_REPAIR_WINDOW_S = 5.0


@dataclass(frozen=True)
class SoakResult:
    """One soak run: baseline vs fault-and-heal timeline."""

    k: int
    flows: int
    seed: int
    t_fail: float
    t_repair: Optional[float]
    stranded_degraded: int
    stranded_healed: int
    baseline: SimulationResult
    soaked: SimulationResult
    ledger: RemediationLedger
    actions: Dict[str, int] = field(default_factory=dict)

    @property
    def repaired(self) -> bool:
        return self.t_repair is not None

    @property
    def fct_tax(self) -> float:
        """Mean-FCT ratio of the soaked run over the baseline."""
        base = self.baseline.mean_fct
        return self.soaked.mean_fct / base if base > 0 else 1.0

    def table(self) -> str:
        lines = [
            f"self-heal soak: k={self.k} flows={self.flows} "
            f"seed={self.seed}",
            f"  fault: edge leg dies at t={self.t_fail:.3f} "
            f"({self.stranded_degraded} server(s) stranded)",
        ]
        if self.t_repair is not None:
            lines.append(
                f"  repair: loop healed at t={self.t_repair:.3f} "
                f"(MTTR {self.t_repair - self.t_fail:.3f}s, "
                f"{self.stranded_healed} server(s) still dark)")
        else:
            lines.append("  repair: loop did NOT converge")
        lines.append(
            f"  {'run':<10} {'completed':>9} {'failed':>6} "
            f"{'rerouted':>8} {'mean-fct':>9}")
        for label, run in (("baseline", self.baseline),
                           ("soaked", self.soaked)):
            lines.append(
                f"  {label:<10} {len(run.completed):>9d} "
                f"{len(run.failed):>6d} {run.rerouted:>8d} "
                f"{run.mean_fct:>9.3f}")
        lines.append(f"  fct tax: {self.fct_tax:.3f}x")
        lines.append(f"  {self.ledger.summary()}")
        return "\n".join(lines)


def run_selfheal_soak(k: int = 4, flows: int = 24, seed: int = 0,
                      technology: Technology = MEMS_OPTICAL) -> SoakResult:
    """Run the fault-and-heal soak and return the comparison."""
    if k < 4 or k % 2:
        raise ReproError("k must be an even integer >= 4")
    ft = FlatTree(FlatTreeDesign.for_fat_tree(k))
    controller = Controller(ft)
    workload = _hotspot_workload(
        ft.params.num_servers, flows, random.Random(seed))

    baseline_net = controller.network
    baseline = FlowSimulator(
        baseline_net, ksp_router(baseline_net)).run(list(workload))
    t_fail = round(0.4 * baseline.makespan / DT) * DT

    victim = sorted(ft.four_port_ids())[0]
    failures = FailureSet.of_legs((victim, Leg.EDGE))
    # The degraded view is the pre-heal Clos with the dead leg; capture
    # it before the loop re-programs any converter.
    degraded = materialize_with_failures(ft, failures)
    stranded_degraded = ft.params.num_servers - len(list(degraded.servers()))

    agg = new_selfheal_aggregator(eval_every=4)
    executor = ControllerExecutor(
        controller, technology=technology, failures_at=lambda t: failures)
    engine = RemediationEngine(executor=executor)

    t_repair: Optional[float] = None
    ticks = int(round(_REPAIR_WINDOW_S / DT))
    for i in range(ticks + 1):
        t = round(t_fail + i * DT, 10)
        agg.consume(_link_sample(t, "bg0->bg1", 0.10))
        if i == 0:
            agg.consume(_link_down(t, f"c{victim}->edge"))
        for entry in engine.poll(agg):
            if entry.status == "succeeded" and entry.action == ACTION_HEAL:
                t_repair = round(entry.t + max(entry.latency_s, DT), 10)
        if t_repair is not None:
            break

    events = [TopologyEvent(t_fail, degraded, ksp_router(degraded),
                            label="leg_fail")]
    healed = materialize_with_failures(ft, failures)
    stranded_healed = ft.params.num_servers - len(list(healed.servers()))
    if t_repair is not None:
        events.append(TopologyEvent(t_repair, healed, ksp_router(healed),
                                    label="selfheal"))
    soaked = FlowSimulator(
        baseline_net, ksp_router(baseline_net)).run(
            list(workload), events=events)

    actions: Dict[str, int] = {}
    for entry in engine.ledger.by_status("succeeded"):
        actions[entry.action] = actions.get(entry.action, 0) + 1
    return SoakResult(
        k=k, flows=flows, seed=seed, t_fail=t_fail, t_repair=t_repair,
        stranded_degraded=stranded_degraded,
        stranded_healed=stranded_healed,
        baseline=baseline, soaked=soaked, ledger=engine.ledger,
        actions=actions)
