"""Figure 8: throughput of all-to-all traffic in 20-member clusters.

Every cluster runs all-to-all among its 20 members; flat-tree operates
as approximated local random graphs.  Expected shape (paper §3.3):

* flat-tree tracks the local-random-graph optimum; it beats two-stage
  random graph for small networks (k <= 14) and stays within ~6-9%
  beyond;
* fat-tree is highly placement-sensitive: good with strong locality,
  collapsing under weak locality;
* the random graph is moderate but the least locality-sensitive.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_FLOW_KS,
    ExperimentResult,
    baseline_networks,
    flat_tree_network,
    ks_from_env,
    throughput_of,
)
from repro.core.conversion import Mode
from repro.mcf.commodities import Commodity
from repro.topology.clos import ClosParams, fat_tree_params
from repro.traffic.clusters import (
    ALL_TO_ALL_CLUSTER_SIZE,
    cluster_count,
    make_clusters,
)
from repro.traffic.patterns import all_to_all_commodities
from repro.traffic.placement import placement_by_name

PLACEMENTS: Sequence[str] = ("locality", "weak locality")


def all_to_all_workload(
    params: ClosParams,
    placement_name: str,
    rng: random.Random,
    cluster_size: int = ALL_TO_ALL_CLUSTER_SIZE,
) -> List[Commodity]:
    """The Figure-8 workload: all-to-all inside every cluster."""
    clusters = cluster_count(params.num_servers, cluster_size)
    placement = placement_by_name(
        placement_name, clusters * cluster_size, params, cluster_size, rng
    )
    return all_to_all_commodities(
        make_clusters(placement, cluster_size, rng)
    )


def run_fig8(
    ks: Optional[Sequence[int]] = None,
    seed: int = 0,
    cluster_size: int = ALL_TO_ALL_CLUSTER_SIZE,
    solver: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Figure 8 over the given k sweep."""
    ks = ks or ks_from_env(DEFAULT_FLOW_KS)
    result = ExperimentResult(
        experiment="fig8: all-to-all throughput, 20-member clusters",
        x_label="k",
        y_label="throughput (lambda)",
    )
    topologies = ("fat-tree", "flat-tree", "two-stage random graph",
                  "random graph")
    series = {
        (topo, place): result.new_series(f"{topo} {place}")
        for topo in topologies
        for place in PLACEMENTS
    }
    for k in ks:
        params = fat_tree_params(k)
        baselines = baseline_networks(k, seed)
        nets = {
            "fat-tree": baselines["fat-tree"],
            "flat-tree": flat_tree_network(k, Mode.LOCAL_RANDOM),
            "two-stage random graph": baselines["two-stage"],
            "random graph": baselines["random graph"],
        }
        for place in PLACEMENTS:
            workload = all_to_all_workload(
                params, place, random.Random(seed + hash(place) % 1000),
                cluster_size=cluster_size,
            )
            for topo, net in nets.items():
                series[(topo, place)].add(
                    k, throughput_of(net, workload, force=solver)
                )
    result.notes.append(
        "paper shape: flat-tree ~ local random optimum, beats two-stage "
        "for k <= 14; fat-tree collapses under weak locality"
    )
    return result
