"""Paper experiments: one module per figure/table (see DESIGN.md §4)."""

from repro.experiments.common import (
    DEFAULT_APL_KS,
    DEFAULT_FLOW_KS,
    PAPER_KS,
    ExperimentResult,
    Series,
    baseline_networks,
    flat_tree_network,
    ks_from_env,
    solve_throughput,
    throughput_of,
)
from repro.experiments.degradation import degrade, run_degradation
from repro.experiments.fct import run_fct
from repro.experiments.fig5_pathlength import run_fig5
from repro.experiments.fig6_pod_pathlength import run_fig6
from repro.experiments.fig7_broadcast import run_fig7
from repro.experiments.fig8_alltoall import run_fig8
from repro.experiments.hybrid import HybridRow, hybrid_point, run_hybrid
from repro.experiments.report import (
    Report,
    ReportScale,
    generate_report,
    write_report,
)
from repro.experiments.statistics import (
    SeededResult,
    SeriesStats,
    run_seeded,
    significantly_below,
)

__all__ = [
    "DEFAULT_APL_KS",
    "DEFAULT_FLOW_KS",
    "ExperimentResult",
    "HybridRow",
    "PAPER_KS",
    "Report",
    "ReportScale",
    "SeededResult",
    "Series",
    "SeriesStats",
    "baseline_networks",
    "degrade",
    "flat_tree_network",
    "hybrid_point",
    "ks_from_env",
    "run_degradation",
    "run_fct",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_hybrid",
    "generate_report",
    "run_seeded",
    "write_report",
    "significantly_below",
    "solve_throughput",
    "throughput_of",
]
