"""Multi-seed experiment statistics.

Several reproduced curves (random graph, two-stage, weak-locality
placements, random hotspots) carry draw-to-draw noise.  The paper plots
single draws; for claims near a tie — flat-tree vs two-stage in Figure
6, zone throughput vs reference in §3.4 — a mean ± spread over seeds is
the honest comparison.  :func:`run_seeded` executes any seeded
experiment function over a seed list and aggregates per-series
statistics; :func:`summarize_seeded` renders them as a table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult


@dataclass
class SeriesStats:
    """Per-x mean/std/min/max of one series across seeds."""

    label: str
    samples: Dict[float, List[float]] = field(default_factory=dict)

    def add(self, x: float, value: float) -> None:
        self.samples.setdefault(x, []).append(value)

    def mean(self, x: float) -> float:
        values = self._values(x)
        return sum(values) / len(values)

    def std(self, x: float) -> float:
        values = self._values(x)
        if len(values) < 2:
            return 0.0
        mu = sum(values) / len(values)
        return math.sqrt(
            sum((v - mu) ** 2 for v in values) / (len(values) - 1)
        )

    def spread(self, x: float) -> Tuple[float, float]:
        values = self._values(x)
        return min(values), max(values)

    def xs(self) -> List[float]:
        return sorted(self.samples)

    def _values(self, x: float) -> List[float]:
        try:
            return self.samples[x]
        except KeyError:
            raise ReproError(f"no samples at x={x} for {self.label!r}") from None


@dataclass
class SeededResult:
    """Aggregated outcome of a multi-seed experiment run."""

    experiment: str
    seeds: Tuple[int, ...]
    series: Dict[str, SeriesStats] = field(default_factory=dict)

    def stats(self, label: str) -> SeriesStats:
        try:
            return self.series[label]
        except KeyError:
            raise ReproError(f"no series {label!r}") from None

    def table(self, precision: int = 4) -> str:
        labels = sorted(self.series)
        xs = sorted({x for s in self.series.values() for x in s.xs()})
        header = ["x"] + [f"{label} (mean+-std)" for label in labels]
        rows = []
        for x in xs:
            row = [f"{x:g}"]
            for label in labels:
                stats = self.series[label]
                if x in stats.samples:
                    row.append(
                        f"{stats.mean(x):.{precision}f}"
                        f"+-{stats.std(x):.{precision}f}"
                    )
                else:
                    row.append("-")
            rows.append(row)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def run_seeded(
    experiment: Callable[..., ExperimentResult],
    seeds: Sequence[int],
    **kwargs,
) -> SeededResult:
    """Run ``experiment(seed=s, **kwargs)`` per seed and aggregate."""
    if not seeds:
        raise ReproError("need at least one seed")
    aggregated: SeededResult = SeededResult(
        experiment="", seeds=tuple(seeds)
    )
    for seed in seeds:
        result = experiment(seed=seed, **kwargs)
        aggregated.experiment = result.experiment + " [multi-seed]"
        for series in result.series:
            stats = aggregated.series.setdefault(
                series.label, SeriesStats(series.label)
            )
            for x, value in series.points.items():
                stats.add(x, value)
    return aggregated


def significantly_below(
    result: SeededResult, low_label: str, high_label: str, x: float
) -> bool:
    """Whether ``low`` beats ``high`` beyond one pooled std at ``x``.

    The smoke-level significance check the integration tests use for
    near-tie claims (no distributional assumptions pretended).
    """
    low = result.stats(low_label)
    high = result.stats(high_label)
    margin = low.std(x) + high.std(x)
    return low.mean(x) < high.mean(x) - margin
