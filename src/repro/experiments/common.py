"""Shared experiment machinery: results, topology factory, solver dispatch.

Every experiment module produces an :class:`ExperimentResult` — labelled
series over the fat-tree parameter k (or another x-axis) — which renders
to an aligned text table, the library's equivalent of the paper's
figures.  Seeds are explicit everywhere so every number in
EXPERIMENTS.md is reproducible bit-for-bit.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.errors import ReproError
from repro.mcf.approx import solve_concurrent_approx
from repro.mcf.commodities import FlowProblem, build_flow_problem
from repro.mcf.exact import solve_concurrent_exact
from repro.topology.clos import ClosParams, fat_tree_params
from repro.topology.elements import Network
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree
from repro.topology.twostage import build_two_stage

#: Above this LP size (groups x arcs), throughput solves switch to the
#: Garg-Könemann approximation.  Tuned so default benches stay laptop-fast.
EXACT_LP_VAR_LIMIT = 600_000


@dataclass
class Series:
    """One labelled curve: x -> y."""

    label: str
    points: Dict[float, float] = field(default_factory=dict)

    def add(self, x: float, y: float) -> None:
        self.points[x] = y

    def xs(self) -> List[float]:
        return sorted(self.points)


@dataclass
class ExperimentResult:
    """A figure/table reproduction: several series over one x-axis."""

    experiment: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.experiment}")

    def new_series(self, label: str) -> Series:
        series = Series(label)
        self.series.append(series)
        return series

    def xs(self) -> List[float]:
        out: set = set()
        for s in self.series:
            out.update(s.points)
        return sorted(out)

    def table(self, precision: int = 4) -> str:
        """Render as an aligned text table (x column + one per series)."""
        headers = [self.x_label] + [s.label for s in self.series]
        rows: List[List[str]] = []
        for x in self.xs():
            row = [_fmt(x, 0 if float(x).is_integer() else precision)]
            for s in self.series:
                value = s.points.get(x)
                row.append("-" if value is None else _fmt(value, precision))
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)


def _fmt(value: float, precision: int) -> str:
    if precision == 0:
        return str(int(value))
    return f"{value:.{precision}f}"


# ----------------------------------------------------------------------
# k ranges
# ----------------------------------------------------------------------
#: Paper sweep: k = 4, 6, ..., 32.
PAPER_KS: Sequence[int] = tuple(range(4, 34, 2))
#: Laptop-fast defaults for graph metrics (APL experiments).
DEFAULT_APL_KS: Sequence[int] = (4, 6, 8, 10, 12, 14, 16)
#: Laptop-fast defaults for LP-based throughput experiments.
DEFAULT_FLOW_KS: Sequence[int] = (4, 6, 8)


def ks_from_env(default: Sequence[int], env_var: str = "REPRO_KS") -> List[int]:
    """k sweep override: ``REPRO_KS="4,8,12"`` or ``REPRO_MAX_K=16``."""
    explicit = os.environ.get(env_var)
    if explicit:
        return [int(x) for x in explicit.replace(",", " ").split()]
    max_k = os.environ.get("REPRO_MAX_K")
    if max_k:
        return [k for k in PAPER_KS if k <= int(max_k)]
    return list(default)


# ----------------------------------------------------------------------
# topology factory
# ----------------------------------------------------------------------
def flat_tree_network(
    k: int,
    mode: Mode,
    m: Optional[int] = None,
    n: Optional[int] = None,
) -> Network:
    """Flat-tree(k) converted to ``mode`` (paper defaults for m, n)."""
    design = FlatTreeDesign.for_fat_tree(k, m=m, n=n)
    return convert(FlatTree(design), mode)


def baseline_networks(k: int, seed: int = 0) -> Dict[str, Network]:
    """The paper's comparison topologies for fat-tree parameter k."""
    params = fat_tree_params(k)
    return {
        "fat-tree": build_fat_tree(k),
        "random graph": build_jellyfish_like_fat_tree(k, random.Random(seed)),
        "two-stage": build_two_stage(params, random.Random(seed + 1)),
    }


def pod_groups_for(params: ClosParams) -> List[Sequence[int]]:
    """Server ids per Pod (the paper's in-Pod pairs of Figure 6)."""
    return [params.pod_servers(p) for p in range(params.pods)]


# ----------------------------------------------------------------------
# throughput solving
# ----------------------------------------------------------------------
def solve_throughput(
    problem: FlowProblem,
    epsilon: float = 0.08,
    force: Optional[str] = None,
) -> float:
    """Concurrent throughput, dispatching exact LP vs approximation.

    ``force`` may be ``"exact"`` or ``"approx"``; otherwise the exact LP
    is used while its variable count stays under
    :data:`EXACT_LP_VAR_LIMIT`.
    """
    method = force or os.environ.get("REPRO_SOLVER")
    if method not in (None, "exact", "approx"):
        raise ReproError(f"unknown solver {method!r}")
    if method is None:
        size = problem.num_groups * problem.num_arcs
        method = "exact" if size <= EXACT_LP_VAR_LIMIT else "approx"
    if method == "exact":
        return solve_concurrent_exact(problem).throughput
    return solve_concurrent_approx(problem, epsilon=epsilon).throughput


def throughput_of(
    net: Network,
    commodities: Iterable,
    force: Optional[str] = None,
) -> float:
    """Convenience: build the flow problem and solve it."""
    return solve_throughput(build_flow_problem(net, commodities), force=force)


def run_and_print(fn: Callable[[], ExperimentResult]) -> ExperimentResult:
    """Run an experiment and print its table (CLI helper)."""
    result = fn()
    print(f"== {result.experiment} ==")
    print(result.table())
    return result
