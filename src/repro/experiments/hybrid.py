"""Section 3.4: hybrid flat-tree — zone isolation under shared core.

The paper builds flat-tree with 30 Pods, splits it into a global-random
zone and a local-random zone at proportions 10%..90%, gives each zone
the complete-network workload of §3.3, and observes that "regardless of
the proportion, each zone constantly achieves the same throughput as
that of the corresponding complete network under the same locality
setting".

Reproduction: for each proportion we solve three concurrent-flow
problems on the hybrid network — the global zone's broadcast workload
alone, the local zone's all-to-all workload alone, and both together —
and compare against the complete network in the corresponding
homogeneous mode.  Zone isolation holds when the combined solve matches
the per-zone solves (no cross-zone interference) and each per-zone λ
matches its complete-network reference.

Scale substitution: the paper's k = 30 instance needs a commercial LP
solver; the default here is k = 8 (the claim is about *isolation*, not
absolute scale), overridable via ``REPRO_HYBRID_K``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.conversion import Mode, convert, hybrid_configs
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.zones import proportional_layout
from repro.experiments.common import ExperimentResult, throughput_of
from repro.mcf.commodities import Commodity
from repro.traffic.clusters import (
    ALL_TO_ALL_CLUSTER_SIZE,
    BROADCAST_CLUSTER_SIZE,
    make_clusters,
)
from repro.traffic.patterns import all_to_all_commodities, broadcast_commodities

DEFAULT_FRACTIONS: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def default_hybrid_k() -> int:
    return int(os.environ.get("REPRO_HYBRID_K", "8"))


def _continuous_members(servers: List[int], cluster_size: int) -> List[int]:
    """Continuous placement of wrapped cluster members over a server set."""
    clusters = max(1, len(servers) // cluster_size)
    total = clusters * cluster_size
    return [servers[i % len(servers)] for i in range(total)]


def zone_broadcast_workload(
    servers: List[int], rng: random.Random,
    cluster_size: int = BROADCAST_CLUSTER_SIZE,
) -> List[Commodity]:
    """§3.3 broadcast workload confined to one zone's servers (locality)."""
    members = _continuous_members(servers, cluster_size)
    clusters = make_clusters(members, cluster_size, rng, with_hotspots=True)
    return broadcast_commodities(clusters)


def zone_all_to_all_workload(
    servers: List[int], rng: random.Random,
    cluster_size: int = ALL_TO_ALL_CLUSTER_SIZE,
) -> List[Commodity]:
    """§3.3 all-to-all workload confined to one zone's servers (locality)."""
    members = _continuous_members(servers, cluster_size)
    clusters = make_clusters(members, cluster_size, rng)
    return all_to_all_commodities(clusters)


@dataclass
class HybridRow:
    """One proportion point of the §3.4 study."""

    fraction_global: float
    global_zone: float
    global_reference: float
    local_zone: float
    local_reference: float
    combined: float

    @property
    def isolated(self) -> bool:
        """Zones are isolated when sharing costs (almost) nothing."""
        floor = min(self.global_zone, self.local_zone)
        return self.combined >= 0.99 * floor


def run_hybrid(
    k: Optional[int] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    seed: int = 0,
    solver: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce the §3.4 hybrid study at parameter ``k``."""
    k = k or default_hybrid_k()
    design = FlatTreeDesign.for_fat_tree(k)
    params = design.params
    rng = random.Random(seed)

    # Complete-network references, per §3.3 with zone-local workloads of
    # the full server population.
    all_servers = list(range(params.num_servers))
    global_ref_net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
    global_ref = throughput_of(
        global_ref_net,
        zone_broadcast_workload(all_servers, random.Random(seed)),
        force=solver,
    )
    local_ref_net = convert(FlatTree(design), Mode.LOCAL_RANDOM)
    local_ref = throughput_of(
        local_ref_net,
        zone_all_to_all_workload(all_servers, random.Random(seed)),
        force=solver,
    )

    result = ExperimentResult(
        experiment=f"hybrid (section 3.4), k={k}",
        x_label="fraction global",
        y_label="throughput (lambda)",
    )
    s_global = result.new_series("global zone")
    s_gref = result.new_series("global reference")
    s_local = result.new_series("local zone")
    s_lref = result.new_series("local reference")
    s_comb = result.new_series("combined")

    for fraction in fractions:
        row = hybrid_point(
            design, fraction, seed=seed, solver=solver,
            global_reference=global_ref, local_reference=local_ref,
        )
        s_global.add(fraction, row.global_zone)
        s_gref.add(fraction, row.global_reference)
        s_local.add(fraction, row.local_zone)
        s_lref.add(fraction, row.local_reference)
        s_comb.add(fraction, row.combined)
    result.notes.append(
        "paper claim: each zone matches its complete-network reference at "
        "every proportion; combined ~ min(zones) means no interference"
    )
    return result


def hybrid_point(
    design: FlatTreeDesign,
    fraction_global: float,
    seed: int = 0,
    solver: Optional[str] = None,
    global_reference: Optional[float] = None,
    local_reference: Optional[float] = None,
) -> HybridRow:
    """Solve one proportion point of the hybrid study."""
    layout = proportional_layout(design.params, fraction_global)
    ft = FlatTree(design)
    ft.set_configs(hybrid_configs(ft, layout.pod_modes()))
    net = ft.materialize("flat-tree[hybrid]")

    g_servers = layout.zone_servers("global")
    l_servers = layout.zone_servers("local")
    g_load = zone_broadcast_workload(g_servers, random.Random(seed))
    l_load = zone_all_to_all_workload(l_servers, random.Random(seed))

    lam_g = throughput_of(net, g_load, force=solver)
    lam_l = throughput_of(net, l_load, force=solver)
    lam_combined = throughput_of(net, g_load + l_load, force=solver)
    return HybridRow(
        fraction_global=fraction_global,
        global_zone=lam_g,
        global_reference=(
            global_reference if global_reference is not None else float("nan")
        ),
        local_zone=lam_l,
        local_reference=(
            local_reference if local_reference is not None else float("nan")
        ),
        combined=lam_combined,
    )
