"""Figure 6: average path length of server pairs within each Pod.

Flat-tree runs as approximated local random graphs per Pod and is
compared against fat-tree, a global random graph, and the two-stage
random graph.  Expected order (paper §3.2):

    flat-tree < two-stage random graph < fat-tree < random graph

("Surprisingly, it outperforms two-stage random graph" — the regular
Clos edge-aggregation links beat pure randomness for in-Pod pairs.)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.conversion import Mode
from repro.experiments.common import (
    DEFAULT_APL_KS,
    ExperimentResult,
    baseline_networks,
    flat_tree_network,
    ks_from_env,
    pod_groups_for,
)
from repro.topology.clos import fat_tree_params
from repro.topology.stats import average_within_group_path_length


def run_fig6(
    ks: Optional[Sequence[int]] = None, seed: int = 0
) -> ExperimentResult:
    """Reproduce Figure 6 over the given k sweep."""
    ks = ks or ks_from_env(DEFAULT_APL_KS)
    result = ExperimentResult(
        experiment="fig6: average path length within Pods",
        x_label="k",
        y_label="average path length in Pods (hops)",
    )
    flat = result.new_series("flat-tree")
    fat = result.new_series("fat-tree")
    rnd = result.new_series("random graph")
    two = result.new_series("two-stage random graph")
    for k in ks:
        params = fat_tree_params(k)
        groups = pod_groups_for(params)
        baselines = baseline_networks(k, seed=seed)
        flat.add(
            k,
            average_within_group_path_length(
                flat_tree_network(k, Mode.LOCAL_RANDOM), groups
            ),
        )
        fat.add(
            k,
            average_within_group_path_length(baselines["fat-tree"], groups),
        )
        rnd.add(
            k,
            average_within_group_path_length(
                baselines["random graph"], groups
            ),
        )
        two.add(
            k,
            average_within_group_path_length(baselines["two-stage"], groups),
        )
    result.notes.append(
        "paper shape: flat-tree < two-stage < fat-tree < random graph"
    )
    return result
