"""Figure 7: throughput of broadcast/incast traffic in 1000-member clusters.

Each cluster has one random hot-spot member broadcasting to all other
members; all clusters run concurrently and the maximum concurrent flow λ
is reported.  Expected shape (paper §3.3): flat-tree ≈ random graph ≈
1.5 x fat-tree; throughput grows roughly linearly with k; none of the
topologies is sensitive to placement locality.

Incast is the arc-reversal of broadcast and achieves the identical λ in
the full-duplex model (see ``repro.mcf.commodities``), so only the
broadcast LPs are solved.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_FLOW_KS,
    ExperimentResult,
    baseline_networks,
    flat_tree_network,
    ks_from_env,
    throughput_of,
)
from repro.core.conversion import Mode
from repro.mcf.commodities import Commodity
from repro.topology.clos import ClosParams, fat_tree_params
from repro.topology.elements import Network
from repro.traffic.clusters import (
    BROADCAST_CLUSTER_SIZE,
    cluster_count,
    make_clusters,
)
from repro.traffic.patterns import broadcast_commodities
from repro.traffic.placement import placement_by_name

PLACEMENTS: Sequence[str] = ("locality", "no locality")


def broadcast_workload(
    params: ClosParams,
    placement_name: str,
    rng: random.Random,
    cluster_size: int = BROADCAST_CLUSTER_SIZE,
) -> List[Commodity]:
    """The Figure-7 workload: hot-spot broadcast in every cluster."""
    clusters = cluster_count(params.num_servers, cluster_size)
    placement = placement_by_name(
        placement_name, clusters * cluster_size, params, cluster_size, rng
    )
    return broadcast_commodities(
        make_clusters(placement, cluster_size, rng, with_hotspots=True)
    )


def run_fig7(
    ks: Optional[Sequence[int]] = None,
    seed: int = 0,
    cluster_size: int = BROADCAST_CLUSTER_SIZE,
    solver: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 over the given k sweep."""
    ks = ks or ks_from_env(DEFAULT_FLOW_KS)
    result = ExperimentResult(
        experiment="fig7: broadcast/incast throughput, 1000-member clusters",
        x_label="k",
        y_label="throughput (lambda)",
    )
    series = {
        (topo, place): result.new_series(f"{topo} {place}")
        for topo in ("fat-tree", "flat-tree", "random graph")
        for place in PLACEMENTS
    }
    for k in ks:
        params = fat_tree_params(k)
        nets = {
            "fat-tree": baseline_networks(k, seed)["fat-tree"],
            "flat-tree": flat_tree_network(k, Mode.GLOBAL_RANDOM),
            "random graph": baseline_networks(k, seed)["random graph"],
        }
        for place in PLACEMENTS:
            workload = broadcast_workload(
                params, place, random.Random(seed + hash(place) % 1000),
                cluster_size=cluster_size,
            )
            for topo, net in nets.items():
                series[(topo, place)].add(
                    k, throughput_of(net, workload, force=solver)
                )
    result.notes.append(
        "paper shape: flat-tree ~ random graph ~ 1.5x fat-tree; "
        "roughly linear in k; locality-insensitive"
    )
    result.notes.append(
        "incast equals broadcast exactly (arc-reversal, full-duplex links)"
    )
    return result


def incast_equals_broadcast(net: Network, k: int, seed: int = 0) -> bool:
    """Check the documented incast/broadcast symmetry on one instance."""
    from repro.mcf.commodities import build_flow_problem
    from repro.mcf.exact import solve_concurrent_exact

    params = fat_tree_params(k)
    workload = broadcast_workload(params, "locality", random.Random(seed))
    problem = build_flow_problem(net, workload)
    forward = solve_concurrent_exact(problem).throughput
    backward = solve_concurrent_exact(problem.reversed()).throughput
    return abs(forward - backward) <= 1e-6 * max(forward, 1e-12)
