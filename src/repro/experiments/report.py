"""One-command reproduction report: every paper artifact, one document.

``flattree report`` (or :func:`generate_report`) runs the full
experiment battery at a configurable scale and renders a single
markdown document with every reproduced table plus the run's
parameters — the file a reviewer diffs against EXPERIMENTS.md.
"""

from __future__ import annotations

import datetime
import platform
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments.common import ExperimentResult
from repro.experiments.degradation import run_degradation
from repro.experiments.fct import run_fct
from repro.experiments.fig5_pathlength import run_fig5
from repro.experiments.fig6_pod_pathlength import run_fig6
from repro.experiments.fig7_broadcast import run_fig7
from repro.experiments.fig8_alltoall import run_fig8
from repro.experiments.hybrid import run_hybrid


@dataclass(frozen=True)
class ReportScale:
    """How far each experiment sweeps (laptop presets)."""

    name: str
    apl_ks: Tuple[int, ...]
    flow_ks: Tuple[int, ...]
    hybrid_k: int
    hybrid_fractions: Tuple[float, ...]
    degradation_k: int

    @classmethod
    def quick(cls) -> "ReportScale":
        """Seconds: the smoke scale CI uses."""
        return cls(
            name="quick",
            apl_ks=(4, 6, 8),
            flow_ks=(4, 6),
            hybrid_k=6,
            hybrid_fractions=(0.5,),
            degradation_k=6,
        )

    @classmethod
    def standard(cls) -> "ReportScale":
        """A few minutes: the EXPERIMENTS.md scale."""
        return cls(
            name="standard",
            apl_ks=(4, 6, 8, 10, 12, 14, 16),
            flow_ks=(4, 6, 8),
            hybrid_k=8,
            hybrid_fractions=(0.25, 0.5, 0.75),
            degradation_k=8,
        )


@dataclass
class Report:
    """Collected experiment results plus run metadata."""

    scale: ReportScale
    seed: int
    results: List[ExperimentResult] = field(default_factory=list)
    timestamp: Optional[str] = None
    telemetry: Optional[str] = None

    def to_markdown(self) -> str:
        lines = [
            "# Flat-tree reproduction report",
            "",
            f"* scale: `{self.scale.name}` "
            f"(APL k = {list(self.scale.apl_ks)}, "
            f"flow k = {list(self.scale.flow_ks)}, "
            f"hybrid k = {self.scale.hybrid_k})",
            f"* seed: {self.seed}",
            f"* python: {platform.python_version()}",
        ]
        if self.timestamp:
            lines.append(f"* generated: {self.timestamp}")
        for result in self.results:
            lines.extend(["", f"## {result.experiment}", "", "```"])
            lines.append(result.table())
            lines.extend(["```"])
        if self.telemetry:
            lines.extend(["", "## telemetry (internal counters)", "",
                          "```", self.telemetry, "```"])
        lines.append("")
        return "\n".join(lines)


#: The experiment battery: (builder taking (scale, seed)).
_BATTERY: Sequence[Callable[[ReportScale, int], ExperimentResult]] = (
    lambda s, seed: run_fig5(ks=s.apl_ks, seed=seed),
    lambda s, seed: run_fig6(ks=s.apl_ks, seed=seed),
    lambda s, seed: run_fig7(ks=s.flow_ks, seed=seed),
    lambda s, seed: run_fig8(ks=s.flow_ks, seed=seed),
    lambda s, seed: run_hybrid(
        k=s.hybrid_k, fractions=s.hybrid_fractions, seed=seed
    ),
    lambda s, seed: run_degradation(
        k=s.degradation_k, fractions=(0.0, 0.1, 0.2), draws=2, seed=seed
    ),
    lambda s, seed: run_fct(ks=s.flow_ks, seed=seed),
)


def generate_report(
    scale: Optional[ReportScale] = None,
    seed: int = 0,
    stamp: bool = True,
) -> Report:
    """Run the full battery and collect a :class:`Report`."""
    scale = scale or ReportScale.quick()
    report = Report(
        scale=scale,
        seed=seed,
        timestamp=(
            # Human-readable report header, not simulation state; off
            # by default (stamp=False) in deterministic runs.
            datetime.datetime.now().isoformat(timespec="seconds")  # flatlint: disable=FT001
            if stamp
            else None
        ),
    )
    with obs.span("report", scale=scale.name, seed=seed):
        for build in _BATTERY:
            report.results.append(build(scale, seed))
    if obs.enabled():
        # The telemetry section is the `repro stats` style summary: every
        # internal counter/quantile the battery accumulated this run.
        report.telemetry = obs.render_table()
    return report


def write_report(
    path: str,
    scale: Optional[ReportScale] = None,
    seed: int = 0,
) -> Report:
    """Generate and write the markdown report to ``path``."""
    report = generate_report(scale=scale, seed=seed)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.to_markdown())
    return report
