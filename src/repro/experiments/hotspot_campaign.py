"""The hotspot campaign: a scripted battery under the sampling profiler.

Runs the library's expensive phases back to back — fat-tree build,
Clos -> global-random conversion, KSP across source groups, MCF on the
paper's 20-member clusters, and a flowsim FCT run — with a
:class:`repro.obs.SamplingProfiler` attached, so the resulting
``HOTSPOTS_<seq>.json`` (see :mod:`repro.obs.hotspots`) ranks real
function-level hotspots with the campaign stage (span) they burned
time under.  This is the evidence artifact for ROADMAP open items 1-2:
what to vectorize and shard before the k=48/64 mega-fabric runs.

Stage sizing scales down from the requested ``k`` where a full-size
stage would dwarf the others (MCF caps at k=16, flowsim at k=8 — the
LP and the fluid simulator are superlinear and would otherwise be the
only thing the profile sees).  Every stage runs under its own
``hotspots.<stage>`` span nested in ``hotspots.campaign``, and the
sampler emits a ``sampler.flush`` marker at each boundary so a live
telemetry tail shows the battery advancing.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.obs.sampler import DEFAULT_HZ
from repro.core.controller import Controller
from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.flowsim.simulator import FlowSimulator, FlowSpec
from repro.mcf.approx import solve_concurrent_approx
from repro.mcf.commodities import build_flow_problem
from repro.routing.ksp import build_ksp_table
from repro.topology.clos import fat_tree_params
from repro.topology.elements import EdgeSwitch, Network
from repro.topology.fattree import build_fat_tree

__all__ = ["CampaignResult", "run_campaign"]

#: MCF stage cap: the approximation is superlinear in network size and
#: would swamp the profile at full campaign k.
MCF_MAX_K = 16

#: Flowsim stage cap: the fluid simulator recomputes fair shares per
#: event; k=8 with a few hundred flows is already thousands of solves.
FLOWSIM_MAX_K = 8

#: Default flow count for the FCT stage.
DEFAULT_FLOWS = 200

#: Garg-Koenemann epsilon for the MCF stage — looser than the
#: experiment default so the stage stays seconds, not minutes.
MCF_EPSILON = 0.2


@dataclass
class CampaignResult:
    """One finished campaign: the profile plus per-stage accounting."""

    k: int
    hz: float
    profile: obs.SampleProfile
    #: Ordered stage records: name, the span path the stage ran under,
    #: and its wall time — the input :func:`repro.obs.hotspots.
    #: build_document` derives per-stage sample counts from.
    stages: List[Dict[str, object]] = field(default_factory=list)


def _ksp_source_group_pairs(
        net: Network) -> List[Tuple[EdgeSwitch, EdgeSwitch]]:
    """One representative edge switch per pod, all ordered cross-pod pairs.

    "Across source groups" in the paper's sense: inter-pod routes on
    the converted fabric, where KSP path diversity actually matters.
    """
    first_edge: Dict[int, EdgeSwitch] = {}
    for switch in sorted(net.switches_of_kind("edge")):
        assert isinstance(switch, EdgeSwitch)
        first_edge.setdefault(switch.pod, switch)
    pods = sorted(first_edge)
    return [(first_edge[src], first_edge[dst])
            for src in pods for dst in pods if src != dst]


def _fct_flows(num_servers: int, count: int,
               rng: random.Random) -> List[FlowSpec]:
    """Hotspot-plus-background unit flows (the FCT bench workload)."""
    servers = list(range(num_servers))
    hotspot = rng.choice(servers)
    others = [server for server in servers if server != hotspot]
    specs: List[FlowSpec] = []
    flow_id = 0
    for dst in rng.sample(others, min(count // 2, len(others))):
        specs.append(FlowSpec(flow_id, hotspot, dst, size=1.0))
        flow_id += 1
    while flow_id < count:
        src, dst = rng.sample(servers, 2)
        specs.append(FlowSpec(flow_id, src, dst, size=1.0))
        flow_id += 1
    return specs


def run_campaign(
    k: int = 32,
    hz: float = DEFAULT_HZ,
    seed: int = 0,
    flows: int = DEFAULT_FLOWS,
) -> CampaignResult:
    """Run the full battery under the sampler; returns the profile.

    Requires telemetry for span attribution: when the bus is disabled
    it is enabled (metrics-only) for the duration and restored after.
    """
    enabled_here = not obs.enabled()
    if enabled_here:
        obs.enable()
    try:
        return _run_campaign_enabled(k, hz, seed, flows)
    finally:
        if enabled_here:
            obs.disable()


def _run_campaign_enabled(k: int, hz: float, seed: int,
                          flows: int) -> CampaignResult:
    result = CampaignResult(k=k, hz=hz, profile=obs.SampleProfile(
        {}, 0, 0.0, hz))
    sampler = obs.SamplingProfiler(hz=hz)
    sampler.start()
    try:
        with obs.span("hotspots.campaign", k=k):
            state: Dict[str, object] = {}
            for name in ("build", "convert", "ksp", "mcf", "flowsim"):
                started = time.perf_counter()
                with obs.span(f"hotspots.{name}") as stage_span:
                    _run_stage(name, k, seed, flows, state)
                    span_path = getattr(stage_span, "path", f"hotspots.{name}")
                result.stages.append({
                    "name": name,
                    "span": span_path,
                    "wall_s": time.perf_counter() - started,
                })
                sampler.flush(label=name)
    finally:
        result.profile = sampler.stop()
    return result


def _run_stage(name: str, k: int, seed: int, flows: int,
               state: Dict[str, object]) -> None:
    """Execute one named stage, threading products through ``state``."""
    if name == "build":
        build_fat_tree(k)
        state["ft"] = FlatTree(FlatTreeDesign.for_fat_tree(k))
    elif name == "convert":
        ft = state["ft"]
        assert isinstance(ft, FlatTree)
        state["net"] = convert(ft, Mode.GLOBAL_RANDOM)
    elif name == "ksp":
        net = state["net"]
        assert isinstance(net, Network)
        build_ksp_table(net, _ksp_source_group_pairs(net))
    elif name == "mcf":
        # Lazy import: fig8_alltoall pulls the whole experiment stack.
        from repro.experiments.fig8_alltoall import all_to_all_workload

        mcf_k = min(k, MCF_MAX_K)
        params = fat_tree_params(mcf_k)
        commodities = all_to_all_workload(
            params, "locality", random.Random(seed))
        problem = build_flow_problem(build_fat_tree(mcf_k), commodities)
        solve_concurrent_approx(problem, epsilon=MCF_EPSILON)
    elif name == "flowsim":
        flowsim_k = min(k, FLOWSIM_MAX_K)
        design = FlatTreeDesign.for_fat_tree(flowsim_k)
        controller = Controller(FlatTree(design))
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        specs = _fct_flows(design.params.num_servers, flows,
                           random.Random(seed + 1))
        FlowSimulator(controller.network, controller.route).run(specs)
    else:  # pragma: no cover - stage list is fixed above
        raise ValueError(f"unknown campaign stage {name!r}")
