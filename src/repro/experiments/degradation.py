"""Extension experiment: throughput degradation under link failures.

The paper's §5 motivates convertibility for "self-recovery of the
topology from failures".  A prerequisite question the paper leaves
unexplored: how *gracefully* does each topology's capacity degrade as
random links fail?  (Random graphs are known to degrade smoothly;
hierarchical Clos networks lose whole core subtrees.)

For each failure fraction, a fixed broadcast workload (Figure 7 style)
is re-solved on the topology with that fraction of switch-switch cables
removed (failures that disconnect the workload's switches count as
throughput 0 for the affected draw).  Reported per topology: mean λ over
failure draws, normalized by the failure-free λ.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ReproError
from repro.core.conversion import Mode
from repro.experiments.common import ExperimentResult, throughput_of
from repro.experiments.common import baseline_networks, flat_tree_network
from repro.experiments.fig7_broadcast import broadcast_workload
from repro.topology.clos import fat_tree_params
from repro.topology.elements import Network

DEFAULT_FRACTIONS: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3)


def degrade(net: Network, fraction: float, rng: random.Random) -> Network:
    """A copy of ``net`` with ``fraction`` of its cables removed."""
    if not 0 <= fraction < 1:
        raise ReproError(f"failure fraction {fraction} out of [0, 1)")
    clone = net.copy()
    cables: List = []
    for u, v, data in clone.fabric.edges(data=True):
        cables.extend([(u, v)] * data["mult"])
    kill = rng.sample(cables, int(round(fraction * len(cables))))
    for u, v in kill:
        clone.remove_cable(u, v)
    return clone


def run_degradation(
    k: int = 8,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    draws: int = 3,
    seed: int = 0,
    solver: Optional[str] = None,
) -> ExperimentResult:
    """Sweep failure fractions over the main topologies at one k."""
    params = fat_tree_params(k)
    workload = broadcast_workload(params, "locality", random.Random(seed))
    nets: Dict[str, Network] = {
        "fat-tree": baseline_networks(k, seed)["fat-tree"],
        "flat-tree": flat_tree_network(k, Mode.GLOBAL_RANDOM),
        "random graph": baseline_networks(k, seed)["random graph"],
    }
    result = ExperimentResult(
        experiment=f"extension: throughput under random link failures, k={k}",
        x_label="failed link fraction",
        y_label="normalized throughput (mean over draws)",
    )
    for name, net in nets.items():
        series = result.new_series(name)
        baseline = throughput_of(net, workload, force=solver)
        if baseline <= 0:
            raise ReproError(f"{name}: zero failure-free throughput")
        for fraction in fractions:
            total = 0.0
            for draw in range(draws):
                rng = random.Random(seed * 1000 + draw * 17 + int(fraction * 100))
                degraded = degrade(net, fraction, rng)
                try:
                    lam = throughput_of(degraded, workload, force=solver)
                except Exception as exc:
                    # A heavily-degraded draw can disconnect the
                    # workload; score it as zero throughput, audibly.
                    obs.event(
                        "experiments.degradation.solver_failure",
                        topology=name,
                        fraction=fraction,
                        draw=draw,
                        reason=str(exc) or type(exc).__name__,
                    )
                    lam = 0.0
                total += lam
            series.add(fraction, (total / draws) / baseline)
    result.notes.append(
        "expected: the random-graph-like topologies degrade smoothly; "
        "fat-tree loses proportionally more per failed link"
    )
    return result
