"""Figure 5: average path length of server pairs in the entire network.

The paper profiles flat-tree's (m, n) against fat-tree and a random
graph over k = 4..32.  The expected shape: flat-tree(m = k/8, n = 2k/8)
minimizes APL, is notably shorter than fat-tree's, and sits within ~5%
of the random graph's.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.core.design import FlatTreeDesign, paper_round
from repro.core.conversion import Mode, convert
from repro.core.flattree import FlatTree
from repro.errors import ReproError
from repro.experiments.common import (
    DEFAULT_APL_KS,
    ExperimentResult,
    ks_from_env,
)
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree
from repro.topology.stats import average_server_path_length

#: The (m, n) legend of Figure 5, as multiples of k/8.
PAPER_MN_FRACTIONS: Sequence[Tuple[int, int]] = (
    (1, 1),
    (1, 2),
    (1, 3),
    (2, 1),
    (2, 2),
)


def mn_for(k: int, m_eighths: int, n_eighths: int) -> Tuple[int, int]:
    """Concrete (m, n) for a legend entry at parameter k (half-up)."""
    return paper_round(m_eighths * k / 8), paper_round(n_eighths * k / 8)


def run_fig5(
    ks: Optional[Sequence[int]] = None,
    mn_fractions: Sequence[Tuple[int, int]] = PAPER_MN_FRACTIONS,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 5 over the given k sweep."""
    ks = ks or ks_from_env(DEFAULT_APL_KS)
    result = ExperimentResult(
        experiment="fig5: average path length, entire network",
        x_label="k",
        y_label="average path length (hops)",
    )
    fat = result.new_series("fat-tree")
    rnd = result.new_series("random graph")
    flats = {
        frac: result.new_series(
            f"flat-tree(m={frac[0]}k/8,n={frac[1]}k/8)"
        )
        for frac in mn_fractions
    }
    for k in ks:
        fat.add(k, average_server_path_length(build_fat_tree(k)))
        rnd.add(
            k,
            average_server_path_length(
                build_jellyfish_like_fat_tree(k, random.Random(seed))
            ),
        )
        for frac, series in flats.items():
            m, n = mn_for(k, *frac)
            try:
                design = FlatTreeDesign.for_fat_tree(k, m=m, n=n)
            except ReproError:
                continue  # infeasible grid point (m + n > k/2) at this k
            net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
            series.add(k, average_server_path_length(net))
    result.notes.append(
        "paper shape: flat-tree(m=k/8, n=2k/8) minimal, < fat-tree, "
        "within ~5% of random graph"
    )
    return result
