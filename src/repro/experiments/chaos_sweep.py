"""Chaos sweep: conversion resilience under injected faults (paper §5).

For each converter technology, the clean conversion (Clos -> global
random graph) is executed once as the baseline, then re-executed under
increasing fault pressure: each sweep point injects command faults
(converter timeouts/NACKs) at the given rate plus plant faults (random
dead legs) at half of it, all drawn from the sweep seed, so the whole
table is reproducible bit-for-bit.

Reported per (technology, fault rate):

* **success probability** — fraction of trials where every batch
  committed (no rollback);
* **added conversion time** — mean extra wall-clock versus the clean
  execution (retry timeouts + backoffs), over successful trials;
* **rolled-back batch fraction** — mean over trials;
* **path-length inflation** — mean post-heal average server path
  length versus the clean conversion, over trials whose degraded
  network stayed connected (disconnected trials are counted
  separately, not averaged in).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import obs
from repro.chaos import ChaosSchedule
from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.reconfigure import (
    MACH_ZEHNDER,
    MEMS_OPTICAL,
    PACKET_CHIP,
    RetryPolicy,
    Technology,
)
from repro.errors import ConfigurationError, TopologyError
from repro.topology.stats import average_server_path_length

DEFAULT_RATES: Sequence[float] = (0.0, 0.05, 0.1, 0.2)
DEFAULT_TECHNOLOGIES: Sequence[Technology] = (
    MEMS_OPTICAL, MACH_ZEHNDER, PACKET_CHIP,
)


@dataclass
class ChaosCell:
    """One sweep point: a technology under one fault rate."""

    technology: str
    rate: float
    trials: int
    successes: int = 0
    added_time: float = 0.0
    rolled_back: float = 0.0
    retries: int = 0
    inflation: float = 0.0
    inflation_trials: int = 0
    unrecoverable: int = 0
    disconnected: int = 0

    @property
    def success_probability(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def mean_added_time(self) -> float:
        """Mean extra conversion time, over *successful* trials only
        (a rolled-back run aborts early and would skew negative)."""
        return self.added_time / self.successes if self.successes else 0.0

    @property
    def rolled_back_fraction(self) -> float:
        return self.rolled_back / self.trials if self.trials else 0.0

    @property
    def mean_retries(self) -> float:
        return self.retries / self.trials if self.trials else 0.0

    @property
    def path_inflation(self) -> float:
        """Mean APL ratio vs clean, over connected degraded trials."""
        if not self.inflation_trials:
            return 1.0
        return self.inflation / self.inflation_trials


@dataclass
class ChaosSweepResult:
    """The full fault-rate x technology sweep, rendered as a table."""

    k: int
    seed: int
    trials: int
    cells: List[ChaosCell] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def cell(self, technology: str, rate: float) -> ChaosCell:
        for c in self.cells:
            # Exact match is correct: rate is a configured sweep
            # parameter stored verbatim, never a computed float.
            if c.technology == technology and c.rate == rate:  # flatlint: disable=FT003
                return c
        raise KeyError(f"no cell for {technology!r} at rate {rate}")

    def table(self) -> str:
        headers = ["technology", "rate", "success", "added_ms",
                   "rolled_back", "retries", "apl_x", "unrecov", "disc"]
        rows = [[
            c.technology,
            f"{c.rate:.3f}",
            f"{c.success_probability:.2f}",
            f"{c.mean_added_time * 1e3:.3f}",
            f"{c.rolled_back_fraction:.3f}",
            f"{c.mean_retries:.1f}",
            f"{c.path_inflation:.4f}",
            str(c.unrecoverable),
            str(c.disconnected),
        ] for c in self.cells]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)


def _trial_seed(seed: int, technology: Technology, rate: float,
                trial: int) -> int:
    """A stable per-trial seed, independent of sweep ordering."""
    key = f"{technology.name}:{rate:.6f}:{trial}"
    return seed * 1_000_003 + zlib.crc32(key.encode())


def run_chaos_sweep(
    k: int = 4,
    rates: Sequence[float] = DEFAULT_RATES,
    technologies: Sequence[Technology] = DEFAULT_TECHNOLOGIES,
    trials: int = 3,
    seed: int = 0,
    max_batch: int = 16,
    policy: Optional[RetryPolicy] = None,
) -> ChaosSweepResult:
    """Sweep command/plant fault rates over converter technologies."""
    if trials < 1:
        raise ConfigurationError("need at least one trial per sweep point")
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"fault rate {rate} out of [0, 1]")
    policy = policy or RetryPolicy()
    result = ChaosSweepResult(k=k, seed=seed, trials=trials)

    with obs.span("experiments.chaos_sweep", k=k, trials=trials):
        for tech in technologies:
            clean = Controller(
                FlatTree(FlatTreeDesign.for_fat_tree(k))
            ).execute_mode(
                Mode.GLOBAL_RANDOM, technology=tech, max_batch=max_batch,
            )
            clean_time = clean.total_time
            clean_apl = average_server_path_length(clean.network)
            duration = max(2.0 * clean_time, 1e-3)

            for rate in rates:
                cell = ChaosCell(technology=tech.name, rate=rate,
                                 trials=trials)
                result.cells.append(cell)
                for trial in range(trials):
                    controller = Controller(
                        FlatTree(FlatTreeDesign.for_fat_tree(k))
                    )
                    chaos = ChaosSchedule.random(
                        controller.flattree,
                        seed=_trial_seed(seed, tech, rate, trial),
                        duration=duration,
                        leg_fault_rate=rate / 2.0,
                        command_fault_rate=rate,
                    )
                    report = controller.execute_mode(
                        Mode.GLOBAL_RANDOM,
                        technology=tech,
                        chaos=chaos,
                        policy=policy,
                        max_batch=max_batch,
                    )
                    if report.success:
                        cell.successes += 1
                        cell.added_time += report.total_time - clean_time
                    cell.rolled_back += report.rolled_back_fraction
                    cell.retries += report.retries
                    if report.heal is not None:
                        cell.unrecoverable += len(
                            report.heal.unrecoverable
                        )
                    if not report.connected:
                        cell.disconnected += 1
                        continue
                    try:
                        apl = average_server_path_length(report.network)
                    except TopologyError:
                        cell.disconnected += 1
                        continue
                    cell.inflation += apl / clean_apl
                    cell.inflation_trials += 1

    result.notes.append(
        "plant faults at rate/2 (random legs), command faults at rate; "
        "apl_x averages only connected degraded trials"
    )
    obs.incr("experiments.chaos_sweeps")
    return result
