"""Flat-tree core: converters, Pods, wiring, conversion, control plane."""

from repro.core.adaptive import (
    AdaptiveController,
    Recommendation,
    WorkloadFeatures,
    classify_workload,
    recommend,
)
from repro.core.controller import Controller, ReconfigurationPlan
from repro.core.conversion import Mode, convert, hybrid_configs, mode_configs
from repro.core.converter import (
    BLADE_A,
    BLADE_B,
    Converter,
    ConverterConfig,
    ConverterId,
    pair_links,
)
from repro.core.design import FlatTreeDesign, mn_candidates, paper_round
from repro.core.failures import (
    FailureSet,
    Leg,
    heal,
    materialize_with_failures,
)
from repro.core.flattree import FlatTree
from repro.core.scaling import DownscalePlan, apply_sleep, downscale_plan
from repro.core.interpod import (
    boundaries,
    iter_pairs,
    paired_column,
    paired_config_for_row,
)
from repro.core.multistage import (
    TwoStageDesign,
    TwoStageFlatTree,
    build_two_stage_flat_tree,
)
from repro.core.pod import (
    PodSide,
    direct_server_slots,
    half_width,
    left_columns,
    middle_column,
    right_columns,
    side_of_edge,
)
from repro.core.cost import BillOfMaterials, bill_of_materials, relative_cost
from repro.core.profiling import (
    ProfilePoint,
    ProfileResult,
    profile_mn,
    profiled_design,
)
from repro.core.reconfigure import (
    MACH_ZEHNDER,
    MEMS_OPTICAL,
    PACKET_CHIP,
    Schedule,
    Technology,
    disruption,
    schedule,
)
from repro.core.state import load_state, save_state
from repro.core.wiring import (
    PodCoreWiring,
    Slot,
    WiringPattern,
    clos_wiring,
    coverage_is_uniform,
    pattern_is_degenerate,
    profile_is_uniform,
    profiled_pattern,
    recommended_pattern,
    recommended_pattern_for_k,
    rotation_diversity,
    safe_pattern,
)
from repro.core.zones import (
    Zone,
    ZoneLayout,
    proportional_layout,
    uniform_layout,
)

__all__ = [
    "AdaptiveController",
    "BLADE_A",
    "BLADE_B",
    "BillOfMaterials",
    "MACH_ZEHNDER",
    "MEMS_OPTICAL",
    "PACKET_CHIP",
    "Schedule",
    "Technology",
    "Controller",
    "Converter",
    "ConverterConfig",
    "ConverterId",
    "DownscalePlan",
    "FailureSet",
    "FlatTree",
    "FlatTreeDesign",
    "Leg",
    "Mode",
    "PodCoreWiring",
    "PodSide",
    "ProfilePoint",
    "ProfileResult",
    "Recommendation",
    "ReconfigurationPlan",
    "WorkloadFeatures",
    "classify_workload",
    "recommend",
    "Slot",
    "TwoStageDesign",
    "TwoStageFlatTree",
    "WiringPattern",
    "Zone",
    "ZoneLayout",
    "apply_sleep",
    "bill_of_materials",
    "boundaries",
    "build_two_stage_flat_tree",
    "disruption",
    "clos_wiring",
    "convert",
    "downscale_plan",
    "heal",
    "materialize_with_failures",
    "coverage_is_uniform",
    "direct_server_slots",
    "half_width",
    "hybrid_configs",
    "iter_pairs",
    "left_columns",
    "middle_column",
    "mn_candidates",
    "mode_configs",
    "pair_links",
    "paired_column",
    "paired_config_for_row",
    "paper_round",
    "pattern_is_degenerate",
    "profile_mn",
    "profiled_design",
    "profile_is_uniform",
    "profiled_pattern",
    "proportional_layout",
    "relative_cost",
    "save_state",
    "load_state",
    "schedule",
    "recommended_pattern",
    "recommended_pattern_for_k",
    "right_columns",
    "rotation_diversity",
    "safe_pattern",
    "side_of_edge",
    "uniform_layout",
]
