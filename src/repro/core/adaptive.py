"""Adaptive mode selection from workload measurement (paper §2.6).

"The controller changes among these options to optimize workloads,
either as explicitly instructed by the network manager or **in an
adaptive manner through network measurement**.  It may coordinate with
workload placement software to take advantage of the topologies."

This module implements that adaptive path:

* :func:`classify_workload` reduces a measured commodity set to the
  features the paper's evaluation shows matter — how much of the demand
  is hot-spot-concentrated (Figure 7 traffic) vs spread all-to-all in
  small groups (Figure 8 traffic), and how much crosses Pods;
* :func:`recommend` maps the features to an operating layout: global
  random graph for hot-spot/cross-Pod-heavy load, local random graphs
  for Pod-local clustered load, Clos when demand is too thin to justify
  churn, and a proportional hybrid split when both kinds coexist;
* :meth:`AdaptiveController.observe_and_convert` closes the loop on a
  real :class:`~repro.core.controller.Controller`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.controller import Controller, ReconfigurationPlan
from repro.core.conversion import Mode
from repro.core.zones import ZoneLayout, proportional_layout, uniform_layout
from repro.mcf.commodities import Commodity
from repro.topology.clos import ClosParams


@dataclass(frozen=True)
class WorkloadFeatures:
    """Measurement summary the mode decision consumes."""

    total_demand: float
    hotspot_fraction: float   # demand touching the busiest server
    cross_pod_fraction: float  # demand between different Pods
    local_cluster_fraction: float  # demand within one Pod

    def __post_init__(self) -> None:
        for name in ("hotspot_fraction", "cross_pod_fraction",
                     "local_cluster_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1 + 1e-9:
                raise ConfigurationError(f"{name}={value} out of [0, 1]")


def classify_workload(
    params: ClosParams, workload: Iterable[Commodity]
) -> WorkloadFeatures:
    """Measure a commodity set into :class:`WorkloadFeatures`."""
    per_server: Dict[int, float] = {}
    total = 0.0
    cross = 0.0
    local = 0.0
    for c in workload:
        total += c.demand
        per_server[c.src] = per_server.get(c.src, 0.0) + c.demand
        per_server[c.dst] = per_server.get(c.dst, 0.0) + c.demand
        if params.server_pod(c.src) == params.server_pod(c.dst):
            local += c.demand
        else:
            cross += c.demand
    if total == 0:
        return WorkloadFeatures(0.0, 0.0, 0.0, 0.0)
    hottest = max(per_server.values(), default=0.0)
    return WorkloadFeatures(
        total_demand=total,
        hotspot_fraction=min(1.0, hottest / total),
        cross_pod_fraction=cross / total,
        local_cluster_fraction=local / total,
    )


@dataclass(frozen=True)
class Recommendation:
    """The adaptive decision: a layout plus its rationale."""

    layout: ZoneLayout
    reason: str


#: Decision thresholds (fractions of total demand).  Exposed so
#: operators can tune the adaptivity; defaults follow the evaluation's
#: traffic archetypes.
HOTSPOT_THRESHOLD = 0.25
LOCAL_THRESHOLD = 0.6
THIN_DEMAND = 1e-9


def recommend(
    params: ClosParams,
    features: WorkloadFeatures,
) -> Recommendation:
    """Map measured features to an operating layout."""
    if features.total_demand <= THIN_DEMAND:
        return Recommendation(
            uniform_layout(params, Mode.CLOS),
            "no measurable demand; stay Clos (free ECMP redundancy, "
            "no conversion churn)",
        )
    hot = features.hotspot_fraction >= HOTSPOT_THRESHOLD
    local = features.local_cluster_fraction >= LOCAL_THRESHOLD
    if hot and not local:
        return Recommendation(
            uniform_layout(params, Mode.GLOBAL_RANDOM),
            f"hot spot carries {features.hotspot_fraction:.0%} of demand; "
            "global random graph maximizes hot-spot capacity (fig. 7)",
        )
    if local and not hot:
        return Recommendation(
            uniform_layout(params, Mode.LOCAL_RANDOM),
            f"{features.local_cluster_fraction:.0%} of demand is Pod-local; "
            "local random graphs optimize small clusters (fig. 8)",
        )
    if hot and local:
        fraction = max(
            1 / params.pods,
            min(1 - 1 / params.pods, features.cross_pod_fraction),
        )
        return Recommendation(
            proportional_layout(params, fraction),
            f"mixed load ({features.hotspot_fraction:.0%} hot-spot, "
            f"{features.local_cluster_fraction:.0%} Pod-local); "
            "hybrid split proportional to cross-Pod demand (section 3.4)",
        )
    return Recommendation(
        uniform_layout(params, Mode.GLOBAL_RANDOM),
        "diffuse cross-Pod demand; global random graph shortens paths "
        "(fig. 5)",
    )


class AdaptiveController:
    """A controller that converts based on measured workloads."""

    def __init__(self, controller: Controller) -> None:
        self.controller = controller
        self.last_recommendation: Optional[Recommendation] = None

    def observe_and_convert(
        self, workload: Iterable[Commodity]
    ) -> Tuple[Recommendation, ReconfigurationPlan]:
        """Measure, decide, convert; returns (decision, executed plan)."""
        params = self.controller.flattree.params
        features = classify_workload(params, list(workload))
        recommendation = recommend(params, features)
        plan = self.controller.apply_layout(recommendation.layout)
        self.last_recommendation = recommendation
        return recommendation, plan
