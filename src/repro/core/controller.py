"""Centralized control plane (paper §2.6).

"Flat-tree requires a control plane to change the network topology and
to conduct routing accordingly ... we follow the recent trend of using a
centralized network controller for global network management."

:class:`Controller` owns a :class:`~repro.core.flattree.FlatTree` plant
and provides:

* **conversion** — apply an operating mode or a hybrid
  :class:`~repro.core.zones.ZoneLayout`; each change produces a
  :class:`ReconfigurationPlan` describing converter re-programming and
  the physical link/server churn (which links blink, which servers move
  to a different switch), executed in drain -> reconfigure -> restore
  stages;
* **routing** — per-mode routing scheme selection (two-level for a pure
  Clos network, k-shortest-paths otherwise), path caching, and SDN
  compilation (§2.6's pre-computed path programs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.errors import ReproError, RoutingError
from repro.core.conversion import Mode, hybrid_configs, mode_configs
from repro.core.converter import ConverterConfig, ConverterId
from repro.core.flattree import FlatTree
from repro.core.zones import ZoneLayout, uniform_layout
from repro.routing.base import Path, RoutingTable
from repro.routing.ksp import k_shortest_paths
from repro.routing.sdn import SdnProgram
from repro.routing.twolevel import two_level_route
from repro.topology.elements import Network, SwitchId


@dataclass
class ReconfigurationPlan:
    """Everything one conversion entails, for audit and staging.

    ``stages`` is the execution order: converters are drained (their
    circuits go dark), re-programmed, then restored — flows must be
    steered off the affected links before stage 1 commits.
    """

    config_changes: Dict[ConverterId, Tuple[ConverterConfig, ConverterConfig]]
    links_removed: List[Tuple[SwitchId, SwitchId]]
    links_added: List[Tuple[SwitchId, SwitchId]]
    servers_moved: Dict[int, Tuple[SwitchId, SwitchId]]
    stages: List[str] = field(default_factory=list)

    @property
    def converter_count(self) -> int:
        return len(self.config_changes)

    def is_noop(self) -> bool:
        return not self.config_changes

    def summary(self) -> str:
        return (
            f"{self.converter_count} converters re-programmed, "
            f"{len(self.links_removed)} links down, "
            f"{len(self.links_added)} links up, "
            f"{len(self.servers_moved)} servers relocated"
        )


class Controller:
    """Central controller over one flat-tree plant."""

    def __init__(self, flattree: FlatTree) -> None:
        self.flattree = flattree
        self.layout: ZoneLayout = uniform_layout(flattree.params, Mode.CLOS)
        self.flattree.set_configs(mode_configs(flattree, Mode.CLOS))
        self._network: Optional[Network] = None
        self._route_cache: Dict[Tuple[SwitchId, SwitchId], List[Path]] = {}
        self.history: List[ReconfigurationPlan] = []
        # Degradation state set by the resilient execution path: active
        # plant failures and whether the last conversion was rolled back
        # mid-way (layout no longer describes the whole plant).
        self._failures = None
        self._partial = False

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The currently materialized logical network (cached).

        While plant failures are active (after a chaotic execution),
        this is the *degraded* materialization — dead circuits absent,
        stranded servers detached.
        """
        if self._network is None:
            if self._failures is not None:
                from repro.core.failures import materialize_with_failures

                self._network = materialize_with_failures(
                    self.flattree, self._failures
                )
            else:
                self._network = self.flattree.materialize()
        return self._network

    @property
    def degraded(self) -> bool:
        """True when failures are active or a conversion was aborted."""
        return self._failures is not None or self._partial

    def apply_mode(self, mode: Mode) -> ReconfigurationPlan:
        """Convert the whole network to one mode."""
        return self.apply_layout(uniform_layout(self.flattree.params, mode))

    def apply_layout(self, layout: ZoneLayout) -> ReconfigurationPlan:
        """Convert to a hybrid zone layout and return the plan executed."""
        modes = sorted({m.value for m in layout.pod_modes().values()})
        with obs.span("apply_layout", modes=",".join(modes)):
            target = hybrid_configs(self.flattree, layout.pod_modes())
            plan = self._plan(target)
            self.flattree.set_configs(target)
            self.layout = layout
            self._network = None
            self._route_cache.clear()
            self.history.append(plan)
            return plan

    def _plan(
        self, target: Mapping[ConverterId, ConverterConfig]
    ) -> ReconfigurationPlan:
        before = self.network
        changes = self.flattree.diff_configs(target)
        # Materialize the target on a scratch copy of the converter state
        # to compute physical churn without committing.
        snapshot = self.flattree.configs()
        self.flattree.set_configs(target)
        after = self.flattree.materialize()
        self.flattree.set_configs(snapshot)

        removed, added = _link_diff(before, after)
        moved = {
            server: (before.server_switch(server), after.server_switch(server))
            for server in before.servers()
            if before.server_switch(server) != after.server_switch(server)
        }
        stages = []
        if changes:
            stages = [
                f"drain {len(changes)} converters "
                f"({len(removed)} circuits go dark)",
                "re-program converter configurations",
                f"restore circuits ({len(added)} links up, "
                f"{len(moved)} servers on new switches)",
                "recompute routes and re-install SDN programs",
            ]
        obs.incr("core.controller.plans")
        obs.incr("core.controller.reprogrammed", len(changes))
        obs.incr("core.controller.links_removed", len(removed))
        obs.incr("core.controller.links_added", len(added))
        obs.incr("core.controller.servers_moved", len(moved))
        return ReconfigurationPlan(
            config_changes=changes,
            links_removed=removed,
            links_added=added,
            servers_moved=moved,
            stages=stages,
        )

    def execute_mode(self, mode: Mode, **kwargs):
        """:meth:`execute_layout` for a whole-network mode."""
        return self.execute_layout(
            uniform_layout(self.flattree.params, mode), **kwargs
        )

    def execute_layout(
        self,
        layout: ZoneLayout,
        *,
        technology=None,
        chaos=None,
        policy=None,
        monitor=None,
        max_batch: int = 64,
        start: float = 0.0,
    ):
        """Convert to ``layout`` through the resilient execution path.

        Unlike :meth:`apply_layout` (which commits the target
        configuration atomically), this drives the conversion batch by
        batch via :func:`repro.core.reconfigure.execute`, surviving the
        faults a :class:`~repro.chaos.ChaosSchedule` injects: failed
        converter commands are retried with backoff, exhausted batches
        roll back, and active plant faults trigger self-healing.  The
        controller then serves the network execution actually produced
        — degraded and/or partially converted — and routing falls back
        to k-shortest-paths over surviving links whenever the
        mode-native strategy cannot apply (see :meth:`routes`).
        Returns the :class:`~repro.core.reconfigure.ExecutionReport`.
        """
        from repro.core.reconfigure import MEMS_OPTICAL, execute

        modes = sorted({m.value for m in layout.pod_modes().values()})
        with obs.span("execute_layout", modes=",".join(modes)):
            target = hybrid_configs(self.flattree, layout.pod_modes())
            plan = self._plan(target)
            report = execute(
                self.flattree,
                plan,
                self.network,
                technology=technology or MEMS_OPTICAL,
                max_batch=max_batch,
                start=start,
                chaos=chaos,
                policy=policy,
                monitor=monitor,
            )
            self.layout = layout
            self._partial = not report.success
            self._failures = (
                None if report.failures.is_empty() else report.failures
            )
            self._network = report.network
            self._route_cache.clear()
            self.history.append(plan)
            if monitor is not None:
                monitor.rebind(report.network)
            return report

    # ------------------------------------------------------------------
    # failure self-recovery (paper §5)
    # ------------------------------------------------------------------
    def recover(self, failures) -> ReconfigurationPlan:
        """Re-configure converters to survive a failure set.

        Uses :func:`repro.core.failures.heal` to pick, per affected
        converter (and jointly per side pair), the configuration that
        keeps servers attached through healthy legs and preserves the
        most circuits.  Returns the executed plan; the cached network is
        the *intended* healthy materialization — ask
        :func:`repro.core.failures.materialize_with_failures` for the
        degraded view.
        """
        from repro.core.failures import heal

        assignment = heal(self.flattree, failures)
        plan = self._plan(assignment)
        self.flattree.set_configs(assignment)
        self._network = None
        self._route_cache.clear()
        self.history.append(plan)
        return plan

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _is_pure_clos(self) -> bool:
        return all(
            zone.mode is Mode.CLOS for zone in self.layout.zones
        )

    def routes(self, src_server: int, dst_server: int) -> List[Path]:
        """Candidate switch paths between two servers' switches.

        Pure Clos uses the deterministic two-level route; any converted
        network uses k-shortest-paths (Jellyfish-style), cached per
        switch pair.  On a degraded or partially-converted network the
        native strategy's precomputed tables may reference dead
        elements, so the controller validates the native path against
        the live network and falls back to k-shortest-paths over the
        surviving links when it cannot apply.
        """
        net = self.network
        src_sw = net.server_switch(src_server)
        dst_sw = net.server_switch(dst_server)
        if src_sw == dst_sw:
            return [Path((src_sw,))]
        if self._is_pure_clos() and not self.degraded:
            return [
                two_level_route(
                    self.flattree.params, net, src_server, dst_server
                )
            ]
        if self._is_pure_clos():
            try:
                path = two_level_route(
                    self.flattree.params, net, src_server, dst_server
                )
                path.validate_on(net)
                return [path]
            except (ReproError, KeyError):
                obs.incr("core.controller.native_route_fallbacks")
        key = (src_sw, dst_sw)
        if key not in self._route_cache:
            obs.incr("core.controller.route_cache_misses")
            self._route_cache[key] = k_shortest_paths(net, src_sw, dst_sw)
        else:
            obs.incr("core.controller.route_cache_hits")
        return self._route_cache[key]

    def route(
        self, src_server: int, dst_server: int, flow_key: object = 0
    ) -> Path:
        """One path for a flow, hash-selected among the candidates."""
        options = self.routes(src_server, dst_server)
        if not options:
            raise RoutingError(
                f"no route between servers {src_server} and {dst_server}"
            )
        table = RoutingTable(name="controller")
        table.add(options)
        if options[0].hops == 0:
            return options[0]
        return table.select(options[0].src, options[0].dst, flow_key)

    def compile_sdn(
        self, server_pairs: List[Tuple[int, int]]
    ) -> SdnProgram:
        """Pre-compute and compile SDN rules for the given server pairs."""
        table = RoutingTable(name=f"controller[{self.network.name}]")
        for src, dst in server_pairs:
            table.add(self.routes(src, dst))
        return SdnProgram.compile(table)


def _link_diff(
    before: Network, after: Network
) -> Tuple[List[Tuple[SwitchId, SwitchId]], List[Tuple[SwitchId, SwitchId]]]:
    """Cable-level differences between two materializations."""

    def multiset(net: Network) -> Dict[frozenset, int]:
        return {
            frozenset((u, v)): d["mult"]
            for u, v, d in net.fabric.edges(data=True)
        }

    b, a = multiset(before), multiset(after)
    removed: List[Tuple[SwitchId, SwitchId]] = []
    added: List[Tuple[SwitchId, SwitchId]] = []
    # Sorted so the cable diff (and any batch schedule built from it)
    # is independent of PYTHONHASHSEED; repr keys because the switch
    # NamedTuple variants are not mutually orderable.
    for key in sorted(set(b) | set(a),
                      key=lambda pair: sorted(repr(s) for s in pair)):
        delta = a.get(key, 0) - b.get(key, 0)
        pair = tuple(key)
        if delta < 0:
            removed.extend([pair] * (-delta))
        elif delta > 0:
            added.extend([pair] * delta)
    return removed, added
