"""Flat-tree design points: the (equipment, m, n, pattern, ring) tuple.

A *design point* fixes everything about the physical plant: the Clos
equipment being converted, how many 4-port (``n``) and 6-port (``m``)
converter switches each edge/aggregation pair gets, the Pod-core wiring
pattern, and whether the inter-Pod side bundles close into a ring.
Operating *modes* (Clos / global random / local random / hybrid) are
configurations applied on top of one design point at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import WiringError
from repro.core.wiring import (
    PodCoreWiring,
    WiringPattern,
    profiled_pattern,
)
from repro.topology.clos import ClosParams, fat_tree_params


def paper_round(x: float) -> int:
    """Round half up ("rounded to the closest integer", paper §3.2).

    Python's built-in banker's rounding would turn k/8 = 0.5 into 0,
    eliminating all 6-port converters at k = 4; the paper clearly keeps
    them, so half-way cases round up.
    """
    return math.floor(x + 0.5)


@dataclass(frozen=True)
class FlatTreeDesign:
    """A fully-specified flat-tree physical design.

    Attributes
    ----------
    params:
        The Clos equipment being converted.
    m:
        6-port converters per edge/aggregation pair — servers that can be
        relocated to core switches.
    n:
        4-port converters per pair — servers that can be relocated to
        aggregation switches.
    pattern:
        Pod-core wiring rotation rule.
    ring:
        Whether Pod ``pods - 1``'s right side bundle wraps to Pod 0's
        left (the paper only says "adjacent Pods"; a ring wastes no side
        connectors and is the default).
    """

    params: ClosParams
    m: int
    n: int
    pattern: WiringPattern
    ring: bool = True

    def __post_init__(self) -> None:
        # PodCoreWiring validates the m/n budget against group size and
        # relocatable servers; constructing it is the validation.
        PodCoreWiring(self.params, self.m, self.n, self.pattern)
        if self.ring and self.params.pods < 2:
            raise WiringError("a side-bundle ring needs at least 2 Pods")

    @property
    def wiring(self) -> PodCoreWiring:
        """The resolved Pod-core wiring for this design."""
        return PodCoreWiring(self.params, self.m, self.n, self.pattern)

    @classmethod
    def for_fat_tree(
        cls,
        k: int,
        m: Optional[int] = None,
        n: Optional[int] = None,
        pattern: Optional[WiringPattern] = None,
        ring: bool = True,
    ) -> "FlatTreeDesign":
        """The paper's evaluation design point for fat-tree(k).

        Defaults follow §3.2: ``m = k/8`` and ``n = 2k/8`` (the profiled
        optimum), rounded half-up.  The wiring pattern defaults to
        :func:`repro.core.wiring.profiled_pattern`, which reproduces the
        paper's intent (keep k-multiples-of-4 on the low-APL envelope)
        under this module's rotation arithmetic; pass ``pattern``
        explicitly to force the paper's literal per-k rule.
        """
        params = fat_tree_params(k)
        if m is None:
            m = paper_round(k / 8)
        if n is None:
            n = paper_round(2 * k / 8)
        if pattern is None:
            pattern = profiled_pattern(params, m)
        return cls(params=params, m=m, n=n, pattern=pattern, ring=ring)


def mn_candidates(k: int, step_fraction: float = 1 / 8) -> list:
    """The (m, n) grid the paper profiles over (§3.2).

    Multiples of ``k * step_fraction`` (default k/8) with
    ``m >= 1``, ``n >= 1`` and ``m + n <= k/2``, rounded half-up and
    de-duplicated.
    """
    step = k * step_fraction
    seen = set()
    grid = []
    multiple = 1
    while paper_round(multiple * step) <= k // 2:
        m = paper_round(multiple * step)
        inner = 1
        while paper_round(inner * step) + m <= k // 2:
            n = paper_round(inner * step)
            if (m, n) not in seen and m >= 1 and n >= 1:
                seen.add((m, n))
                grid.append((m, n))
            inner += 1
        multiple += 1
    return grid
