"""Topology conversion engine: operating modes over a flat-tree plant.

The paper's three homogeneous modes (Figure 2) plus hybrid mode (§3.4):

* **Clos** — every converter ``default``; the network is exactly the
  original fat-tree.
* **Global random** — 4-port converters ``local`` (servers to
  aggregation switches, core-edge direct links), 6-port converters
  ``side``/``cross`` by row parity (servers to core switches, cross-Pod
  peer links).
* **Local random** — 4-port converters ``local``, 6-port converters
  ``default``: half-ish of each Pod's servers move to aggregation
  switches while the Pod keeps its Clos core connectivity.
* **Hybrid** — a per-Pod mode assignment.  A 6-port converter whose peer
  Pod is not also in global-random mode cannot use its side bundle and
  falls back to ``local``.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.core.converter import BLADE_A, ConverterConfig, ConverterId
from repro.core.flattree import FlatTree
from repro.core.interpod import paired_config_for_row
from repro.topology.elements import Network


class Mode(enum.Enum):
    """Operating mode of a Pod (or of the whole network)."""

    CLOS = "clos"
    GLOBAL_RANDOM = "global-random"
    LOCAL_RANDOM = "local-random"


def mode_configs(
    ft: FlatTree, mode: Mode
) -> Dict[ConverterId, ConverterConfig]:
    """Configuration assignment putting the whole network in ``mode``."""
    return hybrid_configs(ft, {p: mode for p in range(ft.params.pods)})


def hybrid_configs(
    ft: FlatTree, pod_modes: Mapping[int, Mode]
) -> Dict[ConverterId, ConverterConfig]:
    """Configuration assignment for a per-Pod mode map.

    Every Pod must be assigned a mode.  Converter rules:

    ========== ============= =========================================
    Pod mode   blade A        blade B
    ========== ============= =========================================
    CLOS       default        default
    LOCAL      local          default
    GLOBAL     local          side/cross by row parity when the peer's
                              Pod is also GLOBAL; ``local`` otherwise
    ========== ============= =========================================
    """
    _check_pod_modes(ft, pod_modes)
    assignment: Dict[ConverterId, ConverterConfig] = {}
    for cid, conv in ft.converters.items():
        mode = pod_modes[cid.pod]
        if mode is Mode.CLOS:
            assignment[cid] = ConverterConfig.DEFAULT
        elif cid.blade == BLADE_A:
            assignment[cid] = ConverterConfig.LOCAL
        elif mode is Mode.LOCAL_RANDOM:
            assignment[cid] = ConverterConfig.DEFAULT
        else:  # GLOBAL_RANDOM, blade B
            peer = conv.peer
            if peer is not None and pod_modes[peer.pod] is Mode.GLOBAL_RANDOM:
                assignment[cid] = paired_config_for_row(cid.row)
            else:
                assignment[cid] = ConverterConfig.LOCAL
    return assignment


def _check_pod_modes(ft: FlatTree, pod_modes: Mapping[int, Mode]) -> None:
    pods = set(range(ft.params.pods))
    given = set(pod_modes)
    if given != pods:
        missing = sorted(pods - given)
        extra = sorted(given - pods)
        raise ConfigurationError(
            f"pod mode map must cover exactly Pods 0..{ft.params.pods - 1}"
            f" (missing {missing}, unknown {extra})"
        )


def convert(
    ft: FlatTree,
    mode: Optional[Mode] = None,
    pod_modes: Optional[Mapping[int, Mode]] = None,
    name: Optional[str] = None,
) -> Network:
    """Reconfigure ``ft`` into a mode and return the materialized network.

    Exactly one of ``mode`` (homogeneous) or ``pod_modes`` (hybrid) must
    be given.  The flat-tree's converter state is updated in place, so
    subsequent :meth:`FlatTree.materialize` calls see the same topology.
    """
    if (mode is None) == (pod_modes is None):
        raise ConfigurationError("pass exactly one of mode / pod_modes")
    if mode is not None:
        assignment = mode_configs(ft, mode)
        default_name = f"flat-tree[{mode.value}]"
    else:
        assignment = hybrid_configs(ft, pod_modes)
        default_name = "flat-tree[hybrid]"
    with obs.span("convert", mode=mode.value if mode else "hybrid"):
        if obs.enabled():
            before = ft.configs()
            reprogrammed = sum(
                1 for cid, config in assignment.items()
                if before[cid] is not config
            )
            obs.incr("core.conversion.converts")
            obs.incr("core.conversion.reprogrammed", reprogrammed)
        ft.set_configs(assignment)
        with obs.timer("core.conversion.materialize_s"):
            return ft.materialize(name or default_name)
