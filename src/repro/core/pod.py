"""Flat-tree Pod geometry (paper §2.2, Figure 3).

A Pod pairs each edge switch ``Ej`` with aggregation switch ``A(j/r)``
and gives the pair ``n`` 4-port converters (blade A) and ``m`` 6-port
converters (blade B).  Converters sit on the two *sides* of the Pod:
columns for ``E0 .. E(d/2-1)`` on the left, columns for the last ``d/2``
edge switches on the right.  When ``d`` is odd the middle column goes to
one side but its 6-port side connectors are unused.

Server slots on an edge switch map to converters deterministically:
slot ``i < m`` feeds blade B row ``i``, slot ``m <= i < m+n`` feeds blade
A row ``i - m``, and the remaining slots stay hard-wired to the edge
switch in every mode.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.design import FlatTreeDesign


class PodSide(enum.Enum):
    """Which side of the Pod a converter column sits on."""

    LEFT = "left"
    RIGHT = "right"
    MIDDLE = "middle"  # odd d only; side connectors unused


def half_width(d: int) -> int:
    """Number of paired converter columns per side (``d // 2``)."""
    return d // 2


def side_of_edge(d: int, edge: int) -> PodSide:
    """Side of the Pod hosting edge switch ``edge``'s converter column."""
    half = half_width(d)
    if edge < half:
        return PodSide.LEFT
    if edge >= d - half:
        return PodSide.RIGHT
    return PodSide.MIDDLE


def left_columns(d: int) -> List[int]:
    """Edge indices whose columns sit on the Pod's left side."""
    return list(range(half_width(d)))


def right_columns(d: int) -> List[int]:
    """Edge indices whose columns sit on the Pod's right side."""
    return list(range(d - half_width(d), d))


def middle_column(d: int) -> Optional[int]:
    """The unpaired middle edge index when ``d`` is odd, else None."""
    return d // 2 if d % 2 == 1 else None


def blade_b_server_slot(row: int) -> int:
    """Edge-switch server slot feeding blade B row ``row``."""
    return row


def blade_a_server_slot(design: FlatTreeDesign, row: int) -> int:
    """Edge-switch server slot feeding blade A row ``row``."""
    return design.m + row


def direct_server_slots(design: FlatTreeDesign) -> range:
    """Server slots hard-wired to the edge switch (never relocated)."""
    return range(design.m + design.n, design.params.servers_per_edge)
