"""Reconfiguration execution: timing and traffic disruption (paper §2.7).

The paper's cost analysis argues converter switches can be realized by
several switching technologies as long as they are software
configurable, and that "flat-tree changes topology infrequently, so it
imposes no rigid restriction on switching delay".  This module makes
those statements quantitative:

* a :class:`Technology` profile captures a realization's per-converter
  switching delay and per-batch control overhead (defaults follow the
  technologies the paper cites: MEMS optical circuit switches,
  integrated Mach-Zehnder interferometers, and commodity packet chips
  with port-forwarding rules);
* :func:`schedule` turns a controller :class:`ReconfigurationPlan` into
  a staged timeline — converters are grouped into batches whose circuits
  can blink together without partitioning the network — and reports the
  total conversion time and the worst single blink window;
* :func:`disruption` estimates how much in-flight traffic a plan
  disturbs: the fraction of a workload's flows whose current path
  crosses a link the plan takes down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.core.controller import ReconfigurationPlan
from repro.core.failures import FailureSet, HealOutcome
from repro.routing.base import Path
from repro.topology.elements import Network, SwitchId


@dataclass(frozen=True)
class Technology:
    """A converter-switch realization's timing profile.

    ``switch_delay`` is the per-converter circuit switching time in
    seconds; ``control_overhead`` the per-batch controller round-trip
    (rule push + acknowledgment).
    """

    name: str
    switch_delay: float
    control_overhead: float

    def __post_init__(self) -> None:
        if self.switch_delay < 0 or self.control_overhead < 0:
            raise ConfigurationError("delays must be non-negative")


#: The technologies the paper's §2.7 cites.
MEMS_OPTICAL = Technology("MEMS optical", switch_delay=25e-3,
                          control_overhead=5e-3)
MACH_ZEHNDER = Technology("Mach-Zehnder interferometer",
                          switch_delay=10e-6, control_overhead=5e-3)
PACKET_CHIP = Technology("packet chip port-forwarding",
                         switch_delay=1e-3, control_overhead=10e-3)


@dataclass
class Schedule:
    """A staged execution of a reconfiguration plan.

    ``dark_links`` parallels ``batches``: the physical links that blink
    while batch *i* switches, which :func:`audit` replays into a
    :class:`~repro.monitor.NetworkMonitor` downtime ledger.
    """

    technology: Technology
    batches: List[List] = field(default_factory=list)
    dark_links: List[List[Tuple[SwitchId, SwitchId]]] = field(
        default_factory=list
    )

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def total_time(self) -> float:
        """Wall-clock for the whole conversion (batches run serially)."""
        if not self.batches:
            return 0.0
        return self.num_batches * (
            self.technology.control_overhead + self.technology.switch_delay
        )

    @property
    def blink_window(self) -> float:
        """Longest dark period for any single circuit (one batch)."""
        if not self.batches:
            return 0.0
        return self.technology.switch_delay

    def batch_windows(self, start: float = 0.0) -> List[Tuple[float, float]]:
        """The dark interval of every batch, as ``(down_t, up_t)``.

        Batch *i* begins at ``start + i * (control_overhead +
        switch_delay)``; its circuits are dark for exactly
        ``switch_delay`` after the control round-trip commits — the
        per-batch decomposition of :attr:`total_time` and
        :attr:`blink_window`.
        """
        tech = self.technology
        windows: List[Tuple[float, float]] = []
        for index in range(self.num_batches):
            begin = start + index * (tech.control_overhead
                                     + tech.switch_delay)
            down = begin + tech.control_overhead
            windows.append((down, down + tech.switch_delay))
        return windows

    def summary(self) -> str:
        return (
            f"{sum(len(b) for b in self.batches)} converters in "
            f"{self.num_batches} batches via {self.technology.name}: "
            f"total {self.total_time * 1e3:.1f} ms, "
            f"blink {self.blink_window * 1e3:.3f} ms"
        )


def schedule(
    plan: ReconfigurationPlan,
    before: Network,
    technology: Technology = MEMS_OPTICAL,
    max_batch: int = 64,
    pairs: Optional[Sequence[Tuple]] = None,
) -> Schedule:
    """Batch a plan so no batch dark-out disconnects the network.

    Greedy: converters join the current batch as long as removing the
    batch's dark links keeps ``before`` connected (checked on a scratch
    copy); otherwise a new batch starts.  ``max_batch`` caps batch size
    (controller fan-out limits).

    ``pairs`` (the plant's side-bundle pairs) makes batching
    *pair-atomic*: when both members of a pair are re-programmed, they
    land in the same batch, so no intermediate configuration ever holds
    half a pair (which :meth:`FlatTree.set_configs` would reject).  A
    pair counts as two converters against ``max_batch`` but is never
    split, so a pair-atomic batch may exceed the cap by one.
    """
    if max_batch < 1:
        raise ConfigurationError("max_batch must be positive")
    converters = sorted(plan.config_changes)
    if not converters:
        return Schedule(technology=technology)
    sched = _build_schedule(plan, before, technology, max_batch,
                            converters, pairs)
    obs.incr("core.reconfigure.schedules")
    obs.incr("core.reconfigure.batches", sched.num_batches)
    obs.incr("core.reconfigure.converters_scheduled", len(converters))
    obs.set_gauge("core.reconfigure.last_total_time_s", sched.total_time)
    return sched


def _atomic_units(
    converters: List, pairs: Optional[Sequence[Tuple]]
) -> List[List]:
    """Group converters into indivisible scheduling units.

    Without ``pairs`` every converter is its own unit (the historical
    behavior, byte-for-byte).  With ``pairs``, two pair members that are
    both re-programmed form one unit, placed at the earlier member's
    position in the sorted order.
    """
    if not pairs:
        return [[cid] for cid in converters]
    in_plan = set(converters)
    mate: Dict = {}
    for left, right in pairs:
        if left in in_plan and right in in_plan:
            mate[left] = right
            mate[right] = left
    units: List[List] = []
    seen = set()
    for cid in converters:
        if cid in seen:
            continue
        seen.add(cid)
        other = mate.get(cid)
        if other is None:
            units.append([cid])
        else:
            seen.add(other)
            units.append([cid, other])
    return units


def _build_schedule(
    plan: ReconfigurationPlan,
    before: Network,
    technology: Technology,
    max_batch: int,
    converters: List,
    pairs: Optional[Sequence[Tuple]] = None,
) -> Schedule:
    from repro.topology.stats import is_connected

    dark_by_converter = _links_by_converter(plan)
    units = _atomic_units(converters, pairs)

    batches: List[List] = []
    batch_links: List[List[Tuple[SwitchId, SwitchId]]] = []
    current: List = []
    current_links: List[Tuple[SwitchId, SwitchId]] = []
    scratch = before.copy()
    removed: List[Tuple[SwitchId, SwitchId]] = []
    for unit in units:
        candidate = [link for cid in unit
                     for link in dark_by_converter.get(cid, [])]
        taken: List[Tuple[SwitchId, SwitchId]] = []
        for u, v in candidate:
            if scratch.capacity(u, v) > 0:
                scratch.remove_cable(u, v)
                removed.append((u, v))
                taken.append((u, v))
        if (len(current) + len(unit) > max_batch
                or not is_connected(scratch)):
            # Close the batch, restore scratch, start fresh with unit.
            if current:
                batches.append(current)
                batch_links.append(current_links)
            current = []
            current_links = []
            for u, v in removed:
                scratch.add_cable(u, v)
            removed = []
            taken = []
            for u, v in candidate:
                if scratch.capacity(u, v) > 0:
                    scratch.remove_cable(u, v)
                    removed.append((u, v))
                    taken.append((u, v))
        current.extend(unit)
        current_links.extend(taken)
    if current:
        batches.append(current)
        batch_links.append(current_links)
    return Schedule(technology=technology, batches=batches,
                    dark_links=batch_links)


def _links_by_converter(plan: ReconfigurationPlan) -> Dict:
    """Attribute the plan's removed links to converters, best effort.

    A removed link belongs to a converter when one endpoint is the
    converter's core/agg/edge switch; ambiguous links (shared switches)
    are attributed to the first matching converter — the schedule only
    needs a conservative grouping, not an exact one.
    """
    remaining = list(plan.links_removed)
    out: Dict = {}
    for cid, _change in sorted(plan.config_changes.items()):
        mine = []
        rest = []
        for u, v in remaining:
            if _touches(cid, u) or _touches(cid, v):
                mine.append((u, v))
            else:
                rest.append((u, v))
        remaining = rest
        out[cid] = mine
    return out


def _touches(cid, switch: SwitchId) -> bool:
    if switch.kind in ("edge", "agg"):
        return switch.pod == cid.pod
    return False


def audit(
    sched: Schedule,
    monitor,
    start: float = 0.0,
) -> float:
    """Replay a schedule's blink timeline into a network monitor.

    For every batch, every link that blinks emits ``link_down`` at the
    batch's dark instant and ``link_up`` when the circuit switches
    complete, filling the monitor's downtime ledger
    (:meth:`~repro.monitor.NetworkMonitor.downtime`).  By construction,
    each link's total dark time equals :attr:`Schedule.blink_window`
    per blink — the ledger is the event-level cross-check of the
    schedule's batch arithmetic.  Returns the instant the conversion
    finishes (``start + total_time``).

    An empty plan or a zero-duration blink window (a technology with no
    switching delay) emits nothing — a ``[t, t]`` ledger window would
    record downtime that never happened.
    """
    if sched.blink_window <= 0:
        obs.incr("core.reconfigure.audits")
        return start + sched.total_time
    windows = sched.batch_windows(start)
    links_down = 0
    for (down_t, up_t), links in zip(windows, sched.dark_links):
        # Parallel cables of one bundle blink together: one ledger
        # window per physical link pair per batch.
        unique: List[Tuple[SwitchId, SwitchId]] = []
        seen = set()
        for u, v in links:
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                unique.append((u, v))
        for u, v in unique:
            monitor.link_down(down_t, u, v)
        for u, v in unique:
            monitor.link_up(up_t, u, v)
        links_down += len(unique)
    obs.incr("core.reconfigure.audits")
    obs.incr("core.reconfigure.audited_links_down", links_down)
    return start + sched.total_time


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor reacts to converter command faults.

    ``backoff(round_index)`` is the pause before retry round *n*
    (1-based): ``base_backoff * backoff_factor ** (n - 1)``, capped at
    ``max_backoff``.  A converter that faults on its
    ``max_attempts``-th command is declared dead for this conversion
    and its whole batch rolls back.  ``command_timeout`` is the time a
    TIMEOUT fault wastes before the controller gives up on the ACK;
    ``batch_timeout`` (optional) bounds one batch's total command phase
    — exceeding it also rolls the batch back.
    """

    max_attempts: int = 4
    base_backoff: float = 5e-3
    backoff_factor: float = 2.0
    max_backoff: float = 0.1
    command_timeout: float = 10e-3
    batch_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError("backoffs must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.command_timeout < 0:
            raise ConfigurationError("command_timeout must be non-negative")
        if self.batch_timeout is not None and self.batch_timeout <= 0:
            raise ConfigurationError("batch_timeout must be positive")

    def backoff(self, round_index: int) -> float:
        if round_index < 1:
            raise ConfigurationError("retry rounds are 1-based")
        return min(self.max_backoff,
                   self.base_backoff * self.backoff_factor
                   ** (round_index - 1))


@dataclass
class BatchResult:
    """One batch's fate under execution.

    ``attempts`` counts every command issued (first tries included);
    ``retries`` only the re-issues.  ``down_t``/``up_t`` is the dark
    window the batch occupied (for a rolled-back batch: the window it
    *would* have occupied had its commands succeeded).
    """

    index: int
    converters: List
    down_t: float
    up_t: float
    committed: bool
    attempts: int
    retries: int
    rollback_reason: Optional[str] = None


@dataclass
class ExecutionReport:
    """Everything one (possibly chaotic) conversion execution produced.

    ``aborted_at`` is the index of the rolled-back batch (``None`` when
    every batch committed); batches after it never ran, leaving the
    plant on the consistent converted prefix.  ``failures`` is the
    plant-fault set active at ``finish``; ``heal`` the self-recovery
    outcome (``None`` when no plant fault was active); ``network`` the
    final — possibly degraded — logical network; ``problems`` any
    validation findings against it (empty on the clean path, which is
    correct by construction).
    """

    schedule: Schedule
    start: float
    finish: float
    batches: List[BatchResult]
    aborted_at: Optional[int]
    failures: FailureSet
    heal: Optional[HealOutcome]
    network: Network
    problems: List[str]
    connected: bool

    @property
    def success(self) -> bool:
        """True when every planned batch committed."""
        return self.aborted_at is None

    @property
    def total_time(self) -> float:
        return self.finish - self.start

    @property
    def retries(self) -> int:
        return sum(b.retries for b in self.batches)

    @property
    def rolled_back_fraction(self) -> float:
        if not self.schedule.num_batches:
            return 0.0
        rolled = sum(1 for b in self.batches if not b.committed)
        return rolled / self.schedule.num_batches

    def timeline(self) -> List[Tuple[float, float]]:
        """Dark windows of the committed batches, in execution order."""
        return [(b.down_t, b.up_t) for b in self.batches if b.committed]

    def summary(self) -> str:
        state = ("completed" if self.success
                 else f"rolled back at batch {self.aborted_at}")
        healed = ""
        if self.heal is not None:
            healed = (f", healed {len(self.heal.reconfigured)} converters"
                      f" ({len(self.heal.unrecoverable)} unrecoverable)")
        return (
            f"execution {state}: {len(self.batches)} of "
            f"{self.schedule.num_batches} batches in "
            f"{self.total_time * 1e3:.1f} ms, "
            f"{self.retries} retries{healed}"
        )


def execute(
    flattree,
    plan: ReconfigurationPlan,
    before: Network,
    technology: Technology = MEMS_OPTICAL,
    max_batch: int = 64,
    start: float = 0.0,
    chaos=None,
    policy: Optional[RetryPolicy] = None,
    monitor=None,
) -> ExecutionReport:
    """Drive a plan through the plant, surviving injected faults.

    Batches are pair-atomic (see :func:`schedule`) and applied to
    ``flattree`` one by one through :meth:`FlatTree.set_configs`, so
    the plant is always in a pair-consistent state.  Per batch, every
    converter command may fault (``chaos.command_fault``): a TIMEOUT
    costs ``policy.command_timeout``, a NACK is instant, and failed
    converters are retried after a capped exponential backoff.  A
    converter exhausting ``policy.max_attempts`` — or the batch
    exceeding ``policy.batch_timeout`` — rolls the batch back: the
    batch's converters stay on their pre-batch configurations and the
    remaining batches are aborted, leaving the consistent converted
    prefix.  Command faults strike the *command phase*, before circuits
    blink, so a rolled-back batch never darkened a link.

    With ``chaos=None`` (or a null schedule) the fault machinery is
    skipped entirely and the committed timeline is byte-identical to
    :meth:`Schedule.batch_windows` — batch instants are computed from
    the schedule formula plus the accumulated fault delay, which is
    exactly zero on the clean path.

    Plant faults active when the conversion ends trigger
    :func:`~repro.core.failures.heal_report`; the final network is then
    the degraded materialization, re-validated and connectivity-checked.
    ``monitor`` (a :class:`~repro.monitor.NetworkMonitor`) receives the
    committed batches' blink ledger, as :func:`audit` would emit.
    """
    from repro.chaos.engine import ChaosClock

    sched = schedule(plan, before, technology=technology,
                     max_batch=max_batch,
                     pairs=getattr(flattree, "pairs", None))
    policy = policy or RetryPolicy()
    chaotic = chaos is not None and not chaos.is_null()
    clock = ChaosClock(start)
    step = technology.control_overhead + technology.switch_delay
    configs = flattree.configs()
    results: List[BatchResult] = []
    aborted_at: Optional[int] = None
    extra = 0.0  # fault-induced delay carried across batches

    for index, batch in enumerate(sched.batches):
        begin = start + index * step + extra
        attempts = 0
        retries = 0
        delay = 0.0
        reason: Optional[str] = None
        if chaotic:
            pending = list(batch)
            tries: Dict = {}
            round_index = 1
            while pending and reason is None:
                failed_round: List = []
                for cid in pending:
                    attempt = tries[cid] = tries.get(cid, 0) + 1
                    attempts += 1
                    if attempt > 1:
                        retries += 1
                    fault = chaos.command_fault(cid, attempt)
                    if fault is None:
                        continue
                    if fault.is_timeout:
                        delay += policy.command_timeout
                    obs.event(
                        "core.reconfigure.converter_retry",
                        converter=str(cid),
                        attempt=attempt,
                        batch=index,
                        fault=fault.value,
                        t=begin + delay,
                    )
                    obs.incr("core.reconfigure.converter_retries")
                    if attempt >= policy.max_attempts:
                        reason = (f"converter {cid} exhausted "
                                  f"{policy.max_attempts} attempts "
                                  f"({fault.value})")
                        break
                    failed_round.append(cid)
                else:
                    if failed_round:
                        delay += policy.backoff(round_index)
                        round_index += 1
                        if (policy.batch_timeout is not None
                                and delay > policy.batch_timeout):
                            reason = (f"batch command phase exceeded "
                                      f"{policy.batch_timeout:g}s timeout")
                    pending = failed_round
        down_t = begin + technology.control_overhead + delay
        up_t = down_t + technology.switch_delay
        if reason is not None:
            # Roll back: restore the pre-batch configs on whichever
            # batch members already ACKed (one more control round-trip
            # plus the circuit switch back), then abort the rest.  The
            # restore commands ride the same faulty control channel as
            # the forward ones — a fault *during rollback* stretches
            # the rollback window (timeouts) and is retried in place,
            # so the batch still ends un-committed on the pre-batch
            # configuration and the report stays truthful about every
            # absorbed fault.
            rollback_delay = 0.0
            rollback_faults = 0
            stuck: List = []
            for cid in batch:
                while True:
                    attempt = tries[cid] = tries.get(cid, 0) + 1
                    attempts += 1
                    fault = chaos.command_fault(cid, attempt)
                    if fault is None:
                        break
                    rollback_faults += 1
                    retries += 1
                    if fault.is_timeout:
                        rollback_delay += policy.command_timeout
                    obs.event(
                        "core.reconfigure.converter_retry",
                        converter=str(cid),
                        attempt=attempt,
                        batch=index,
                        fault=fault.value,
                        t=down_t + technology.control_overhead
                        + rollback_delay,
                    )
                    obs.incr("core.reconfigure.converter_retries")
                    if tries[cid] >= 2 * policy.max_attempts:
                        stuck.append(cid)
                        break
            if rollback_faults:
                reason += (f"; rollback absorbed {rollback_faults} "
                           f"command fault(s)")
            if stuck:
                reason += ("; restore unacknowledged on "
                           + ", ".join(str(c) for c in stuck))
            clock.seek(down_t + technology.control_overhead
                       + technology.switch_delay + rollback_delay)
            obs.event(
                "core.reconfigure.batch_rollback",
                batch=index,
                converters=len(batch),
                reason=reason,
                t=clock.now,
            )
            obs.incr("core.reconfigure.batch_rollbacks")
            results.append(BatchResult(
                index=index, converters=list(batch),
                down_t=down_t, up_t=up_t,
                committed=False, attempts=attempts, retries=retries,
                rollback_reason=reason,
            ))
            aborted_at = index
            break
        for cid in batch:
            configs[cid] = plan.config_changes[cid][1]
        flattree.set_configs(configs)
        extra += delay
        clock.seek(up_t)
        if monitor is not None and sched.blink_window > 0:
            unique: List[Tuple[SwitchId, SwitchId]] = []
            seen = set()
            for u, v in sched.dark_links[index]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    unique.append((u, v))
            for u, v in unique:
                monitor.link_down(down_t, u, v)
            for u, v in unique:
                monitor.link_up(up_t, u, v)
        results.append(BatchResult(
            index=index, converters=list(batch),
            down_t=down_t, up_t=up_t,
            committed=True, attempts=attempts, retries=retries,
        ))

    finish = clock.now
    failures = chaos.failures_at(finish) if chaotic else FailureSet()
    heal_outcome = None
    if not failures.is_empty():
        from repro.core.failures import (
            heal_report,
            materialize_with_failures,
        )

        heal_outcome = heal_report(flattree, failures, t=finish)
        if heal_outcome.reconfigured:
            flattree.set_configs(heal_outcome.assignment)
        network = materialize_with_failures(flattree, failures)
    else:
        network = flattree.materialize()

    if chaotic:
        from repro.topology.stats import is_connected
        from repro.topology.validate import audit as _validate

        problems = list(
            _validate(network, require_connected=False).problems
        )
        connected = is_connected(network)
    else:
        # Clean path: the materialization of a validated configuration
        # assignment — correct by construction, not re-checked.
        problems = []
        connected = True

    obs.incr("core.reconfigure.executes")
    obs.incr("core.reconfigure.executed_batches", len(results))
    return ExecutionReport(
        schedule=sched,
        start=start,
        finish=finish,
        batches=results,
        aborted_at=aborted_at,
        failures=failures,
        heal=heal_outcome,
        network=network,
        problems=problems,
        connected=connected,
    )


def disruption(
    plan: ReconfigurationPlan,
    flows: Sequence[Tuple[int, Path]],
) -> float:
    """Fraction of flows whose path crosses a link the plan takes down.

    ``flows`` is (flow id, current path).  The controller would drain
    exactly these flows before stage 1 commits; the fraction is the
    natural "how disruptive is this conversion" metric.
    """
    if not flows:
        raise ConfigurationError("no flows to assess")
    down = {frozenset(pair) for pair in plan.links_removed}
    hit = 0
    for _fid, path in flows:
        if any(frozenset((u, v)) in down for u, v in path.edges()):
            hit += 1
    return hit / len(flows)
