"""Reconfiguration execution: timing and traffic disruption (paper §2.7).

The paper's cost analysis argues converter switches can be realized by
several switching technologies as long as they are software
configurable, and that "flat-tree changes topology infrequently, so it
imposes no rigid restriction on switching delay".  This module makes
those statements quantitative:

* a :class:`Technology` profile captures a realization's per-converter
  switching delay and per-batch control overhead (defaults follow the
  technologies the paper cites: MEMS optical circuit switches,
  integrated Mach-Zehnder interferometers, and commodity packet chips
  with port-forwarding rules);
* :func:`schedule` turns a controller :class:`ReconfigurationPlan` into
  a staged timeline — converters are grouped into batches whose circuits
  can blink together without partitioning the network — and reports the
  total conversion time and the worst single blink window;
* :func:`disruption` estimates how much in-flight traffic a plan
  disturbs: the fraction of a workload's flows whose current path
  crosses a link the plan takes down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.core.controller import ReconfigurationPlan
from repro.routing.base import Path
from repro.topology.elements import Network, SwitchId


@dataclass(frozen=True)
class Technology:
    """A converter-switch realization's timing profile.

    ``switch_delay`` is the per-converter circuit switching time in
    seconds; ``control_overhead`` the per-batch controller round-trip
    (rule push + acknowledgment).
    """

    name: str
    switch_delay: float
    control_overhead: float

    def __post_init__(self) -> None:
        if self.switch_delay < 0 or self.control_overhead < 0:
            raise ConfigurationError("delays must be non-negative")


#: The technologies the paper's §2.7 cites.
MEMS_OPTICAL = Technology("MEMS optical", switch_delay=25e-3,
                          control_overhead=5e-3)
MACH_ZEHNDER = Technology("Mach-Zehnder interferometer",
                          switch_delay=10e-6, control_overhead=5e-3)
PACKET_CHIP = Technology("packet chip port-forwarding",
                         switch_delay=1e-3, control_overhead=10e-3)


@dataclass
class Schedule:
    """A staged execution of a reconfiguration plan.

    ``dark_links`` parallels ``batches``: the physical links that blink
    while batch *i* switches, which :func:`audit` replays into a
    :class:`~repro.monitor.NetworkMonitor` downtime ledger.
    """

    technology: Technology
    batches: List[List] = field(default_factory=list)
    dark_links: List[List[Tuple[SwitchId, SwitchId]]] = field(
        default_factory=list
    )

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def total_time(self) -> float:
        """Wall-clock for the whole conversion (batches run serially)."""
        if not self.batches:
            return 0.0
        return self.num_batches * (
            self.technology.control_overhead + self.technology.switch_delay
        )

    @property
    def blink_window(self) -> float:
        """Longest dark period for any single circuit (one batch)."""
        if not self.batches:
            return 0.0
        return self.technology.switch_delay

    def batch_windows(self, start: float = 0.0) -> List[Tuple[float, float]]:
        """The dark interval of every batch, as ``(down_t, up_t)``.

        Batch *i* begins at ``start + i * (control_overhead +
        switch_delay)``; its circuits are dark for exactly
        ``switch_delay`` after the control round-trip commits — the
        per-batch decomposition of :attr:`total_time` and
        :attr:`blink_window`.
        """
        tech = self.technology
        windows: List[Tuple[float, float]] = []
        for index in range(self.num_batches):
            begin = start + index * (tech.control_overhead
                                     + tech.switch_delay)
            down = begin + tech.control_overhead
            windows.append((down, down + tech.switch_delay))
        return windows

    def summary(self) -> str:
        return (
            f"{sum(len(b) for b in self.batches)} converters in "
            f"{self.num_batches} batches via {self.technology.name}: "
            f"total {self.total_time * 1e3:.1f} ms, "
            f"blink {self.blink_window * 1e3:.3f} ms"
        )


def schedule(
    plan: ReconfigurationPlan,
    before: Network,
    technology: Technology = MEMS_OPTICAL,
    max_batch: int = 64,
) -> Schedule:
    """Batch a plan so no batch dark-out disconnects the network.

    Greedy: converters join the current batch as long as removing the
    batch's dark links keeps ``before`` connected (checked on a scratch
    copy); otherwise a new batch starts.  ``max_batch`` caps batch size
    (controller fan-out limits).
    """
    if max_batch < 1:
        raise ConfigurationError("max_batch must be positive")
    converters = sorted(plan.config_changes)
    if not converters:
        return Schedule(technology=technology)
    sched = _build_schedule(plan, before, technology, max_batch, converters)
    obs.incr("core.reconfigure.schedules")
    obs.incr("core.reconfigure.batches", sched.num_batches)
    obs.incr("core.reconfigure.converters_scheduled", len(converters))
    obs.set_gauge("core.reconfigure.last_total_time_s", sched.total_time)
    return sched


def _build_schedule(
    plan: ReconfigurationPlan,
    before: Network,
    technology: Technology,
    max_batch: int,
    converters: List,
) -> Schedule:
    from repro.topology.stats import is_connected

    dark_by_converter = _links_by_converter(plan)

    batches: List[List] = []
    batch_links: List[List[Tuple[SwitchId, SwitchId]]] = []
    current: List = []
    current_links: List[Tuple[SwitchId, SwitchId]] = []
    scratch = before.copy()
    removed: List[Tuple[SwitchId, SwitchId]] = []
    for cid in converters:
        candidate = dark_by_converter.get(cid, [])
        taken: List[Tuple[SwitchId, SwitchId]] = []
        for u, v in candidate:
            if scratch.capacity(u, v) > 0:
                scratch.remove_cable(u, v)
                removed.append((u, v))
                taken.append((u, v))
        if len(current) >= max_batch or not is_connected(scratch):
            # Close the batch, restore scratch, start fresh with cid.
            if current:
                batches.append(current)
                batch_links.append(current_links)
            current = []
            current_links = []
            for u, v in removed:
                scratch.add_cable(u, v)
            removed = []
            taken = []
            for u, v in candidate:
                if scratch.capacity(u, v) > 0:
                    scratch.remove_cable(u, v)
                    removed.append((u, v))
                    taken.append((u, v))
        current.append(cid)
        current_links.extend(taken)
    if current:
        batches.append(current)
        batch_links.append(current_links)
    return Schedule(technology=technology, batches=batches,
                    dark_links=batch_links)


def _links_by_converter(plan: ReconfigurationPlan) -> Dict:
    """Attribute the plan's removed links to converters, best effort.

    A removed link belongs to a converter when one endpoint is the
    converter's core/agg/edge switch; ambiguous links (shared switches)
    are attributed to the first matching converter — the schedule only
    needs a conservative grouping, not an exact one.
    """
    remaining = list(plan.links_removed)
    out: Dict = {}
    for cid, _change in sorted(plan.config_changes.items()):
        mine = []
        rest = []
        for u, v in remaining:
            if _touches(cid, u) or _touches(cid, v):
                mine.append((u, v))
            else:
                rest.append((u, v))
        remaining = rest
        out[cid] = mine
    return out


def _touches(cid, switch: SwitchId) -> bool:
    if switch.kind in ("edge", "agg"):
        return switch.pod == cid.pod
    return False


def audit(
    sched: Schedule,
    monitor,
    start: float = 0.0,
) -> float:
    """Replay a schedule's blink timeline into a network monitor.

    For every batch, every link that blinks emits ``link_down`` at the
    batch's dark instant and ``link_up`` when the circuit switches
    complete, filling the monitor's downtime ledger
    (:meth:`~repro.monitor.NetworkMonitor.downtime`).  By construction,
    each link's total dark time equals :attr:`Schedule.blink_window`
    per blink — the ledger is the event-level cross-check of the
    schedule's batch arithmetic.  Returns the instant the conversion
    finishes (``start + total_time``).
    """
    windows = sched.batch_windows(start)
    links_down = 0
    for (down_t, up_t), links in zip(windows, sched.dark_links):
        # Parallel cables of one bundle blink together: one ledger
        # window per physical link pair per batch.
        unique: List[Tuple[SwitchId, SwitchId]] = []
        seen = set()
        for u, v in links:
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                unique.append((u, v))
        for u, v in unique:
            monitor.link_down(down_t, u, v)
        for u, v in unique:
            monitor.link_up(up_t, u, v)
        links_down += len(unique)
    obs.incr("core.reconfigure.audits")
    obs.incr("core.reconfigure.audited_links_down", links_down)
    return start + sched.total_time


def disruption(
    plan: ReconfigurationPlan,
    flows: Sequence[Tuple[int, Path]],
) -> float:
    """Fraction of flows whose path crosses a link the plan takes down.

    ``flows`` is (flow id, current path).  The controller would drain
    exactly these flows before stage 1 commits; the fraction is the
    natural "how disruptive is this conversion" metric.
    """
    if not flows:
        raise ConfigurationError("no flows to assess")
    down = {frozenset(pair) for pair in plan.links_removed}
    hit = 0
    for _fid, path in flows:
        if any(frozenset((u, v)) in down for u, v in path.edges()):
            hit += 1
    return hit / len(flows)
