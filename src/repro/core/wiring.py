"""Pod-core wiring patterns (paper §2.3, Figure 4).

Flat-tree replaces the Clos rule "aggregation switch ``i`` of every Pod
connects to the same ``h`` core switches" with an *edge-switch-based*
rule: the ``h/r`` connectors associated with edge switch ``j`` in every
Pod go to the same group of ``h/r`` core switches.  Within a group the
connectors are laid out consecutively — ``m`` blade B connectors, then
``n`` blade A connectors, then ``h/r - m - n`` plain aggregation
connectors — and the layout *rotates* across Pods:

* **Pattern 1** advances each Pod's block by ``m`` core switches, packing
  blade B connectors continuously Pod by Pod;
* **Pattern 2** advances it by one more (``m + 1``) per Pod, which avoids
  the repetition pattern 1 suffers when ``h/r`` is a multiple of ``m``.

Both wrap around within the group, which yields the paper's two wiring
properties: servers are spread uniformly over core switches, and all
core switches carry the same number of links of each type.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import WiringError
from repro.topology.clos import ClosParams
from repro.topology.elements import CoreSwitch


class WiringPattern(enum.Enum):
    """Pod-core rotation rule (paper Figure 4b/4c)."""

    PATTERN1 = 1
    PATTERN2 = 2


class Slot(enum.Enum):
    """What occupies one position of an edge group's connector block."""

    BLADE_B = "blade_b"  # core <-> 6-port converter C port
    BLADE_A = "blade_a"  # core <-> 4-port converter C port
    AGG = "agg"          # plain aggregation-core link


@dataclass(frozen=True)
class PodCoreWiring:
    """Resolved Pod-core wiring for a flat-tree design point.

    Parameters are validated once here; all builders then ask
    :meth:`core_for` / :meth:`slots` for concrete core targets.
    """

    params: ClosParams
    m: int
    n: int
    pattern: WiringPattern

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise WiringError("m and n must be non-negative")
        if self.m + self.n > self.params.group_size:
            raise WiringError(
                f"m + n = {self.m + self.n} exceeds the h/r = "
                f"{self.params.group_size} connectors per edge group"
            )
        if self.m + self.n > self.params.servers_per_edge:
            raise WiringError(
                f"m + n = {self.m + self.n} exceeds the "
                f"{self.params.servers_per_edge} relocatable servers "
                f"per edge switch"
            )

    def rotation_offset(self, pod: int) -> int:
        """Starting position of ``pod``'s block within each core group."""
        step = self.m if self.pattern is WiringPattern.PATTERN1 else self.m + 1
        return (pod * step) % self.params.group_size

    def core_for(self, pod: int, edge: int, position: int) -> CoreSwitch:
        """Core switch behind connector ``position`` of an edge group.

        ``position`` indexes the logical block: ``0..m-1`` are blade B
        connectors (6-port converter rows), ``m..m+n-1`` blade A
        connectors (4-port converter rows), and the rest aggregation
        connectors.
        """
        gs = self.params.group_size
        if not 0 <= position < gs:
            raise WiringError(f"position {position} out of range 0..{gs - 1}")
        rotated = (self.rotation_offset(pod) + position) % gs
        return CoreSwitch(edge * gs + rotated)

    def slot_kind(self, position: int) -> Slot:
        """Which connector type occupies ``position`` of the block."""
        if position < self.m:
            return Slot.BLADE_B
        if position < self.m + self.n:
            return Slot.BLADE_A
        return Slot.AGG

    def slots(self, pod: int, edge: int) -> Iterator[Tuple[Slot, int, CoreSwitch]]:
        """Iterate ``(slot kind, row-within-kind, core switch)``.

        ``row-within-kind`` is the blade row for converter slots (0-based
        within blade B or blade A respectively) and a running index for
        plain aggregation connectors.
        """
        for position in range(self.params.group_size):
            kind = self.slot_kind(position)
            if kind is Slot.BLADE_B:
                row = position
            elif kind is Slot.BLADE_A:
                row = position - self.m
            else:
                row = position - self.m - self.n
            yield kind, row, self.core_for(pod, edge, position)


def clos_wiring(params: ClosParams) -> PodCoreWiring:
    """The degenerate wiring with no converters (pure Clos, Figure 4a)."""
    return PodCoreWiring(params, m=0, n=0, pattern=WiringPattern.PATTERN1)


def pattern_step(m: int, pattern: WiringPattern) -> int:
    """Per-Pod rotation advance of a pattern (m or m+1)."""
    return m if pattern is WiringPattern.PATTERN1 else m + 1


def pattern_is_degenerate(
    params: ClosParams, m: int, pattern: WiringPattern
) -> bool:
    """True when a pattern gives every Pod the same rotation offset.

    With a degenerate rotation (step ≡ 0 mod h/r) the first ``m``
    positions of every core group receive *only* blade B connectors —
    i.e. only servers — from every Pod, leaving those core switches with
    no switch-level links at all.  The paper does not discuss this case
    (its Property 1 tacitly assumes the rotation actually rotates); we
    detect it and let design selection fall back to the other pattern.
    """
    if m == 0:
        return False
    return pattern_step(m, pattern) % params.group_size == 0


def safe_pattern(
    params: ClosParams, m: int, preferred: WiringPattern
) -> WiringPattern:
    """``preferred`` unless degenerate, else the other pattern.

    Raises :class:`WiringError` when both rotations are degenerate
    (only possible for ``h/r = 1`` with converters present).
    """
    if not pattern_is_degenerate(params, m, preferred):
        return preferred
    other = (
        WiringPattern.PATTERN2
        if preferred is WiringPattern.PATTERN1
        else WiringPattern.PATTERN1
    )
    if pattern_is_degenerate(params, m, other):
        raise WiringError(
            f"no usable wiring pattern: both rotations are degenerate "
            f"for m={m}, h/r={params.group_size}"
        )
    return other


def recommended_pattern_for_k(k: int) -> WiringPattern:
    """The paper's evaluation rule (§3.2).

    "We use Pod-core wiring pattern 2 when k is a multiple of 4 and
    pattern 1 otherwise."
    """
    return WiringPattern.PATTERN2 if k % 4 == 0 else WiringPattern.PATTERN1


def coverage_is_uniform(params: ClosParams, m: int, pattern: WiringPattern) -> bool:
    """Whether blade B connectors cover core positions uniformly.

    The rotation offsets are multiples of ``g = gcd(step, h/r)``; blocks
    of width ``m`` starting at those offsets hit every position equally
    exactly when ``g`` divides ``m``.  Pattern 1 (step = m) is therefore
    always uniform; pattern 2 (step = m + 1) only sometimes.
    """
    if m == 0:
        return True
    g = math.gcd(pattern_step(m, pattern), params.group_size)
    return m % g == 0


def profile_is_uniform(
    params: ClosParams, m: int, n: int, pattern: WiringPattern
) -> bool:
    """Whether *all three* connector types cover positions uniformly.

    This is the exact condition for the paper's Property 2 ("the core
    switches have equal number of links of the same type"): the
    rotation's gcd ``g = gcd(step, h/r)`` must divide the blade B block
    width ``m`` *and* the blade A block width ``n`` (the aggregation
    remainder then follows, since ``g`` divides ``h/r``).  The paper
    asserts Property 2 unconditionally; under this module's rotation it
    demonstrably fails when the condition does not hold (e.g. k = 12,
    m = 2, n = 3 under either pattern) — see the paper-properties tests.
    """
    if m == 0 and n == 0:
        return True
    g = math.gcd(pattern_step(m, pattern), params.group_size)
    return m % g == 0 and n % g == 0


def rotation_diversity(params: ClosParams, m: int, pattern: WiringPattern) -> int:
    """Number of distinct rotation offsets a pattern produces."""
    if m == 0:
        return 1
    g = math.gcd(pattern_step(m, pattern), params.group_size)
    return params.group_size // g


def profiled_pattern(params: ClosParams, m: int) -> WiringPattern:
    """Pick the wiring pattern by (uniform coverage, rotation diversity).

    This is the selection rule our reproduction uses by default.  The
    paper's evaluation rule ("pattern 2 when k is a multiple of 4") is
    tied to the authors' exact rotation arithmetic; under the rotation
    defined in this module it can yield non-uniform — even disconnected —
    server placement (e.g. k = 8, 12, 24).  Preferring the pattern that
    keeps Property 1 (uniform servers over cores) and, among those, the
    one with the most distinct per-Pod offsets reproduces the paper's
    *intent*: k-multiples-of-4 stay on the low-APL envelope (§3.2).
    Ties go to pattern 1, the paper's stated default.
    """
    candidates = []
    for pattern in (WiringPattern.PATTERN1, WiringPattern.PATTERN2):
        if pattern_is_degenerate(params, m, pattern):
            continue
        candidates.append(
            (
                coverage_is_uniform(params, m, pattern),
                rotation_diversity(params, m, pattern),
                -pattern.value,  # tie-break toward pattern 1
                pattern,
            )
        )
    if not candidates:
        raise WiringError(
            f"no usable wiring pattern for m={m}, h/r={params.group_size}"
        )
    return max(candidates)[-1]


def recommended_pattern(params: ClosParams, m: int) -> WiringPattern:
    """Generic version of the §2.3 guidance.

    Pattern 1 is preferred, except "when h/r is a multiple of m,
    different Pods are likely to repeat the same pattern ... in this
    case, pattern 2 is more favorable".
    """
    if m > 0 and params.group_size % m == 0:
        return WiringPattern.PATTERN2
    return WiringPattern.PATTERN1
