"""The convertible flat-tree network (paper §2).

:class:`FlatTree` models the *physical plant*: switches, servers, the
static cables converters never touch, and every converter switch with its
wired endpoints and peer.  The plant is built once; operating modes are
then realized by assigning converter configurations and asking
:meth:`FlatTree.materialize` for the resulting logical
:class:`~repro.topology.elements.Network`.

Materialized networks carry the exact port-accounting of the plant: a
circuit realized through a converter consumes the same physical ports the
underlying cables do, so every mode of a flat-tree built from fat-tree(k)
uses precisely the fat-tree's equipment.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.converter import (
    BLADE_A,
    BLADE_B,
    Converter,
    ConverterConfig,
    ConverterId,
    pair_links,
)
from repro.core.design import FlatTreeDesign
from repro.core.interpod import iter_pairs
from repro.core.pod import blade_a_server_slot, blade_b_server_slot, direct_server_slots
from repro.core.wiring import Slot
from repro.topology.clos import add_clos_switches, add_intra_pod_bipartite
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
    SwitchId,
)


class FlatTree:
    """A flat-tree physical plant with runtime-configurable converters."""

    def __init__(self, design: FlatTreeDesign) -> None:
        self.design = design
        self.converters: Dict[ConverterId, Converter] = {}
        self.pairs: List[Tuple[ConverterId, ConverterId]] = []
        self._direct_cables: List[Tuple[SwitchId, SwitchId]] = []
        self._direct_attaches: List[Tuple[int, SwitchId]] = []
        self._build_plant()

    # ------------------------------------------------------------------
    # plant construction
    # ------------------------------------------------------------------
    def _build_plant(self) -> None:
        design = self.design
        params = design.params
        wiring = design.wiring
        for pod in range(params.pods):
            for edge in range(params.d):
                edge_sw = EdgeSwitch(pod, edge)
                agg_sw = AggSwitch(pod, params.agg_of_edge(edge))
                for kind, row, core in wiring.slots(pod, edge):
                    if kind is Slot.AGG:
                        self._direct_cables.append((agg_sw, core))
                        continue
                    self._add_converter(
                        pod, edge, edge_sw, agg_sw, core, kind, row
                    )
                for slot in direct_server_slots(design):
                    server = params.server_id(pod, edge, slot)
                    self._direct_attaches.append((server, edge_sw))
        self._wire_pairs()

    def _add_converter(
        self,
        pod: int,
        edge: int,
        edge_sw: EdgeSwitch,
        agg_sw: AggSwitch,
        core: CoreSwitch,
        kind: Slot,
        row: int,
    ) -> None:
        if kind is Slot.BLADE_B:
            cid = ConverterId(pod, BLADE_B, row, edge)
            slot = blade_b_server_slot(row)
        else:
            cid = ConverterId(pod, BLADE_A, row, edge)
            slot = blade_a_server_slot(self.design, row)
        server = self.design.params.server_id(pod, edge, slot)
        self.converters[cid] = Converter(
            cid=cid, core=core, agg=agg_sw, edge=edge_sw, server=server
        )

    def _wire_pairs(self) -> None:
        for left, right in iter_pairs(self.design):
            self.converters[left].peer = right
            self.converters[right].peer = left
            self.pairs.append((left, right))

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def configs(self) -> Dict[ConverterId, ConverterConfig]:
        """Snapshot of every converter's current configuration."""
        return {cid: conv.config for cid, conv in self.converters.items()}

    def set_configs(
        self, assignment: Mapping[ConverterId, ConverterConfig]
    ) -> None:
        """Apply a (partial) configuration assignment.

        Every referenced converter must accept its new configuration and
        — after the whole assignment is applied — every side bundle must
        be consistent (both ends side, both ends cross, or both dark).
        The assignment is validated before any state changes.
        """
        staged = self.configs()
        for cid, config in assignment.items():
            if cid not in self.converters:
                raise ConfigurationError(f"unknown converter {cid}")
            self.converters[cid].check_config(config)
            staged[cid] = config
        self._check_pair_consistency(staged)
        for cid, config in assignment.items():
            self.converters[cid].config = config

    def _check_pair_consistency(
        self, staged: Mapping[ConverterId, ConverterConfig]
    ) -> None:
        from repro.core.converter import PAIRED_CONFIGS

        for left, right in self.pairs:
            lc, rc = staged[left], staged[right]
            lp, rp = lc in PAIRED_CONFIGS, rc in PAIRED_CONFIGS
            if lp != rp or (lp and lc is not rc):
                raise ConfigurationError(
                    f"side bundle {left} <-> {right} inconsistent: "
                    f"{lc.value} vs {rc.value}"
                )

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(self, name: Optional[str] = None) -> Network:
        """Build the logical network realized by the current configs."""
        params = self.design.params
        net = Network(name or f"flat-tree({params.pods} pods)")
        add_clos_switches(net, params)
        add_intra_pod_bipartite(net, params)
        for u, v in self._direct_cables:
            net.add_cable(u, v)
        for server, switch in self._direct_attaches:
            net.add_server(server, switch)
        for conv in self.converters.values():
            for link in conv.own_links():
                self._apply_link(net, link)
        for left, right in self.pairs:
            for link in pair_links(self.converters[left], self.converters[right]):
                self._apply_link(net, link)
        return net

    @staticmethod
    def _apply_link(net: Network, link) -> None:
        tag, a, b = link
        if tag == "cable":
            net.add_cable(a, b)
        else:
            net.add_server(a, b)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def params(self):
        return self.design.params

    def six_port_ids(self) -> List[ConverterId]:
        """All blade B (6-port) converter ids."""
        return [cid for cid in self.converters if cid.blade == BLADE_B]

    def four_port_ids(self) -> List[ConverterId]:
        """All blade A (4-port) converter ids."""
        return [cid for cid in self.converters if cid.blade == BLADE_A]

    def pod_converters(self, pod: int) -> List[ConverterId]:
        """Converter ids belonging to ``pod``."""
        return [cid for cid in self.converters if cid.pod == pod]

    def pod_server_groups(self) -> List[List[int]]:
        """Server ids grouped by Pod (dense id scheme)."""
        return [
            list(self.params.pod_servers(p)) for p in range(self.params.pods)
        ]

    def diff_configs(
        self, target: Mapping[ConverterId, ConverterConfig]
    ) -> Dict[ConverterId, Tuple[ConverterConfig, ConverterConfig]]:
        """Per-converter (current, target) for entries that change."""
        out: Dict[ConverterId, Tuple[ConverterConfig, ConverterConfig]] = {}
        for cid, new in target.items():
            cur = self.converters[cid].config
            if cur is not new:
                out[cid] = (cur, new)
        return out
