"""The (m, n) profiling scheme (paper §2.4, demonstrated in §3.2).

"Because flat-tree aims at converting generic Clos networks ... it is
difficult to pre-define the m and n values for optimal transmission
performance.  We suggest a profiling scheme: under the preferred
Pod-core wiring pattern ... vary m and n until they result in the
shortest average path length over all server pairs."

:func:`profile_mn` sweeps a candidate grid (by default the paper's k/8
multiples), builds the global-random materialization for each candidate,
and scores it by server-pair average path length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import WiringError
from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign, mn_candidates
from repro.core.flattree import FlatTree
from repro.core.wiring import WiringPattern, profiled_pattern
from repro.topology.clos import ClosParams
from repro.topology.stats import average_server_path_length


@dataclass(frozen=True)
class ProfilePoint:
    """One profiled design candidate and its score."""

    m: int
    n: int
    pattern: WiringPattern
    average_path_length: float


@dataclass(frozen=True)
class SkippedCandidate:
    """An (m, n) candidate the sweep could not build, and why."""

    m: int
    n: int
    reason: str


@dataclass(frozen=True)
class ProfileResult:
    """Full profiling sweep outcome; ``best`` minimizes APL.

    ``skipped`` lists the infeasible candidates (with their
    :class:`~repro.errors.WiringError` reasons) so a sweep is auditable:
    every candidate in the input grid appears either in ``points`` or in
    ``skipped``.
    """

    points: Tuple[ProfilePoint, ...]
    best: ProfilePoint
    skipped: Tuple[SkippedCandidate, ...] = ()

    def as_rows(self) -> List[dict]:
        """Table-friendly row dicts (used by the CLI and experiments)."""
        return [
            {
                "m": p.m,
                "n": p.n,
                "pattern": p.pattern.name,
                "apl": p.average_path_length,
                "best": p == self.best,
            }
            for p in self.points
        ]


def profile_mn(
    params: ClosParams,
    candidates: Optional[Sequence[Tuple[int, int]]] = None,
    ring: bool = True,
) -> ProfileResult:
    """Sweep (m, n) candidates and pick the APL-minimizing design.

    Candidates violating the design constraints (m + n over the group
    size or the relocatable-server budget, or no usable wiring pattern)
    are recorded on the result's ``skipped`` list — the paper's grid
    includes such points at small k — and reported as telemetry events
    (``core.profiling.skipped``), so sweeps stay auditable.
    """
    if candidates is None:
        k = params.pods  # fat-tree convention: pods == k
        candidates = mn_candidates(k)
    points: List[ProfilePoint] = []
    skipped: List[SkippedCandidate] = []
    with obs.span("profile_mn", pods=params.pods):
        for m, n in candidates:
            start = time.perf_counter()
            try:
                pattern = profiled_pattern(params, m)
                design = FlatTreeDesign(
                    params=params, m=m, n=n, pattern=pattern, ring=ring
                )
            except WiringError as exc:
                skipped.append(SkippedCandidate(m, n, str(exc)))
                obs.incr("core.profiling.skipped")
                obs.event("core.profiling.skipped_candidate",
                          m=m, n=n, reason=str(exc))
                continue
            net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
            apl = average_server_path_length(net)
            obs.observe("core.profiling.candidate_s",
                        time.perf_counter() - start)
            obs.incr("core.profiling.candidates")
            points.append(ProfilePoint(m, n, pattern, apl))
    if not points:
        raise WiringError("no feasible (m, n) candidate to profile")
    best = min(points, key=lambda p: p.average_path_length)
    return ProfileResult(points=tuple(points), best=best,
                         skipped=tuple(skipped))


def profiled_design(params: ClosParams, ring: bool = True) -> FlatTreeDesign:
    """The design point the profiling scheme selects for ``params``."""
    result = profile_mn(params, ring=ring)
    return FlatTreeDesign(
        params=params,
        m=result.best.m,
        n=result.best.n,
        pattern=result.best.pattern,
        ring=ring,
    )
