"""Quantitative cost model for a flat-tree design (paper §2.7, §2.2).

The paper argues converter-switch cost is "minimal compared to that of
the high-end servers and switches"; this module computes the actual
bill of materials a design point implies, so the claim can be checked
as arithmetic:

* converter switches by port count (4-port blade A, 6-port blade B);
* extra cables flat-tree adds beyond the Clos baseline (each converter
  splices into one edge-server and one agg-core cable, adding two cable
  segments; each side bundle adds two inter-Pod cables);
* connector counts per Pod (core, server, and bundled side connectors —
  the quantities Figure 3 annotates);
* a relative cost estimate under a configurable per-port price ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.design import FlatTreeDesign
from repro.core.interpod import boundaries
from repro.core.pod import middle_column


@dataclass(frozen=True)
class BillOfMaterials:
    """Everything a flat-tree design adds on top of its Clos plant."""

    four_port_converters: int
    six_port_converters: int
    extra_cables: int
    side_bundles: int
    core_connectors_per_pod: int
    server_connectors_per_pod: int
    side_connector_pairs_per_pod: int

    @property
    def total_converters(self) -> int:
        return self.four_port_converters + self.six_port_converters

    @property
    def total_converter_ports(self) -> int:
        return 4 * self.four_port_converters + 6 * self.six_port_converters


def bill_of_materials(design: FlatTreeDesign) -> BillOfMaterials:
    """Compute the converter/cable/connector counts of a design."""
    params = design.params
    pairs_per_pod = params.d
    pods = params.pods
    four = pods * pairs_per_pod * design.n
    six = pods * pairs_per_pod * design.m

    # Each converter splices two existing cables into four segments:
    # +2 cable segments per converter.  Each cabled side bundle carries
    # two inter-Pod cables that do not exist in Clos.
    bundles = len(boundaries(design)) * design.m * (params.d // 2)
    extra_cables = 2 * (four + six) + 2 * bundles

    # Figure 3 quantities (per Pod): every converter exposes one core
    # and one server connector; 6-port converters expose a double side
    # connector unless they sit in the odd-d middle column.
    core_conn = pairs_per_pod * (design.m + design.n)
    server_conn = core_conn
    middle = middle_column(params.d)
    side_cols = params.d - (1 if middle is not None else 0)
    side_pairs = design.m * side_cols

    return BillOfMaterials(
        four_port_converters=four,
        six_port_converters=six,
        extra_cables=extra_cables,
        side_bundles=bundles,
        core_connectors_per_pod=core_conn,
        server_connectors_per_pod=server_conn,
        side_connector_pairs_per_pod=side_pairs,
    )


def relative_cost(
    design: FlatTreeDesign,
    converter_port_price: float = 0.1,
    switch_port_price: float = 1.0,
) -> float:
    """Converter cost as a fraction of the Clos switch-port cost.

    ``converter_port_price`` expresses the paper's §2.7 argument that a
    converter port (bare circuit switching, "no processor/buffering,
    sophisticated routing protocols, or general-purpose OS") costs a
    small fraction of a full switch port; 0.1 is deliberately
    conservative.
    """
    if converter_port_price < 0 or switch_port_price <= 0:
        raise ConfigurationError("prices must be positive")
    params = design.params
    bom = bill_of_materials(design)
    switch_ports = (
        params.pods * params.d * params.edge_ports
        + params.pods * params.aggs_per_pod * params.agg_ports
        + params.num_cores * params.core_ports
    )
    return (bom.total_converter_ports * converter_port_price) / (
        switch_ports * switch_port_price
    )
