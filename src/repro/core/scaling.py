"""Elastic up/down-scaling of the network (paper §5, future work).

"[Convertibility can enable] automatic up/down-scale the network at
busy/idle time."  At idle time a data center wants to power off core
switches; a convertible topology decides *which* cores are expendable
and proves the remaining fabric still carries the offered load.

:func:`downscale_plan` greedily sleeps core switches — least-loaded
first, judged by a concurrent-flow solve of the offered workload — while
the achieved throughput stays above ``min_throughput_fraction`` of the
full network's.  The result names the sleeping cores and the verified
throughput, and :func:`apply_sleep` produces the pruned network for
inspection.  Waking up is just re-materializing the flat-tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.mcf.commodities import Commodity, build_flow_problem
from repro.topology.elements import Network, SwitchId


@dataclass(frozen=True)
class DownscalePlan:
    """Outcome of a downscale search."""

    sleeping: Tuple[SwitchId, ...]
    baseline_throughput: float
    achieved_throughput: float

    @property
    def cores_slept(self) -> int:
        return len(self.sleeping)

    def summary(self) -> str:
        if not self.sleeping:
            return "no core switch can sleep at this throughput floor"
        loss = 0.0
        if self.baseline_throughput > 0:
            loss = 100 * (1 - self.achieved_throughput / self.baseline_throughput)
        return (
            f"{self.cores_slept} core switches sleeping, "
            f"throughput {self.achieved_throughput:.4f} "
            f"({loss:.1f}% below full network)"
        )


def apply_sleep(net: Network, sleeping: Sequence[SwitchId]) -> Network:
    """A copy of ``net`` with the sleeping switches' cables removed.

    Sleeping switches stay registered (they exist, powered off) but
    carry no links and no servers; a sleeping switch hosting servers is
    rejected — relocate them first by converting.
    """
    pruned = net.copy()
    for switch in sleeping:
        if pruned.server_count(switch) > 0:
            raise ConfigurationError(
                f"switch {switch!r} hosts servers and cannot sleep"
            )
        for nbr in list(pruned.fabric[switch]):
            mult = pruned.fabric[switch][nbr]["mult"]
            for _ in range(mult):
                pruned.remove_cable(switch, nbr)
    return pruned


def downscale_plan(
    net: Network,
    workload: List[Commodity],
    min_throughput_fraction: float = 0.5,
    candidates: Optional[Sequence[SwitchId]] = None,
    max_sleeping: Optional[int] = None,
    solver: Optional[str] = None,
) -> DownscalePlan:
    """Greedily sleep core switches while the workload keeps flowing.

    Candidates default to all server-free core switches.  Each round
    sleeps the core whose removal costs the least throughput (verified
    by a concurrent-flow solve) and stops when the next-best removal
    would drop below the floor, when candidates run out, or at
    ``max_sleeping``.
    """
    from repro.experiments.common import solve_throughput

    if not 0 < min_throughput_fraction <= 1:
        raise ConfigurationError(
            f"throughput floor must be in (0, 1], got {min_throughput_fraction}"
        )
    if candidates is None:
        candidates = [
            s
            for s in net.switches_of_kind("core")
            if net.server_count(s) == 0
        ]
    baseline = solve_throughput(
        build_flow_problem(net, workload), force=solver
    )
    floor = baseline * min_throughput_fraction
    budget = max_sleeping if max_sleeping is not None else len(candidates)

    sleeping: List[SwitchId] = []
    achieved = baseline
    remaining = list(candidates)
    while remaining and len(sleeping) < budget:
        best: Optional[Tuple[float, SwitchId]] = None
        for candidate in remaining:
            pruned = apply_sleep(net, sleeping + [candidate])
            try:
                lam = solve_throughput(
                    build_flow_problem(pruned, workload), force=solver
                )
            except Exception as exc:
                # Pruning disconnected the workload; skip the candidate
                # but leave an audit trail instead of failing silently.
                obs.event(
                    "core.scaling.candidate_skipped",
                    candidate=str(candidate),
                    reason=str(exc) or type(exc).__name__,
                )
                continue
            if best is None or lam > best[0]:
                best = (lam, candidate)
        if best is None or best[0] < floor:
            break
        achieved = best[0]
        sleeping.append(best[1])
        remaining.remove(best[1])
    return DownscalePlan(
        sleeping=tuple(sleeping),
        baseline_throughput=baseline,
        achieved_throughput=achieved,
    )
