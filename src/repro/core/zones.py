"""Hybrid-mode zones (paper §3.4).

"Flat-tree can work in hybrid mode with different topologies each in a
number of Pods.  Workloads placed in different zones share the network
core."  A :class:`ZoneLayout` partitions the Pods into named zones, each
with an operating mode; it compiles to the per-Pod mode map that
:func:`repro.core.conversion.hybrid_configs` consumes, and exposes the
zone-local server populations that workload generators need.

Zones of contiguous Pods maximize usable side bundles in global-random
zones (a 6-port converter needs its *adjacent-Pod* peer in the same
mode); :func:`proportional_layout` therefore slices the Pod line
contiguously, mirroring the paper's "varying proportions at an interval
of 10%" experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.core.conversion import Mode
from repro.topology.clos import ClosParams


@dataclass(frozen=True)
class Zone:
    """A named set of Pods sharing one operating mode."""

    name: str
    mode: Mode
    pods: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.pods:
            raise ConfigurationError(f"zone {self.name!r} has no Pods")
        if len(set(self.pods)) != len(self.pods):
            raise ConfigurationError(f"zone {self.name!r} repeats Pods")


@dataclass(frozen=True)
class ZoneLayout:
    """A complete partition of a network's Pods into zones."""

    params: ClosParams
    zones: Tuple[Zone, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        covered: List[int] = []
        for zone in self.zones:
            covered.extend(zone.pods)
        expected = set(range(self.params.pods))
        if sorted(covered) != sorted(expected) or len(covered) != len(expected):
            raise ConfigurationError(
                "zones must partition the Pods exactly once each"
            )
        names = [z.name for z in self.zones]
        if len(set(names)) != len(names):
            raise ConfigurationError("zone names must be unique")

    def pod_modes(self) -> Dict[int, Mode]:
        """The per-Pod mode map for the conversion engine."""
        modes: Dict[int, Mode] = {}
        for zone in self.zones:
            for pod in zone.pods:
                modes[pod] = zone.mode
        return modes

    def zone(self, name: str) -> Zone:
        for z in self.zones:
            if z.name == name:
                return z
        raise ConfigurationError(f"no zone named {name!r}")

    def zone_servers(self, name: str) -> List[int]:
        """All server ids whose Pod belongs to the named zone."""
        out: List[int] = []
        for pod in self.zone(name).pods:
            out.extend(self.params.pod_servers(pod))
        return out

    def zone_pod_groups(self, name: str) -> List[Sequence[int]]:
        """Per-Pod server groups of one zone (for in-Pod metrics)."""
        return [self.params.pod_servers(p) for p in self.zone(name).pods]


def proportional_layout(
    params: ClosParams,
    fraction_global: float,
    global_name: str = "global",
    local_name: str = "local",
) -> ZoneLayout:
    """Two contiguous zones: the paper's §3.4 proportion sweep.

    The first ``round(fraction_global * pods)`` Pods run approximated
    global random graph; the rest run approximated local random graphs.
    ``fraction_global`` must leave at least one Pod on each side.
    """
    pods = params.pods
    count = round(fraction_global * pods)
    if count < 1 or count > pods - 1:
        raise ConfigurationError(
            f"fraction {fraction_global} leaves an empty zone "
            f"({count} of {pods} Pods global)"
        )
    return ZoneLayout(
        params=params,
        zones=(
            Zone(global_name, Mode.GLOBAL_RANDOM, tuple(range(count))),
            Zone(local_name, Mode.LOCAL_RANDOM, tuple(range(count, pods))),
        ),
    )


def uniform_layout(params: ClosParams, mode: Mode, name: str = "all") -> ZoneLayout:
    """A single zone covering the whole network (degenerate hybrid)."""
    return ZoneLayout(
        params=params,
        zones=(Zone(name, mode, tuple(range(params.pods))),),
    )


def modes_of(layout: ZoneLayout) -> Mapping[int, Mode]:
    """Alias of :meth:`ZoneLayout.pod_modes` (reads better at call sites)."""
    return layout.pod_modes()
