"""Converter switches: the hardware primitive of flat-tree (paper §2.1).

A converter switch is a small software-configurable circuit switch that
sits on a broken edge-server link and a broken aggregation-core link.  It
contributes no hops; a *configuration* simply decides which of its
attached endpoints are circuit-connected (paper Figure 1):

=========  ==================  =========================================
config     4-port              6-port
=========  ==================  =========================================
default    A-C, E-S            A-C, E-S (side ports unused)
local      A-S, C-E            A-S, C-E (side ports unused)
side       —                   S-C, plus peer links E-E' and A-A'
cross      —                   S-C, plus peer links E-A' and A-E'
=========  ==================  =========================================

4-port converters relocate servers to aggregation switches; 6-port
converters have a double side connector to a peer converter in an
adjacent Pod and relocate servers to core switches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch


class ConverterConfig(enum.Enum):
    """A converter switch configuration (paper Figure 1)."""

    DEFAULT = "default"
    LOCAL = "local"
    SIDE = "side"
    CROSS = "cross"


#: Configurations that require a peer converter's cooperation.
PAIRED_CONFIGS: FrozenSet[ConverterConfig] = frozenset(
    {ConverterConfig.SIDE, ConverterConfig.CROSS}
)

BLADE_A = "A"  # 4-port converters
BLADE_B = "B"  # 6-port converters


@dataclass(frozen=True, order=True)
class ConverterId:
    """Stable identity of a converter switch.

    ``blade`` is ``"A"`` (4-port) or ``"B"`` (6-port); ``row`` indexes the
    converter matrix row (paper Figure 3); ``edge`` is the Pod-local index
    of the edge switch whose column the converter occupies.
    """

    pod: int
    blade: str
    row: int
    edge: int

    def __post_init__(self) -> None:
        if self.blade not in (BLADE_A, BLADE_B):
            raise ConfigurationError(f"unknown blade {self.blade!r}")

    @property
    def is_six_port(self) -> bool:
        return self.blade == BLADE_B


# A realized circuit: either a switch-switch cable or a server attachment.
CableLink = Tuple[str, Union[CoreSwitch, AggSwitch, EdgeSwitch],
                  Union[CoreSwitch, AggSwitch, EdgeSwitch]]
AttachLink = Tuple[str, int, Union[CoreSwitch, AggSwitch, EdgeSwitch]]
RealizedLink = Union[CableLink, AttachLink]


@dataclass
class Converter:
    """A converter switch with its physically wired endpoints.

    Attributes
    ----------
    cid:
        Identity (Pod, blade, row, edge column).
    core / agg / edge:
        The switches its C, A, and E ports are cabled to.  The core
        target is fixed by the Pod-core wiring pattern at build time.
    server:
        The server id on its S port.
    peer:
        The 6-port peer across the adjacent Pod (None for 4-port
        converters and for the unpaired middle column when d is odd).
    config:
        Current configuration.
    """

    cid: ConverterId
    core: CoreSwitch
    agg: AggSwitch
    edge: EdgeSwitch
    server: int
    peer: Optional[ConverterId] = None
    config: ConverterConfig = field(default=ConverterConfig.DEFAULT)

    @property
    def valid_configs(self) -> FrozenSet[ConverterConfig]:
        """Configurations this converter may legally take.

        4-port converters support default/local only (§2.1: they "should
        not be used to relocate servers to core switches").  6-port
        converters additionally support side/cross, but only when a peer
        is wired (the odd-d middle column has unused side connectors).
        """
        if self.cid.is_six_port and self.peer is not None:
            return frozenset(ConverterConfig)
        return frozenset({ConverterConfig.DEFAULT, ConverterConfig.LOCAL})

    def check_config(self, config: ConverterConfig) -> None:
        """Raise :class:`ConfigurationError` if ``config`` is illegal."""
        if config not in self.valid_configs:
            raise ConfigurationError(
                f"converter {self.cid} cannot take {config.value!r} "
                f"(valid: {sorted(c.value for c in self.valid_configs)})"
            )

    def own_links(self, config: Optional[ConverterConfig] = None) -> List[RealizedLink]:
        """Circuits realized by this converter alone under ``config``.

        Side links to the peer are *pair* circuits and are produced by
        :func:`pair_links`, not here, so that each pair is materialized
        exactly once.
        """
        config = config or self.config
        self.check_config(config)
        if config is ConverterConfig.DEFAULT:
            return [("cable", self.agg, self.core),
                    ("attach", self.server, self.edge)]
        if config is ConverterConfig.LOCAL:
            return [("cable", self.core, self.edge),
                    ("attach", self.server, self.agg)]
        # SIDE / CROSS: server relocates to the core switch.
        return [("attach", self.server, self.core)]


def pair_links(
    left: Converter, right: Converter
) -> List[RealizedLink]:
    """Circuits realized by a 6-port converter pair's side bundle.

    ``left``/``right`` are the two peered converters (order does not
    matter).  Both must be in the same paired configuration:

    * ``side``  — peer-wise links E-E' and A-A';
    * ``cross`` — edge-aggregation links E-A' and A-E'.

    Returns an empty list when neither is in a paired configuration (the
    side bundle is dark); raises when the two ends disagree.
    """
    lc, rc = left.config, right.config
    in_pair = (lc in PAIRED_CONFIGS, rc in PAIRED_CONFIGS)
    if in_pair == (False, False):
        return []
    if in_pair != (True, True) or lc is not rc:
        raise ConfigurationError(
            f"peered converters {left.cid} ({lc.value}) and "
            f"{right.cid} ({rc.value}) must take the same side/cross "
            f"configuration"
        )
    if left.peer != right.cid or right.peer != left.cid:
        raise ConfigurationError(
            f"{left.cid} and {right.cid} are not wired as peers"
        )
    if lc is ConverterConfig.SIDE:
        return [("cable", left.edge, right.edge),
                ("cable", left.agg, right.agg)]
    return [("cable", left.edge, right.agg),
            ("cable", left.agg, right.edge)]
