"""Controller state persistence: designs and configurations as JSON.

A real deployment's controller must survive restarts: the flat-tree
*design* (equipment, m/n, wiring pattern, ring) and the current
*converter configuration* together determine the live topology.  This
module round-trips both through plain JSON dictionaries, so operators
can version them, diff them, and audit what the network looked like at
any point in time.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.core.converter import ConverterConfig, ConverterId
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.wiring import WiringPattern
from repro.topology.clos import ClosParams

_STATE_VERSION = 1


def design_to_dict(design: FlatTreeDesign) -> Dict:
    """A JSON-safe dictionary capturing a design point exactly."""
    params = design.params
    return {
        "version": _STATE_VERSION,
        "params": {
            "pods": params.pods,
            "d": params.d,
            "r": params.r,
            "h": params.h,
            "servers_per_edge": params.servers_per_edge,
        },
        "m": design.m,
        "n": design.n,
        "pattern": design.pattern.value,
        "ring": design.ring,
    }


def design_from_dict(data: Mapping) -> FlatTreeDesign:
    """Inverse of :func:`design_to_dict` (validates on reconstruction)."""
    _check_version(data)
    try:
        params = ClosParams(**data["params"])
        return FlatTreeDesign(
            params=params,
            m=int(data["m"]),
            n=int(data["n"]),
            pattern=WiringPattern(int(data["pattern"])),
            ring=bool(data["ring"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed design state: {exc}") from exc


def configs_to_dict(ft: FlatTree) -> Dict:
    """The converter configuration snapshot as a JSON-safe dictionary."""
    return {
        "version": _STATE_VERSION,
        "configs": {
            _cid_key(cid): config.value
            for cid, config in ft.configs().items()
        },
    }


def configs_from_dict(ft: FlatTree, data: Mapping) -> None:
    """Apply a configuration snapshot to ``ft`` (atomic, validated)."""
    _check_version(data)
    try:
        assignment = {
            _cid_parse(key): ConverterConfig(value)
            for key, value in data["configs"].items()
        }
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(f"malformed config state: {exc}") from exc
    missing = set(ft.converters) - set(assignment)
    if missing:
        raise ConfigurationError(
            f"config state misses {len(missing)} converters "
            f"(e.g. {sorted(missing)[0]})"
        )
    ft.set_configs(assignment)


def save_state(ft: FlatTree, path: str) -> None:
    """Write design + configuration to a JSON file."""
    state = {
        "design": design_to_dict(ft.design),
        "configuration": configs_to_dict(ft),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state, handle, indent=2, sort_keys=True)


def load_state(path: str) -> FlatTree:
    """Rebuild a flat-tree plant (design + configs) from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        state = json.load(handle)
    try:
        design_data = state["design"]
        config_data = state["configuration"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed state file: {exc}") from exc
    ft = FlatTree(design_from_dict(design_data))
    configs_from_dict(ft, config_data)
    return ft


def _cid_key(cid: ConverterId) -> str:
    return f"{cid.pod}/{cid.blade}/{cid.row}/{cid.edge}"


def _cid_parse(key: str) -> ConverterId:
    pod, blade, row, edge = key.split("/")
    return ConverterId(int(pod), blade, int(row), int(edge))


def _check_version(data: Mapping) -> None:
    version = data.get("version")
    if version != _STATE_VERSION:
        raise ConfigurationError(
            f"unsupported state version {version!r} "
            f"(this library writes {_STATE_VERSION})"
        )
