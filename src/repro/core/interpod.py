"""Inter-Pod side wiring (paper §2.5).

The 6-port converters on the *left* blade B of Pod ``p+1`` are bundled to
those on the *right* blade B of Pod ``p``.  To connect each edge and
aggregation switch to as many distinct switches in the adjacent Pod as
possible, the bundle implements a shifting pattern: converter ``<i, j>``
on the left of Pod ``p+1`` pairs with converter
``<i, (d/2 - 1 - j + i) mod (d/2)>`` on the right of Pod ``p`` — the
mirrored column shifted by the row index.

Row parity picks the paired configuration in random-graph modes: even
rows take ``side`` (peer-wise links E-E', A-A'), odd rows take ``cross``
(edge-aggregation links E-A', A-E'), giving both kinds of cross-Pod
connections (§2.5).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.converter import BLADE_B, ConverterConfig, ConverterId
from repro.core.design import FlatTreeDesign
from repro.core.pod import half_width


def boundaries(design: FlatTreeDesign) -> List[Tuple[int, int]]:
    """Adjacent Pod pairs ``(p, p+1)`` whose side bundles are cabled.

    With ``ring=True`` the last Pod wraps to Pod 0; otherwise the Pods
    form a line and the outermost side bundles stay dark.
    """
    pods = design.params.pods
    if design.ring:
        return [(p, (p + 1) % pods) for p in range(pods)]
    return [(p, p + 1) for p in range(pods - 1)]


def paired_column(d: int, row: int, left_col: int) -> int:
    """Right-blade column paired with ``left_col`` (paper formula).

    ``<i, j>`` on the left of Pod p+1 connects to
    ``<i, (d/2 - 1 - j + i) % (d/2)>`` on the right of Pod p.
    """
    half = half_width(d)
    return (half - 1 - left_col + row) % half


def iter_pairs(
    design: FlatTreeDesign,
) -> Iterator[Tuple[ConverterId, ConverterId]]:
    """All peered 6-port converter pairs as ``(left, right)``.

    ``left`` lives on the left blade B of the higher-indexed Pod of a
    boundary; ``right`` on the right blade B of the lower-indexed Pod.
    Column indices are translated to Pod-local edge indices (the right
    blade's column ``c`` serves edge ``d - d/2 + c``).
    """
    d = design.params.d
    half = half_width(d)
    for right_pod, left_pod in boundaries(design):
        for row in range(design.m):
            for left_col in range(half):
                right_col = paired_column(d, row, left_col)
                left_cid = ConverterId(left_pod, BLADE_B, row, left_col)
                right_cid = ConverterId(
                    right_pod, BLADE_B, row, d - half + right_col
                )
                yield left_cid, right_cid


def paired_config_for_row(row: int) -> ConverterConfig:
    """The paired configuration a row takes in global-random mode.

    "If i is even, they take the 6-port 'side' configuration; if i is
    odd, they take the 6-port 'cross' configuration."
    """
    return ConverterConfig.SIDE if row % 2 == 0 else ConverterConfig.CROSS
