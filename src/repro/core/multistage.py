"""Two-stage (multi-Pod-layer) flat-tree: the paper's §2.1 sketch, realized.

"Flat-tree can be extended to multi-stages of Pods: the lower-layer
Pods consider the edge switches in the upper-layer Pods as core
switches; intermediate switch-only Pods take relocated servers from
lower-layer Pods as their own servers.  We leave the details to future
work."

This module supplies the details as a *composition* of the
single-layer machinery (our design decisions, not the paper's — each is
noted):

* the lower layer is an ordinary :class:`~repro.core.flattree.FlatTree`
  whose core switches are **identified** with the upper layer's edge
  switches: lower core ``c`` is upper edge switch
  ``(c // d_u, c mod d_u)``, which requires
  ``lower.num_cores == upper.pods * upper.d``;
* the upper layer is an ordinary FlatTree whose "servers" are *slots*
  — attachment points for the lower layer's Pod-core connectors.  Upper
  edge switch slots number ``lower.pods`` (one per lower Pod, exactly
  the per-core down-link count of the plain Clos), so
  ``upper.servers_per_edge == lower.pods``;
* slot ``(c, p)`` (lower core c, lower Pod p) carries whatever the
  lower layer routes up from Pod p toward core c — an aggregation
  uplink, a 4-port core-edge circuit, or a relocated server.  The upper
  layer's converters relocate the slot itself: in upper ``default`` the
  slot lands on the upper edge switch (the classic 3-tier Clos); in
  ``local`` on the upper aggregation switch; in ``side``/``cross`` on
  an upper core switch;
* both layers' converters are physical-layer, so the composed hop count
  still charges nothing for conversion hardware.

Conversion is therefore a pair of configuration assignments, one per
layer, each validated by its own FlatTree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional, Tuple, Union

from repro.errors import ConfigurationError, TopologyError
from repro.core.conversion import Mode, mode_configs
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.topology.elements import (
    AggSwitch,
    EdgeSwitch,
    Network,
    SwitchId,
)


class UpperEdge(NamedTuple):
    """An upper-layer edge switch (plays lower-layer core)."""

    pod: int
    index: int
    kind: str = "u-edge"


class UpperAgg(NamedTuple):
    """An upper-layer aggregation switch."""

    pod: int
    index: int
    kind: str = "u-agg"


class UpperCore(NamedTuple):
    """A top-layer core switch."""

    index: int
    kind: str = "u-core"


UpperSwitch = Union[UpperEdge, UpperAgg, UpperCore]


def _lift(switch: SwitchId) -> UpperSwitch:
    """Map an upper FlatTree's node into the upper namespace."""
    if switch.kind == "edge":
        return UpperEdge(switch.pod, switch.index)
    if switch.kind == "agg":
        return UpperAgg(switch.pod, switch.index)
    if switch.kind == "core":
        return UpperCore(switch.index)
    raise TopologyError(f"unexpected upper switch {switch!r}")


@dataclass(frozen=True)
class TwoStageDesign:
    """A validated pair of layer designs."""

    lower: FlatTreeDesign
    upper: FlatTreeDesign

    def __post_init__(self) -> None:
        lo, up = self.lower.params, self.upper.params
        if lo.num_cores != up.pods * up.d:
            raise ConfigurationError(
                f"lower layer has {lo.num_cores} cores but the upper "
                f"layer offers {up.pods * up.d} edge switches"
            )
        if up.servers_per_edge != lo.pods:
            raise ConfigurationError(
                f"upper edge switches need {lo.pods} slots (one per "
                f"lower Pod), got {up.servers_per_edge}"
            )

    @classmethod
    def symmetric(cls, k_lower: int, k_upper_pods: int = 2) -> "TwoStageDesign":
        """A convenient small instance: fat-tree(k) below, sized above.

        The upper layer gets ``k_upper_pods`` Pods covering the lower
        layer's ``(k/2)^2`` cores, one upper aggregation per upper edge,
        and upper uplink counts mirroring the upper Pod width.
        """
        lower = FlatTreeDesign.for_fat_tree(k_lower)
        cores = lower.params.num_cores
        if cores % k_upper_pods != 0:
            raise ConfigurationError(
                f"{cores} lower cores do not split into "
                f"{k_upper_pods} upper Pods"
            )
        d_u = cores // k_upper_pods
        from repro.topology.clos import ClosParams
        from repro.core.wiring import profiled_pattern

        upper_params = ClosParams(
            pods=k_upper_pods,
            d=d_u,
            r=1,
            h=d_u,
            servers_per_edge=lower.params.pods,
        )
        m = max(1, lower.params.pods // 8)
        n = max(1, lower.params.pods // 4)
        # The upper layer relocates at most one slot per lower Pod pair;
        # keep m + n within both the slot count and the group size.
        budget = min(upper_params.servers_per_edge, upper_params.group_size)
        while m + n > budget:
            if n > 1:
                n -= 1
            elif m > 1:
                m -= 1
            else:
                raise ConfigurationError(
                    "upper layer too small for any converters"
                )
        upper = FlatTreeDesign(
            params=upper_params,
            m=m,
            n=n,
            pattern=profiled_pattern(upper_params, m),
            ring=k_upper_pods >= 2,
        )
        return cls(lower=lower, upper=upper)


class TwoStageFlatTree:
    """A convertible two-Pod-layer flat-tree."""

    def __init__(self, design: TwoStageDesign) -> None:
        self.design = design
        self.lower = FlatTree(design.lower)
        self.upper = FlatTree(design.upper)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_modes(self, lower: Mode, upper: Mode) -> None:
        """Put each layer into a homogeneous operating mode."""
        self.lower.set_configs(mode_configs(self.lower, lower))
        self.upper.set_configs(mode_configs(self.upper, upper))

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def slot_id(self, core: int, pod: int) -> int:
        """Upper slot fed by lower Pod ``pod``'s connector toward ``core``."""
        return core * self.design.lower.params.pods + pod

    def materialize(self, name: Optional[str] = None) -> Network:
        """Compose both layers into one logical network."""
        lower_net = self.lower.materialize()
        upper_net = self.upper.materialize()
        attach = self._slot_attachments(upper_net)

        net = Network(name or "two-stage flat-tree")
        lo = self.design.lower.params
        # Lower switches (cores excluded: they *are* upper edges).
        for switch in lower_net.switches():
            if switch.kind != "core":
                net.add_switch(switch, lower_net.ports(switch))
        for switch in upper_net.switches():
            net.add_switch(_lift(switch), upper_net.ports(switch))

        for u, v, data in lower_net.fabric.edges(data=True):
            for _ in range(data["mult"]):
                net.add_cable(*self._resolve_pair(u, v, attach))
        for u, v, data in upper_net.fabric.edges(data=True):
            for _ in range(data["mult"]):
                net.add_cable(_lift(u), _lift(v))

        for server in lower_net.servers():
            host = lower_net.server_switch(server)
            if host.kind == "core":
                pod = lo.server_pod(server)
                host = attach[self.slot_id(host.index, pod)]
            net.add_server(server, host)
        return net

    def _slot_attachments(self, upper_net: Network) -> Dict[int, UpperSwitch]:
        """Where each slot lands under the upper layer's configuration."""
        return {
            slot: _lift(upper_net.server_switch(slot))
            for slot in upper_net.servers()
        }

    def _resolve_pair(
        self,
        u: SwitchId,
        v: SwitchId,
        attach: Dict[int, UpperSwitch],
    ) -> Tuple[SwitchId, SwitchId]:
        """Replace lower-core endpoints with their upper attachments."""
        if u.kind == "core" and v.kind == "core":
            raise TopologyError("lower layer produced a core-core cable")
        if u.kind == "core":
            u, v = v, u
        if v.kind != "core":
            return u, v
        pod = _pod_of_lower(u)
        return u, attach[self.slot_id(v.index, pod)]

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def pod_server_groups(self):
        """Lower-layer Pod groupings (for in-Pod metrics)."""
        return self.lower.pod_server_groups()

    @property
    def num_servers(self) -> int:
        return self.design.lower.params.num_servers


def _pod_of_lower(switch: SwitchId) -> int:
    if isinstance(switch, (EdgeSwitch, AggSwitch)):
        return switch.pod
    raise TopologyError(
        f"cannot infer the lower Pod of {switch!r}"
    )


def build_two_stage_flat_tree(
    k_lower: int,
    k_upper_pods: int = 2,
    lower_mode: Mode = Mode.CLOS,
    upper_mode: Mode = Mode.CLOS,
) -> Network:
    """One-call builder: design, configure both layers, materialize."""
    plant = TwoStageFlatTree(TwoStageDesign.symmetric(k_lower, k_upper_pods))
    plant.set_modes(lower_mode, upper_mode)
    return plant.materialize(
        f"two-stage flat-tree[{lower_mode.value}/{upper_mode.value}]"
    )
