"""Failure injection and topology self-recovery (paper §5, future work).

"Convertibility can play a broader role in network management, e.g.
self-recovery of the topology from failures."  This module makes that
concrete for the flat-tree plant:

* a :class:`FailureSet` marks physical *legs* dead — the cables between
  a converter and its core/aggregation/edge switch or server, the side
  bundle to its peer, plus any direct (non-converter) cable;
* a circuit realized by a converter survives only if both its legs are
  healthy; :func:`materialize_with_failures` produces the degraded
  logical network for any configuration;
* :func:`heal` searches each affected converter's configuration space
  for the assignment that (1) keeps its server attached through healthy
  legs and (2) maximizes the surviving switch-level circuits — the
  self-recovery move a controller would execute.

The healing is per-converter greedy (converters fail independently and
their configuration spaces are tiny), with the side-bundle pairing
handled jointly per pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.core.converter import (
    Converter,
    ConverterConfig,
    ConverterId,
    PAIRED_CONFIGS,
)
from repro.core.flattree import FlatTree
from repro.topology.elements import Network, SwitchId


class Leg(enum.Enum):
    """A converter's physical cables (paper Figure 3)."""

    CORE = "core"
    AGG = "agg"
    EDGE = "edge"
    SERVER = "server"
    SIDE = "side"  # the double side bundle to the peer


@dataclass(frozen=True)
class FailureSet:
    """Dead physical infrastructure.

    ``converter_legs`` maps a converter to its dead legs.  ``cables``
    holds dead direct cables (switch pairs not behind a converter) and
    ``switches`` whole dead switches (all their cables die).
    """

    converter_legs: Dict[ConverterId, FrozenSet[Leg]] = field(
        default_factory=dict
    )
    cables: FrozenSet[frozenset] = frozenset()
    switches: FrozenSet[SwitchId] = frozenset()

    @classmethod
    def of_legs(cls, *failures: Tuple[ConverterId, Leg]) -> "FailureSet":
        legs: Dict[ConverterId, Set[Leg]] = {}
        for cid, leg in failures:
            legs.setdefault(cid, set()).add(leg)
        return cls(
            converter_legs={c: frozenset(s) for c, s in legs.items()}
        )

    def dead_legs(self, cid: ConverterId) -> FrozenSet[Leg]:
        return self.converter_legs.get(cid, frozenset())

    def cable_dead(self, u: SwitchId, v: SwitchId) -> bool:
        if u in self.switches or v in self.switches:
            return True
        return frozenset((u, v)) in self.cables

    def is_empty(self) -> bool:
        return not (self.converter_legs or self.cables or self.switches)

    def validate(self, ft: "FlatTree") -> None:
        """Raise :class:`ConfigurationError` naming any id unknown to ``ft``.

        A failure set referencing a converter or switch the plant does
        not contain would silently degrade *nothing* — every leg/cable
        lookup simply misses — so the entry points that consume failure
        sets (:func:`materialize_with_failures`, :func:`heal`) validate
        first and fail loudly instead.
        """
        for cid in sorted(self.converter_legs):
            if cid not in ft.converters:
                raise ConfigurationError(
                    f"failure set names unknown converter {cid}"
                )
        known = _plant_switches(ft)
        for switch in sorted(self.switches, key=repr):
            if switch not in known:
                raise ConfigurationError(
                    f"failure set names unknown switch {switch!r}"
                )
        for cable in sorted(self.cables, key=repr):
            for switch in sorted(cable, key=repr):
                if switch not in known:
                    raise ConfigurationError(
                        f"failure set names unknown switch {switch!r} "
                        f"in dead cable {tuple(sorted(cable, key=repr))}"
                    )


def _plant_switches(ft: FlatTree) -> Set[SwitchId]:
    """Every switch id the plant contains, for failure-set validation."""
    from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch

    params = ft.design.params
    known: Set[SwitchId] = {
        CoreSwitch(c) for c in range(params.num_cores)
    }
    for pod in range(params.pods):
        for j in range(params.d):
            known.add(EdgeSwitch(pod, j))
        for a in range(params.aggs_per_pod):
            known.add(AggSwitch(pod, a))
    return known


#: Legs used by each circuit of each configuration.  Side circuits use
#: the SIDE leg on both converters; own circuits use two local legs.
_CIRCUITS: Dict[ConverterConfig, List[Tuple[Leg, Leg]]] = {
    ConverterConfig.DEFAULT: [(Leg.AGG, Leg.CORE), (Leg.EDGE, Leg.SERVER)],
    ConverterConfig.LOCAL: [(Leg.AGG, Leg.SERVER), (Leg.CORE, Leg.EDGE)],
    ConverterConfig.SIDE: [(Leg.SERVER, Leg.CORE)],
    ConverterConfig.CROSS: [(Leg.SERVER, Leg.CORE)],
}


def _leg_switch(conv: Converter, leg: Leg) -> SwitchId:
    if leg is Leg.CORE:
        return conv.core
    if leg is Leg.AGG:
        return conv.agg
    if leg is Leg.EDGE:
        return conv.edge
    raise ConfigurationError(f"leg {leg} has no switch endpoint")


def surviving_own_links(
    conv: Converter,
    config: ConverterConfig,
    failures: FailureSet,
) -> List:
    """The converter's own circuits that survive the failure set."""
    dead = failures.dead_legs(conv.cid)
    out = []
    for leg_a, leg_b in _CIRCUITS[config]:
        if leg_a in dead or leg_b in dead:
            continue
        endpoints = []
        alive = True
        for leg in (leg_a, leg_b):
            if leg is Leg.SERVER:
                endpoints.append(("server", conv.server))
            else:
                switch = _leg_switch(conv, leg)
                if switch in failures.switches:
                    alive = False
                endpoints.append(("switch", switch))
        if not alive:
            continue
        (kind_a, a), (kind_b, b) = endpoints
        if kind_a == "server":
            out.append(("attach", a, b))
        elif kind_b == "server":
            out.append(("attach", b, a))
        else:
            out.append(("cable", a, b))
    return out


def surviving_pair_links(
    left: Converter, right: Converter, failures: FailureSet
) -> List:
    """Side-bundle circuits that survive (both SIDE legs must live)."""
    from repro.core.converter import pair_links

    if left.config not in PAIRED_CONFIGS:
        return []
    if Leg.SIDE in failures.dead_legs(left.cid):
        return []
    if Leg.SIDE in failures.dead_legs(right.cid):
        return []
    links = pair_links(left, right)
    return [
        link
        for link in links
        if not (link[1] in failures.switches or link[2] in failures.switches)
    ]


def materialize_with_failures(
    ft: FlatTree, failures: FailureSet, name: Optional[str] = None
) -> Network:
    """The degraded logical network under the current configuration.

    Dead switches are removed from the fabric entirely; dead direct
    cables vanish; converter circuits whose legs died are not realized.
    Servers whose attachment circuit died are left detached — they do
    not appear in the result's server set, which is how callers count
    stranded servers.
    """
    from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch

    failures.validate(ft)
    params = ft.design.params
    net = Network(name or "flat-tree[degraded]")
    for c in range(params.num_cores):
        switch = CoreSwitch(c)
        if switch not in failures.switches:
            net.add_switch(switch, params.core_ports)
    for pod in range(params.pods):
        for j in range(params.d):
            switch = EdgeSwitch(pod, j)
            if switch not in failures.switches:
                net.add_switch(switch, params.edge_ports)
        for a in range(params.aggs_per_pod):
            switch = AggSwitch(pod, a)
            if switch not in failures.switches:
                net.add_switch(switch, params.agg_ports)

    def alive(u: SwitchId, v: SwitchId) -> bool:
        return (
            u not in failures.switches
            and v not in failures.switches
            and not failures.cable_dead(u, v)
        )

    for pod in range(params.pods):
        for j in range(params.d):
            for a in range(params.aggs_per_pod):
                edge, agg = EdgeSwitch(pod, j), AggSwitch(pod, a)
                if alive(edge, agg):
                    net.add_cable(edge, agg)
    for u, v in ft._direct_cables:
        if alive(u, v):
            net.add_cable(u, v)
    for server, switch in ft._direct_attaches:
        if switch not in failures.switches:
            net.add_server(server, switch)

    for conv in ft.converters.values():
        for link in surviving_own_links(conv, conv.config, failures):
            _apply(net, link, failures)
    for left_id, right_id in ft.pairs:
        links = surviving_pair_links(
            ft.converters[left_id], ft.converters[right_id], failures
        )
        for link in links:
            _apply(net, link, failures)
    return net


def _apply(net: Network, link, failures: FailureSet) -> None:
    tag, a, b = link
    if tag == "cable":
        if not failures.cable_dead(a, b):
            net.add_cable(a, b)
    else:
        net.add_server(a, b)


def heal(
    ft: FlatTree, failures: FailureSet
) -> Dict[ConverterId, ConverterConfig]:
    """Choose configurations that best survive ``failures``.

    Returns a full configuration assignment (unchanged converters keep
    their current config).  Per converter the choice maximizes, in
    order: the server staying attached, then the number of surviving
    switch-level circuits, then staying on the current config (avoid
    gratuitous churn).  Side pairs are decided jointly.
    """
    failures.validate(ft)
    assignment = ft.configs()
    decided: Set[ConverterId] = set()

    for left_id, right_id in ft.pairs:
        left, right = ft.converters[left_id], ft.converters[right_id]
        if _affected(left, failures) or _affected(right, failures):
            best = _best_pair_config(left, right, failures)
            assignment[left_id], assignment[right_id] = best
        decided.add(left_id)
        decided.add(right_id)

    for cid, conv in ft.converters.items():
        if cid in decided or not _affected(conv, failures):
            continue
        assignment[cid] = _best_single_config(conv, failures)
    return assignment


def _affected(conv: Converter, failures: FailureSet) -> bool:
    if failures.dead_legs(conv.cid):
        return True
    for switch in (conv.core, conv.agg, conv.edge):
        if switch in failures.switches:
            return True
    return False


def _score_single(
    conv: Converter, config: ConverterConfig, failures: FailureSet
) -> Tuple[int, int, int]:
    links = surviving_own_links(conv, config, failures)
    server_alive = any(link[0] == "attach" for link in links)
    cables = sum(1 for link in links if link[0] == "cable")
    stay = 1 if config is conv.config else 0
    return (1 if server_alive else 0, cables, stay)


def _best_single_config(
    conv: Converter, failures: FailureSet
) -> ConverterConfig:
    candidates = [
        c for c in conv.valid_configs if c not in PAIRED_CONFIGS
    ]
    return max(candidates, key=lambda c: _score_single(conv, c, failures))


def _best_pair_config(
    left: Converter, right: Converter, failures: FailureSet
) -> Tuple[ConverterConfig, ConverterConfig]:
    """Jointly score the pair's options (paired or both unpaired)."""
    options: List[Tuple[ConverterConfig, ConverterConfig]] = []
    for paired in (ConverterConfig.SIDE, ConverterConfig.CROSS):
        options.append((paired, paired))
    for lc in (ConverterConfig.DEFAULT, ConverterConfig.LOCAL):
        for rc in (ConverterConfig.DEFAULT, ConverterConfig.LOCAL):
            options.append((lc, rc))

    def score(option: Tuple[ConverterConfig, ConverterConfig]):
        lc, rc = option
        old_left, old_right = left.config, right.config
        left.config, right.config = lc, rc
        try:
            links = (
                surviving_own_links(left, lc, failures)
                + surviving_own_links(right, rc, failures)
                + surviving_pair_links(left, right, failures)
            )
        finally:
            left.config, right.config = old_left, old_right
        servers_alive = sum(1 for link in links if link[0] == "attach")
        cables = sum(1 for link in links if link[0] == "cable")
        stay = 1 if (lc, rc) == (old_left, old_right) else 0
        return (servers_alive, cables, stay)

    return max(options, key=score)


@dataclass(frozen=True)
class HealOutcome:
    """What :func:`heal_report` decided and what it could not save.

    ``assignment`` is the full post-heal configuration map;
    ``reconfigured`` the converters whose config actually changed;
    ``unrecoverable`` the converters whose server stays detached under
    *every* reachable configuration (e.g. a dead SERVER leg) — these
    must be reported, never asserted on.
    """

    assignment: Dict[ConverterId, ConverterConfig]
    reconfigured: Tuple[ConverterId, ...]
    unrecoverable: Tuple[ConverterId, ...]


def heal_report(
    ft: FlatTree, failures: FailureSet, t: float = 0.0
) -> HealOutcome:
    """Run :func:`heal` and account for what it achieved.

    Emits one ``core.failures.heal`` telemetry event with the counts,
    stamped at simulated time ``t`` (callers in the chaotic execution
    path pass the conversion clock).
    """
    assignment = heal(ft, failures)
    current = ft.configs()
    reconfigured = tuple(
        cid for cid in sorted(assignment)
        if assignment[cid] is not current[cid]
    )
    unrecoverable: List[ConverterId] = []
    for cid in sorted(ft.converters):
        conv = ft.converters[cid]
        if not _affected(conv, failures):
            continue
        links = surviving_own_links(conv, assignment[cid], failures)
        if not any(link[0] == "attach" for link in links):
            unrecoverable.append(cid)
    obs.event(
        "core.failures.heal",
        reconfigured=len(reconfigured),
        unrecoverable=len(unrecoverable),
        t=t,
    )
    obs.incr("core.failures.heals")
    return HealOutcome(
        assignment=assignment,
        reconfigured=reconfigured,
        unrecoverable=tuple(unrecoverable),
    )
