"""repro.chaos — deterministic, seedable fault injection (paper §5).

The paper names self-recovery from failures as the broader role of
convertibility; this package supplies the *adversary*: a
:class:`~repro.chaos.engine.ChaosSchedule` of timed plant faults (legs,
cables, switches dying and recovering) plus command-level faults (a
converter that times out or NACKs a circuit change), all drawn from a
seed so every chaotic run replays bit-for-bit.  The resilient execution
path in :mod:`repro.core.reconfigure` drives a conversion through a
schedule via a :class:`~repro.chaos.engine.ChaosClock`; see
``docs/robustness.md`` for the retry/rollback/heal semantics.
"""

from repro.chaos.engine import (
    ChaosClock,
    ChaosEvent,
    ChaosSchedule,
    CommandFault,
)

__all__ = [
    "ChaosClock",
    "ChaosEvent",
    "ChaosSchedule",
    "CommandFault",
]
