"""The chaos engine: seeded plant faults and command-level faults.

Two fault layers, both fully deterministic for a fixed seed:

* **Plant faults** — a sorted stream of :class:`ChaosEvent` marking a
  converter leg, a direct cable, or a whole switch dead (and possibly
  recovered) at a simulated instant.  :meth:`ChaosSchedule.failures_at`
  folds the stream into the :class:`~repro.core.failures.FailureSet`
  active at any time ``t``, which is exactly the input
  :func:`repro.core.failures.heal` and
  :func:`repro.core.failures.materialize_with_failures` consume.
* **Command faults** — the control channel itself misbehaving: a
  converter command that times out (no ACK within the command timeout)
  or is NACKed outright.  :meth:`ChaosSchedule.command_fault` decides
  per ``(converter, attempt)`` via a stateless seeded hash, so the
  verdict does not depend on call order and replays are exact; tests
  can also script faults explicitly.

The :class:`ChaosClock` is the virtual clock the resilient executor
(:func:`repro.core.reconfigure.execute`) drives batch by batch; chaos
consults it only through the times the executor passes in, so the
engine itself holds no hidden wall-clock state.
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.core.converter import ConverterId
from repro.core.failures import FailureSet, Leg
from repro.core.flattree import FlatTree
from repro.topology.elements import CoreSwitch, SwitchId


class CommandFault(enum.Enum):
    """How a converter command can fail on the control channel."""

    TIMEOUT = "timeout"  # no acknowledgment within the command timeout
    NACK = "nack"        # the converter rejects the circuit change

    @property
    def is_timeout(self) -> bool:
        return self is CommandFault.TIMEOUT


#: :class:`ChaosEvent` actions.
FAIL = "fail"
RECOVER = "recover"
#: :class:`ChaosEvent` kinds.
LEG = "leg"
CABLE = "cable"
SWITCH = "switch"

_ACTIONS = (FAIL, RECOVER)
_KINDS = (LEG, CABLE, SWITCH)


@dataclass(frozen=True)
class ChaosEvent:
    """One timed plant fault or recovery.

    ``target`` depends on ``kind``: ``(converter_id, leg)`` for legs,
    ``(u, v)`` for direct cables, ``(switch,)`` for whole switches.
    """

    t: float
    action: str
    kind: str
    target: Tuple

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ConfigurationError(f"chaos event at negative time {self.t}")
        if self.action not in _ACTIONS:
            raise ConfigurationError(f"unknown chaos action {self.action!r}")
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown chaos kind {self.kind!r}")

    # -- convenience constructors ------------------------------------
    @classmethod
    def leg_fail(cls, t: float, cid: ConverterId, leg: Leg) -> "ChaosEvent":
        return cls(t, FAIL, LEG, (cid, leg))

    @classmethod
    def leg_recover(cls, t: float, cid: ConverterId, leg: Leg) -> "ChaosEvent":
        return cls(t, RECOVER, LEG, (cid, leg))

    @classmethod
    def cable_fail(cls, t: float, u: SwitchId, v: SwitchId) -> "ChaosEvent":
        return cls(t, FAIL, CABLE, (u, v))

    @classmethod
    def cable_recover(cls, t: float, u: SwitchId, v: SwitchId) -> "ChaosEvent":
        return cls(t, RECOVER, CABLE, (u, v))

    @classmethod
    def switch_fail(cls, t: float, switch: SwitchId) -> "ChaosEvent":
        return cls(t, FAIL, SWITCH, (switch,))

    @classmethod
    def switch_recover(cls, t: float, switch: SwitchId) -> "ChaosEvent":
        return cls(t, RECOVER, SWITCH, (switch,))


class ChaosClock:
    """Monotonic virtual clock for chaotic executions.

    The executor owns the arithmetic (it computes batch instants from
    the schedule formula so the clean path is byte-identical to
    :meth:`~repro.core.reconfigure.Schedule.batch_windows`); the clock
    only enforces monotonicity.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError("clock cannot start before t=0")
        self.now = start

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds and return the new instant."""
        if dt < 0:
            raise ConfigurationError(f"clock cannot run backwards ({dt})")
        self.now += dt
        return self.now

    def seek(self, t: float) -> float:
        """Jump to absolute instant ``t`` (must not move backwards)."""
        if t < self.now - 1e-12:
            raise ConfigurationError(
                f"clock cannot seek backwards from {self.now} to {t}"
            )
        self.now = t
        return self.now


def _target_label(event: "ChaosEvent") -> str:
    parts = []
    for part in event.target:
        parts.append(part.name.lower() if isinstance(part, enum.Enum)
                     else str(part))
    return "-".join(parts)


def _audit_recoveries(
    events: Tuple["ChaosEvent", ...],
) -> Tuple["ChaosEvent", ...]:
    """Recoveries targeting a healthy component, audited rather than raised.

    A ``recover`` for a component that never failed (or already
    recovered) is legitimate whenever something else — the remediation
    plane, an operator — repaired the plant before the schedule got
    there.  ``failures_at`` already folds such events as no-ops; this
    pass makes them *visible*, emitting one ``chaos.recover_noop``
    audit event per redundant recovery at schedule-construction time.
    """
    down: Set[Tuple] = set()
    redundant: List["ChaosEvent"] = []
    for event in events:
        key = (event.kind, frozenset(event.target)
               if event.kind == CABLE else event.target)
        if event.action == FAIL:
            down.add(key)
        elif key in down:
            down.discard(key)
        else:
            redundant.append(event)
            obs.event("chaos.recover_noop", component=event.kind,
                      target=_target_label(event), t=event.t)
    return tuple(redundant)


@dataclass(frozen=True)
class ChaosSchedule:
    """A deterministic fault-injection schedule.

    ``events`` is kept sorted by time.  ``command_fault_rate`` is the
    per-attempt probability that a converter command faults (hashed from
    ``seed``, the converter id, and the attempt number — stateless and
    order-independent); ``scripted_faults`` pins exact verdicts for
    specific ``(converter_id, attempt)`` pairs and wins over the random
    draw, which is how tests stage reproducible fault sequences.
    """

    events: Tuple[ChaosEvent, ...] = ()
    command_fault_rate: float = 0.0
    seed: int = 0
    scripted_faults: Mapping[Tuple[ConverterId, int], CommandFault] = field(
        default_factory=dict
    )
    #: Recoveries for components that were healthy when they landed
    #: (never failed, or already recovered).  They are no-ops by
    #: construction — ``failures_at`` folds them silently — but each
    #: is audited with a ``chaos.recover_noop`` event so remediation
    #: racing the chaos schedule is observable, never an error.
    redundant_recoveries: Tuple[ChaosEvent, ...] = field(
        default=(), init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.command_fault_rate <= 1.0:
            raise ConfigurationError(
                f"command fault rate must be in [0, 1], "
                f"got {self.command_fault_rate}"
            )
        ordered = tuple(sorted(self.events, key=lambda e: e.t))
        object.__setattr__(self, "events", ordered)
        object.__setattr__(
            self, "redundant_recoveries", _audit_recoveries(ordered))

    def is_null(self) -> bool:
        """True when this schedule can never inject anything."""
        return (not self.events and self.command_fault_rate == 0.0
                and not self.scripted_faults)

    # -- command faults ----------------------------------------------
    def command_fault(
        self, cid: ConverterId, attempt: int
    ) -> Optional[CommandFault]:
        """The fault (if any) hitting command ``attempt`` to ``cid``.

        Attempts are 1-based.  Scripted verdicts win; otherwise a
        stateless hash draw against ``command_fault_rate`` decides, with
        the low bit picking timeout vs NACK.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempts are 1-based, got {attempt}")
        scripted = self.scripted_faults.get((cid, attempt))
        if scripted is not None:
            return scripted
        if self.command_fault_rate <= 0.0:
            return None
        digest = zlib.crc32(repr((self.seed, cid, attempt)).encode())
        if digest / 0xFFFFFFFF >= self.command_fault_rate:
            return None
        return CommandFault.TIMEOUT if digest & 1 else CommandFault.NACK

    # -- plant faults ------------------------------------------------
    def failures_at(self, t: float) -> FailureSet:
        """Fold every event at or before ``t`` into a failure set."""
        legs: Dict[ConverterId, Set[Leg]] = {}
        cables: Set[frozenset] = set()
        switches: Set[SwitchId] = set()
        for event in self.events:
            if event.t > t:
                break
            if event.kind == LEG:
                cid, leg = event.target
                if event.action == FAIL:
                    legs.setdefault(cid, set()).add(leg)
                else:
                    legs.get(cid, set()).discard(leg)
            elif event.kind == CABLE:
                key = frozenset(event.target)
                if event.action == FAIL:
                    cables.add(key)
                else:
                    cables.discard(key)
            else:
                (switch,) = event.target
                if event.action == FAIL:
                    switches.add(switch)
                else:
                    switches.discard(switch)
        return FailureSet(
            converter_legs={
                cid: frozenset(dead) for cid, dead in legs.items() if dead
            },
            cables=frozenset(cables),
            switches=frozenset(switches),
        )

    def last_event_time(self) -> float:
        return self.events[-1].t if self.events else 0.0

    # -- construction ------------------------------------------------
    @classmethod
    def random(
        cls,
        ft: FlatTree,
        *,
        seed: int = 0,
        duration: float = 1.0,
        leg_fault_rate: float = 0.0,
        cable_fault_rate: float = 0.0,
        switch_fault_rate: float = 0.0,
        recovery_fraction: float = 0.5,
        command_fault_rate: float = 0.0,
    ) -> "ChaosSchedule":
        """Draw a schedule against a concrete plant, deterministically.

        Each converter independently loses one random leg with
        probability ``leg_fault_rate`` at a uniform time in
        ``[0, duration)``; each direct cable dies with probability
        ``cable_fault_rate``; each core switch with
        ``switch_fault_rate`` (only the redundant core layer fails
        whole — edge/agg switch death strands directly-attached servers
        with no recovery move to score).  A ``recovery_fraction`` of
        plant faults recover at a uniform time before ``duration``.
        Iteration orders are sorted, so the same seed always yields the
        same schedule.
        """
        if duration <= 0:
            raise ConfigurationError("chaos duration must be positive")
        for name, rate in (("leg", leg_fault_rate),
                           ("cable", cable_fault_rate),
                           ("switch", switch_fault_rate),
                           ("recovery", recovery_fraction)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} rate must be in [0, 1], got {rate}"
                )
        rng = random.Random(seed)
        events: List[ChaosEvent] = []

        def maybe_recover(t: float,
                          make: Callable[[float], ChaosEvent]) -> None:
            if rng.random() < recovery_fraction:
                events.append(make(rng.uniform(t, duration)))

        for cid in sorted(ft.converters):
            if rng.random() >= leg_fault_rate:
                continue
            leg = rng.choice(list(Leg))
            t = rng.uniform(0.0, duration)
            events.append(ChaosEvent.leg_fail(t, cid, leg))
            maybe_recover(t, lambda rt, c=cid, l=leg:
                          ChaosEvent.leg_recover(rt, c, l))
        for u, v in ft._direct_cables:
            if rng.random() >= cable_fault_rate:
                continue
            t = rng.uniform(0.0, duration)
            events.append(ChaosEvent.cable_fail(t, u, v))
            maybe_recover(t, lambda rt, a=u, b=v:
                          ChaosEvent.cable_recover(rt, a, b))
        for c in range(ft.params.num_cores):
            if rng.random() >= switch_fault_rate:
                continue
            switch = CoreSwitch(c)
            t = rng.uniform(0.0, duration)
            events.append(ChaosEvent.switch_fail(t, switch))
            maybe_recover(t, lambda rt, s=switch:
                          ChaosEvent.switch_recover(rt, s))
        return cls(
            events=tuple(events),
            command_fault_rate=command_fault_rate,
            seed=seed,
        )

    def describe(self) -> str:
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        plant = (", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
                 or "no plant faults")
        return (
            f"chaos(seed {self.seed}: {plant}, "
            f"command fault rate {self.command_fault_rate:g})"
        )
