"""Compiled two-level forwarding tables (Al-Fares et al. 2008, §2.6).

:mod:`repro.routing.twolevel` computes two-level paths analytically;
this module compiles the equivalent **per-switch tables** — primary
prefix entries with secondary suffix entries — the way the original
fat-tree paper programs its switches.  Compiled tables let tests assert
hardware-relevant properties (table sizes, no blackholes) and let the
lookup path be walked hop by hop like a real data plane.

Addressing follows the dense server-id scheme: a server's address is
the triple ``(pod, edge, slot)``.

Table semantics per switch kind:

* **edge(p, j)** — prefix: destination on this switch -> deliver;
  suffix: slot s -> aggregation switch ``s mod (d/r)``.
* **agg(p, a)** — prefix: destination in this Pod -> down to its edge;
  suffix: slot s (+ second digit for r > 1) -> one of the agg's cores.
* **core(c)** — prefix: destination Pod p -> the Pod's aggregation
  switch attached to this core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.routing.base import Path
from repro.topology.clos import ClosParams
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
    SwitchId,
)


@dataclass(frozen=True)
class Address:
    """A server's two-level routing address."""

    pod: int
    edge: int
    slot: int

    @classmethod
    def of(cls, params: ClosParams, server: int) -> "Address":
        return cls(
            pod=params.server_pod(server),
            edge=params.server_edge(server),
            slot=params.server_slot(server),
        )


@dataclass
class SwitchTable:
    """One switch's two-level table.

    ``prefixes`` maps an exact (pod, edge) prefix — or (pod, None) at
    cores — to a next hop (None = deliver locally).  ``suffixes`` maps a
    suffix class (an integer) to a next hop and applies when no prefix
    matches.
    """

    switch: SwitchId
    prefixes: Dict[Tuple[int, Optional[int]], Optional[SwitchId]] = field(
        default_factory=dict
    )
    suffixes: Dict[int, SwitchId] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.prefixes) + len(self.suffixes)

    def lookup(self, params: ClosParams, dst: Address) -> Optional[SwitchId]:
        """Next hop for ``dst`` (None = the destination edge is here)."""
        exact = self.prefixes.get((dst.pod, dst.edge))
        if (dst.pod, dst.edge) in self.prefixes:
            return exact
        if (dst.pod, None) in self.prefixes:
            return self.prefixes[(dst.pod, None)]
        key = _suffix_class(params, self.switch, dst)
        try:
            return self.suffixes[key]
        except KeyError:
            raise RoutingError(
                f"table blackhole at {self.switch!r} for {dst}"
            ) from None


def _suffix_class(params: ClosParams, switch: SwitchId, dst: Address) -> int:
    if switch.kind == "edge":
        return dst.slot % params.aggs_per_pod
    # Aggregation switches pick the core: group member by destination
    # edge, and (for r > 1) the group by a second suffix digit.
    group_offset = (dst.slot // params.aggs_per_pod) % params.r
    return group_offset * params.group_size + dst.edge % params.group_size


@dataclass
class TwoLevelTables:
    """All compiled tables of one Clos network."""

    params: ClosParams
    tables: Dict[SwitchId, SwitchTable] = field(default_factory=dict)

    def table(self, switch: SwitchId) -> SwitchTable:
        try:
            return self.tables[switch]
        except KeyError:
            raise RoutingError(f"no table for {switch!r}") from None

    def total_entries(self) -> int:
        return sum(t.size for t in self.tables.values())

    def max_table_size(self) -> int:
        return max(t.size for t in self.tables.values())

    def route(self, src_server: int, dst_server: int) -> Path:
        """Walk the tables from source edge to destination edge."""
        if src_server == dst_server:
            raise RoutingError("source and destination coincide")
        src = Address.of(self.params, src_server)
        dst = Address.of(self.params, dst_server)
        here: SwitchId = EdgeSwitch(src.pod, src.edge)
        nodes: List[SwitchId] = [here]
        for _hop in range(6):  # two-level paths have <= 4 switch hops
            nxt = self.table(here).lookup(self.params, dst)
            if nxt is None:
                return Path(tuple(nodes))
            nodes.append(nxt)
            here = nxt
        raise RoutingError(
            f"two-level walk did not converge: {nodes}"
        )

    def validate_on(self, net: Network) -> None:
        """Every next hop must be a fabric neighbor of its switch."""
        for switch, table in self.tables.items():
            hops = list(table.prefixes.values()) + list(
                table.suffixes.values()
            )
            for nxt in hops:
                if nxt is not None and not net.fabric.has_edge(switch, nxt):
                    raise RoutingError(
                        f"table at {switch!r} points over missing link "
                        f"to {nxt!r}"
                    )


def compile_two_level_tables(params: ClosParams) -> TwoLevelTables:
    """Compile the full table set for a Clos layout."""
    tables = TwoLevelTables(params=params)
    for pod in range(params.pods):
        for j in range(params.d):
            tables.tables[EdgeSwitch(pod, j)] = _edge_table(params, pod, j)
        for a in range(params.aggs_per_pod):
            tables.tables[AggSwitch(pod, a)] = _agg_table(params, pod, a)
    for c in range(params.num_cores):
        tables.tables[CoreSwitch(c)] = _core_table(params, c)
    return tables


def _edge_table(params: ClosParams, pod: int, j: int) -> SwitchTable:
    table = SwitchTable(switch=EdgeSwitch(pod, j))
    table.prefixes[(pod, j)] = None  # deliver
    for suffix in range(params.aggs_per_pod):
        table.suffixes[suffix] = AggSwitch(pod, suffix)
    return table


def _agg_table(params: ClosParams, pod: int, a: int) -> SwitchTable:
    table = SwitchTable(switch=AggSwitch(pod, a))
    for j in range(params.d):
        table.prefixes[(pod, j)] = EdgeSwitch(pod, j)
    for offset in range(params.r):
        group = a * params.r + offset
        for member in range(params.group_size):
            key = offset * params.group_size + member
            table.suffixes[key] = CoreSwitch(
                group * params.group_size + member
            )
    return table


def _core_table(params: ClosParams, c: int) -> SwitchTable:
    table = SwitchTable(switch=CoreSwitch(c))
    group = c // params.group_size
    agg = group // params.r
    for pod in range(params.pods):
        table.prefixes[(pod, None)] = AggSwitch(pod, agg)
    return table
