"""Pre-computed SDN path programs (paper §2.6).

"Because flat-tree maintains structures when approximating random
graphs, instead of learning routes, it is possible to have prior
knowledge of the shortest paths and program the routing decisions via
SDN."  This module compiles a :class:`~repro.routing.base.RoutingTable`
into per-switch flow rules — match on (destination switch, path id) and
forward to a next hop — and can walk the rules to prove the program is
blackhole- and loop-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import RoutingError
from repro.routing.base import Path, RoutingTable
from repro.topology.elements import Network, SwitchId

#: A rule key: (source switch, destination switch, path id).  Source
#: routing keeps the rules of different pairs from colliding at shared
#: switches (distinct sources may legitimately use different paths to the
#: same destination).
RuleKey = Tuple[SwitchId, SwitchId, int]


@dataclass
class SdnProgram:
    """Compiled flow rules, indexed by switch."""

    name: str = "sdn"
    rules: Dict[SwitchId, Dict[RuleKey, SwitchId]] = field(default_factory=dict)

    @classmethod
    def compile(cls, table: RoutingTable) -> "SdnProgram":
        """Compile every path of a routing table into hop-by-hop rules.

        Paths of the same (src, dst) pair get distinct path ids, so
        multipath sets survive compilation.  A conflicting rule (same
        switch, same key, different next hop) would mean one path id of
        one pair visits a switch twice — impossible for loop-free paths —
        so a conflict raises.
        """
        program = cls(name=f"sdn[{table.name}]")
        for src, dst in table.pairs():
            for path_id, path in enumerate(table.paths(src, dst)):
                program._install(path, path_id)
        return program

    def _install(self, path: Path, path_id: int) -> None:
        key = (path.src, path.dst, path_id)
        for here, nxt in path.edges():
            switch_rules = self.rules.setdefault(here, {})
            existing = switch_rules.get(key)
            if existing is not None and existing != nxt:
                raise RoutingError(
                    f"rule conflict at {here!r} for {key}: "
                    f"{existing!r} vs {nxt!r}"
                )
            switch_rules[key] = nxt

    def forward(
        self, src: SwitchId, dst: SwitchId, path_id: int = 0
    ) -> Path:
        """Walk the rules from ``src`` toward ``dst``; prove delivery.

        Raises on blackholes (no matching rule) and loops (a switch
        visited twice), which is how tests certify a compiled program.
        """
        nodes = [src]
        seen = {src}
        here = src
        while here != dst:
            try:
                here = self.rules[here][(src, dst, path_id)]
            except KeyError:
                raise RoutingError(
                    f"blackhole at {nodes[-1]!r} toward {dst!r} "
                    f"(path {path_id})"
                ) from None
            if here in seen:
                raise RoutingError(
                    f"forwarding loop at {here!r} toward {dst!r}"
                )
            seen.add(here)
            nodes.append(here)
        return Path(tuple(nodes))

    def rule_count(self) -> int:
        """Total flow rules installed (control-plane cost metric)."""
        return sum(len(r) for r in self.rules.values())

    def rules_at(self, switch: SwitchId) -> int:
        """Rules installed on one switch (table-size metric)."""
        return len(self.rules.get(switch, {}))

    def validate_on(self, net: Network) -> None:
        """Every rule's next hop must be a fabric neighbor."""
        for here, switch_rules in self.rules.items():
            for key, nxt in switch_rules.items():
                if not net.fabric.has_edge(here, nxt):
                    raise RoutingError(
                        f"rule at {here!r} -> {nxt!r} uses a missing link"
                    )
