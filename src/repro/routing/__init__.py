"""Routing schemes: ECMP, k-shortest paths, two-level, SDN programs."""

from repro.routing.base import Path, RoutingTable
from repro.routing.ecmp import build_ecmp_table, ecmp_fanout, ecmp_paths
from repro.routing.ksp import (
    DEFAULT_K,
    build_ksp_table,
    k_shortest_paths,
    path_stretch,
)
from repro.routing.optimal import (
    OptimalRoutes,
    WeightedPaths,
    compile_optimal_routes,
)
from repro.routing.sdn import SdnProgram
from repro.routing.twolevel import two_level_hops, two_level_route
from repro.routing.twolevel_tables import (
    Address,
    TwoLevelTables,
    compile_two_level_tables,
)

__all__ = [
    "Address",
    "DEFAULT_K",
    "OptimalRoutes",
    "Path",
    "TwoLevelTables",
    "compile_two_level_tables",
    "RoutingTable",
    "SdnProgram",
    "WeightedPaths",
    "build_ecmp_table",
    "compile_optimal_routes",
    "build_ksp_table",
    "ecmp_fanout",
    "ecmp_paths",
    "k_shortest_paths",
    "path_stretch",
    "two_level_hops",
    "two_level_route",
]
