"""Two-level fat-tree routing (Al-Fares et al. 2008; paper §2.6).

Clos-mode routing without per-flow state: the upward half of a path is
picked deterministically from the *destination address suffix* (server
slot / edge index), and the downward half follows unique prefixes.  The
result spreads flows over the redundant Clos paths while keeping every
switch's table two-level (prefix + suffix).

Routes are computed from the dense server-id scheme of
:class:`~repro.topology.clos.ClosParams`, then validated against the
actual fabric, so they only succeed on Clos-mode topologies — asking for
a two-level route on a converted flat-tree raises
:class:`~repro.errors.RoutingError`, which is exactly the control-plane
behavior one wants (the controller must switch routing schemes when it
switches modes).
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.routing.base import Path
from repro.topology.clos import ClosParams
from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch, Network


def two_level_route(
    params: ClosParams, net: Network, src_server: int, dst_server: int
) -> Path:
    """The deterministic two-level path between two servers' switches.

    The path is validated edge-by-edge on ``net``.
    """
    if src_server == dst_server:
        raise RoutingError("source and destination server coincide")
    src_pod, src_edge = params.server_pod(src_server), params.server_edge(src_server)
    dst_pod, dst_edge = params.server_pod(dst_server), params.server_edge(dst_server)
    dst_slot = params.server_slot(dst_server)

    src_sw = EdgeSwitch(src_pod, src_edge)
    dst_sw = EdgeSwitch(dst_pod, dst_edge)
    if src_sw == dst_sw:
        path = Path((src_sw,))
    elif src_pod == dst_pod:
        agg = AggSwitch(src_pod, dst_slot % params.aggs_per_pod)
        path = Path((src_sw, agg, dst_sw))
    else:
        # Upward choices by destination suffix; downward is forced.
        agg_index = dst_slot % params.aggs_per_pod
        up_agg = AggSwitch(src_pod, agg_index)
        # The aggregation switch owns r edge groups; pick the group by a
        # second suffix digit and the member by the destination edge.
        group = agg_index * params.r + (dst_slot // params.aggs_per_pod) % params.r
        position = dst_edge % params.group_size
        core = CoreSwitch(group * params.group_size + position)
        down_agg = AggSwitch(dst_pod, group // params.r)
        path = Path((src_sw, up_agg, core, down_agg, dst_sw))
    path.validate_on(net)
    return path


def two_level_hops(params: ClosParams, src_server: int, dst_server: int) -> int:
    """Server-to-server hop count under two-level routing.

    2 for same-switch pairs, 4 within a Pod, 6 across Pods (the classic
    fat-tree distances, including the two server links).
    """
    if src_server == dst_server:
        raise RoutingError("source and destination server coincide")
    if (
        params.server_pod(src_server) == params.server_pod(dst_server)
        and params.server_edge(src_server) == params.server_edge(dst_server)
    ):
        return 2
    if params.server_pod(src_server) == params.server_pod(dst_server):
        return 4
    return 6
