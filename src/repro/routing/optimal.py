"""Optimal-routing compilation: LP solutions as installable routes.

Paper §2.6: "it is possible to have prior knowledge of the shortest
paths and program the routing decisions via SDN."  This module goes one
step further and programs the *throughput-optimal* decisions: it solves
the max concurrent flow LP for a workload, decomposes the optimal edge
flows into paths, and emits weighted path sets per switch pair — ready
to install as an :class:`~repro.routing.sdn.SdnProgram` or to drive the
fluid simulator with provably-optimal splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import RoutingError
from repro.mcf.commodities import Commodity, build_flow_problem
from repro.mcf.decompose import PathFlow, decompose_solution
from repro.mcf.exact import solve_concurrent_exact
from repro.routing.base import Path, RoutingTable
from repro.routing.sdn import SdnProgram
from repro.topology.elements import Network, SwitchId


@dataclass
class WeightedPaths:
    """A pair's optimal path set with flow-proportional weights."""

    src: SwitchId
    dst: SwitchId
    paths: List[Path] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)

    def normalized_weights(self) -> List[float]:
        total = sum(self.weights)
        if total <= 0:
            raise RoutingError(
                f"no positive flow for pair {self.src!r} -> {self.dst!r}"
            )
        return [w / total for w in self.weights]


@dataclass
class OptimalRoutes:
    """Output of :func:`compile_optimal_routes`."""

    throughput: float
    pairs: Dict[Tuple[SwitchId, SwitchId], WeightedPaths] = field(
        default_factory=dict
    )

    def paths_for(self, src: SwitchId, dst: SwitchId) -> WeightedPaths:
        try:
            return self.pairs[(src, dst)]
        except KeyError:
            raise RoutingError(
                f"no optimal routes for {src!r} -> {dst!r}"
            ) from None

    def as_routing_table(self, name: str = "optimal") -> RoutingTable:
        table = RoutingTable(name=name)
        for weighted in self.pairs.values():
            table.add(weighted.paths)
        return table

    def as_sdn_program(self) -> SdnProgram:
        return SdnProgram.compile(self.as_routing_table())

    def max_paths_per_pair(self) -> int:
        if not self.pairs:
            return 0
        return max(len(w.paths) for w in self.pairs.values())


def compile_optimal_routes(
    net: Network, workload: Iterable[Commodity]
) -> OptimalRoutes:
    """Solve, decompose, and compile the optimal routing for a workload.

    The result's path weights reproduce the LP's traffic split; paths
    carrying less than 0.1% of a pair's flow are pruned (LP vertices
    often contain dust-level splits that no data plane would install).
    """
    problem = build_flow_problem(net, workload)
    solution = solve_concurrent_exact(problem, return_flows=True)
    index_to_switch = {i: s for s, i in problem.index_of.items()}

    routes = OptimalRoutes(throughput=solution.throughput)
    for flow_path in decompose_solution(problem, solution.flows):
        _add_path(routes, index_to_switch, flow_path)
    for weighted in routes.pairs.values():
        _prune_dust(weighted)
    return routes


def _add_path(
    routes: OptimalRoutes,
    index_to_switch: Dict[int, SwitchId],
    flow_path: PathFlow,
) -> None:
    nodes = tuple(index_to_switch[i] for i in flow_path.nodes)
    key = (nodes[0], nodes[-1])
    weighted = routes.pairs.setdefault(
        key, WeightedPaths(src=nodes[0], dst=nodes[-1])
    )
    path = Path(nodes)
    if path in weighted.paths:
        weighted.weights[weighted.paths.index(path)] += flow_path.amount
    else:
        weighted.paths.append(path)
        weighted.weights.append(flow_path.amount)


def _prune_dust(weighted: WeightedPaths, threshold: float = 1e-3) -> None:
    total = sum(weighted.weights)
    if total <= 0:
        return
    kept = [
        (p, w)
        for p, w in zip(weighted.paths, weighted.weights)
        if w / total >= threshold
    ]
    if kept:
        weighted.paths = [p for p, _w in kept]
        weighted.weights = [w for _p, w in kept]
