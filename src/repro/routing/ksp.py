"""k-shortest-paths routing (paper §2.6, following Jellyfish).

"We use k shortest paths routing for approximated random graphs [23]."
Jellyfish showed that 8-shortest-paths routing captures most of a random
graph's capacity; 8 is therefore the default ``k`` here.

Enumeration uses Yen's algorithm via
:func:`networkx.shortest_simple_paths` (loop-free, ascending length).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, List, Tuple

import networkx as nx

from repro import obs
from repro.errors import RoutingError
from repro.routing.base import Path, RoutingTable
from repro.topology.elements import Network, SwitchId

#: Jellyfish's recommended path count.
DEFAULT_K = 8


def k_shortest_paths(
    net: Network, src: SwitchId, dst: SwitchId, k: int = DEFAULT_K
) -> List[Path]:
    """The ``k`` shortest loop-free paths between two switches."""
    if k < 1:
        raise RoutingError(f"k must be positive, got {k}")
    if src == dst:
        return [Path((src,))]
    try:
        with obs.timer("routing.ksp.compute_s"):
            raw = list(islice(
                nx.shortest_simple_paths(net.fabric, src, dst), k
            ))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise RoutingError(f"no path from {src!r} to {dst!r}") from None
    obs.incr("routing.ksp.pairs")
    obs.incr("routing.ksp.paths", len(raw))
    return [Path(tuple(nodes)) for nodes in raw]


def build_ksp_table(
    net: Network,
    pairs: Iterable[Tuple[SwitchId, SwitchId]],
    k: int = DEFAULT_K,
) -> RoutingTable:
    """KSP routing table for the given switch pairs.

    Duplicate (src, dst) pairs in the input are served from a per-build
    memo instead of re-running Yen's algorithm; the hit count surfaces
    as ``routing.ksp.memo_hits``.
    """
    table = RoutingTable(name=f"ksp{k}[{net.name}]")
    memo: dict = {}
    pair_list = list(pairs)
    progress = obs.ProgressTracker("routing.build_ksp_table",
                                   total=len(pair_list))
    with obs.span("build_ksp_table", k=k, net=net.name):
        for src, dst in pair_list:
            if src == dst:
                progress.advance()
                continue
            if (src, dst) in memo:
                obs.incr("routing.ksp.memo_hits")
                paths = memo[(src, dst)]
            else:
                paths = k_shortest_paths(net, src, dst, k=k)
                memo[(src, dst)] = paths
            table.add(paths)
            progress.advance()
        progress.finish()
    return table


def path_stretch(paths: List[Path]) -> float:
    """Longest/shortest hop ratio within a path set (diversity metric)."""
    if not paths:
        raise RoutingError("empty path set")
    hop_counts = [p.hops for p in paths]
    shortest = min(hop_counts)
    if shortest == 0:
        return 1.0
    return max(hop_counts) / shortest
