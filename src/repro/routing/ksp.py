"""k-shortest-paths routing (paper §2.6, following Jellyfish).

"We use k shortest paths routing for approximated random graphs [23]."
Jellyfish showed that 8-shortest-paths routing captures most of a random
graph's capacity; 8 is therefore the default ``k`` here.

Enumeration uses Yen's algorithm via
:func:`networkx.shortest_simple_paths` (loop-free, ascending length).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, List, Tuple

import networkx as nx

from repro.errors import RoutingError
from repro.routing.base import Path, RoutingTable
from repro.topology.elements import Network, SwitchId

#: Jellyfish's recommended path count.
DEFAULT_K = 8


def k_shortest_paths(
    net: Network, src: SwitchId, dst: SwitchId, k: int = DEFAULT_K
) -> List[Path]:
    """The ``k`` shortest loop-free paths between two switches."""
    if k < 1:
        raise RoutingError(f"k must be positive, got {k}")
    if src == dst:
        return [Path((src,))]
    try:
        raw = list(islice(nx.shortest_simple_paths(net.fabric, src, dst), k))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise RoutingError(f"no path from {src!r} to {dst!r}") from None
    return [Path(tuple(nodes)) for nodes in raw]


def build_ksp_table(
    net: Network,
    pairs: Iterable[Tuple[SwitchId, SwitchId]],
    k: int = DEFAULT_K,
) -> RoutingTable:
    """KSP routing table for the given switch pairs."""
    table = RoutingTable(name=f"ksp{k}[{net.name}]")
    for src, dst in pairs:
        if src == dst:
            continue
        table.add(k_shortest_paths(net, src, dst, k=k))
    return table


def path_stretch(paths: List[Path]) -> float:
    """Longest/shortest hop ratio within a path set (diversity metric)."""
    if not paths:
        raise RoutingError("empty path set")
    hop_counts = [p.hops for p in paths]
    shortest = min(hop_counts)
    if shortest == 0:
        return 1.0
    return max(hop_counts) / shortest
