"""Routing abstractions: paths, path sets, routing tables.

The control plane (paper §2.6) "adopt[s] the suggested routing schemes
for each network topology": ECMP / two-level routing for Clos, k-shortest
paths for the approximated random graphs, optionally compiled to
pre-computed SDN rules.  This module defines the shared vocabulary.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import RoutingError
from repro.topology.elements import Network, SwitchId


@dataclass(frozen=True)
class Path:
    """A switch-level path (sequence of adjacent switches)."""

    nodes: Tuple[SwitchId, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise RoutingError("a path needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise RoutingError(f"path revisits a switch: {self.nodes}")

    @property
    def src(self) -> SwitchId:
        return self.nodes[0]

    @property
    def dst(self) -> SwitchId:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        """Switch-to-switch hop count (0 for a single-switch path)."""
        return len(self.nodes) - 1

    def edges(self) -> List[Tuple[SwitchId, SwitchId]]:
        return list(zip(self.nodes, self.nodes[1:]))

    def validate_on(self, net: Network) -> None:
        """Raise unless every edge of the path exists in the fabric."""
        for u, v in self.edges():
            if not net.fabric.has_edge(u, v):
                raise RoutingError(
                    f"path uses non-existent link {u!r} - {v!r}"
                )


@dataclass
class RoutingTable:
    """Multipath routes per (source switch, destination switch) pair.

    Path selection hashes a flow key over the available paths, which
    models ECMP/KSP per-flow load balancing without per-packet state.
    """

    name: str = "routes"
    _paths: Dict[Tuple[SwitchId, SwitchId], List[Path]] = field(
        default_factory=dict
    )

    def add(self, paths: Iterable[Path]) -> None:
        for path in paths:
            if path.hops == 0:
                continue
            key = (path.src, path.dst)
            self._paths.setdefault(key, []).append(path)

    def paths(self, src: SwitchId, dst: SwitchId) -> List[Path]:
        if src == dst:
            return [Path((src,))]
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise RoutingError(
                f"no route from {src!r} to {dst!r} in table {self.name!r}"
            ) from None

    def has_route(self, src: SwitchId, dst: SwitchId) -> bool:
        return src == dst or (src, dst) in self._paths

    def select(self, src: SwitchId, dst: SwitchId, flow_key: object) -> Path:
        """Deterministic hash-based pick among the pair's paths."""
        options = self.paths(src, dst)
        digest = zlib.crc32(repr((src, dst, flow_key)).encode())
        return options[digest % len(options)]

    def pairs(self) -> List[Tuple[SwitchId, SwitchId]]:
        return list(self._paths)

    def validate_on(self, net: Network) -> None:
        """Check every stored path against the fabric."""
        for paths in self._paths.values():
            for path in paths:
                path.validate_on(net)

    def __len__(self) -> int:
        return sum(len(v) for v in self._paths.values())
