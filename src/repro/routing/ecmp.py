"""ECMP routing: all equal-cost shortest paths (paper §2.6, RFC 2992).

The suggested Clos-mode routing.  Path enumeration walks the BFS
distance-layered DAG, which is exact and avoids the combinatorial
explosion of generic simple-path search.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro import obs
from repro.errors import RoutingError
from repro.routing.base import Path, RoutingTable
from repro.topology.elements import Network, SwitchId


def ecmp_paths(
    net: Network,
    src: SwitchId,
    dst: SwitchId,
    limit: Optional[int] = None,
) -> List[Path]:
    """All shortest paths between two switches (up to ``limit``)."""
    if src == dst:
        return [Path((src,))]
    try:
        with obs.timer("routing.ecmp.compute_s"):
            gen = nx.all_shortest_paths(net.fabric, src, dst)
            raw = list(islice(gen, limit)) if limit else list(gen)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise RoutingError(f"no path from {src!r} to {dst!r}") from None
    obs.incr("routing.ecmp.pairs")
    obs.incr("routing.ecmp.paths", len(raw))
    return [Path(tuple(nodes)) for nodes in raw]


def build_ecmp_table(
    net: Network,
    pairs: Iterable[Tuple[SwitchId, SwitchId]],
    limit: Optional[int] = 16,
) -> RoutingTable:
    """ECMP routing table for the given switch pairs.

    ``limit`` caps the equal-cost paths kept per pair (hardware ECMP
    group sizes are bounded in practice; 16 is a common default).
    """
    table = RoutingTable(name=f"ecmp[{net.name}]")
    memo: dict = {}
    with obs.span("build_ecmp_table", net=net.name):
        for src, dst in pairs:
            if src == dst:
                continue
            if (src, dst) in memo:
                obs.incr("routing.ecmp.memo_hits")
                paths = memo[(src, dst)]
            else:
                paths = ecmp_paths(net, src, dst, limit=limit)
                memo[(src, dst)] = paths
            table.add(paths)
    return table


def ecmp_fanout(net: Network, src: SwitchId, dst: SwitchId) -> int:
    """Number of distinct equal-cost shortest paths (no cap).

    Computed by dynamic programming over the BFS layers instead of
    enumeration, so it stays cheap even when the count is huge (used to
    verify the Clos mode's "rich equal-cost redundant links", §1).
    """
    if src == dst:
        return 1
    dist = nx.single_source_shortest_path_length(net.fabric, src)
    if dst not in dist:
        raise RoutingError(f"no path from {src!r} to {dst!r}")
    counts: Dict[SwitchId, int] = {src: 1}
    order = sorted(dist, key=dist.get)
    for node in order:
        if node == src:
            continue
        total = 0
        for nbr in net.fabric[node]:
            if dist.get(nbr, -1) == dist[node] - 1:
                total += counts.get(nbr, 0)
        counts[node] = total
    return counts[dst]
