"""Declarative remediation policy: which alert triggers which repair.

A :class:`RemediationPolicy` is the closed loop's rulebook: for each
health-plane alert rule (by name), one :class:`ActionRule` names the
repair **action** the engine should drive and the anti-flap envelope
around it (per-action cooldown with exponential escalation, plus the
policy-wide hysteresis window, action-budget token bucket, and flap
quarantine thresholds the guards in :mod:`repro.selfheal.guard`
enforce).

Actions are a closed vocabulary, matched to the repair machinery the
library already has:

==================  ====================================================
``reconvert``       per-zone re-conversion through the resilient
                    executor (:meth:`Controller.execute_mode`) — the
                    paper's answer to a sustained hotspot: dissolve it
                    into a random-graph mode
``heal``            degraded-route repair via
                    :func:`repro.core.failures.heal` (converters
                    re-programmed around dead legs/cables/switches)
``quarantine``      pause the conversion plane after a retry storm:
                    the engine holds further reconvert/heal actions
                    for an escalating window
``backoff``         soften the loop after a blown downtime budget:
                    one fixed global hold, no escalation
==================  ====================================================

Alerts with no mapped action are observed but never acted on — the
loop's default posture is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.health.rules import AlertRule

ACTION_RECONVERT = "reconvert"
ACTION_HEAL = "heal"
ACTION_QUARANTINE = "quarantine"
ACTION_BACKOFF = "backoff"

#: Every action kind the engine knows how to drive.
ACTIONS: Tuple[str, ...] = (
    ACTION_RECONVERT, ACTION_HEAL, ACTION_QUARANTINE, ACTION_BACKOFF,
)

#: Actions that touch the plant (and are therefore gated by a global
#: remediation hold); ``quarantine``/``backoff`` only *install* holds.
PLANT_ACTIONS: Tuple[str, ...] = (ACTION_RECONVERT, ACTION_HEAL)


@dataclass(frozen=True)
class ActionRule:
    """One alert-to-action mapping with its cooldown envelope.

    ``cooldown_s`` arms after every attempt (success or failure) and
    escalates by ``backoff_factor`` per consecutive attempt, capped at
    ``max_cooldown_s`` — a repair that keeps being needed is a repair
    that is not working, and hammering the plant faster will not fix
    it.  ``mode`` is the target conversion mode for ``reconvert``
    actions (a :class:`repro.core.conversion.Mode` value string).
    """

    alert: str
    action: str
    cooldown_s: float = 1.0
    backoff_factor: float = 2.0
    max_cooldown_s: float = 30.0
    mode: str = "global-random"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.alert:
            raise ReproError("action rule needs an alert name")
        if self.action not in ACTIONS:
            raise ReproError(
                f"unknown remediation action {self.action!r} "
                f"(known: {', '.join(ACTIONS)})")
        if self.cooldown_s < 0:
            raise ReproError(f"cooldown must be >= 0, got {self.cooldown_s}")
        if self.backoff_factor < 1.0:
            raise ReproError("backoff_factor must be >= 1")
        if self.max_cooldown_s < self.cooldown_s:
            raise ReproError("max_cooldown_s must be >= cooldown_s")


@dataclass(frozen=True)
class RemediationPolicy:
    """The loop's full rulebook plus its policy-wide guard knobs.

    ``hysteresis_s`` is the observation window between an alert firing
    and the engine's first action on it — a breach that clears within
    it never triggers a repair.  ``budget_capacity`` /
    ``budget_refill_per_s`` parameterize the global action-budget
    token bucket; ``flap_oscillations`` firings of one alert within
    ``flap_window_s`` trace seconds escalate that alert to quarantine
    for ``quarantine_s`` (doubling per strike).
    """

    rules: Tuple[ActionRule, ...] = ()
    hysteresis_s: float = 0.25
    budget_capacity: int = 8
    budget_refill_per_s: float = 0.5
    flap_oscillations: int = 3
    flap_window_s: float = 5.0
    quarantine_s: float = 10.0
    _by_alert: Dict[str, ActionRule] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.hysteresis_s < 0:
            raise ReproError("hysteresis_s must be >= 0")
        if self.budget_capacity < 1:
            raise ReproError("budget_capacity must be >= 1")
        if self.budget_refill_per_s < 0:
            raise ReproError("budget_refill_per_s must be >= 0")
        if self.flap_oscillations < 2:
            raise ReproError("flap_oscillations must be >= 2")
        if self.flap_window_s <= 0 or self.quarantine_s <= 0:
            raise ReproError("flap/quarantine windows must be positive")
        alerts = [r.alert for r in self.rules]
        if len(set(alerts)) != len(alerts):
            raise ReproError("one action rule per alert "
                             "(duplicate alert mapping)")
        self._by_alert.update({r.alert: r for r in self.rules})

    def for_alert(self, alert: str) -> Optional[ActionRule]:
        """The action mapped to one alert rule name (None = unmapped)."""
        return self._by_alert.get(alert)

    def describe(self) -> str:
        mapped = ", ".join(f"{r.alert}->{r.action}" for r in self.rules)
        return (f"policy({mapped or 'no mappings'}; "
                f"budget {self.budget_capacity} @ "
                f"{self.budget_refill_per_s:g}/s)")


def default_policy() -> RemediationPolicy:
    """The shipped policy catalog (documented in ``docs/robustness.md``).

    Mirrors the default alert catalog of :mod:`repro.health.rules`
    plus the loop's own ``link_failure`` rule (:func:`selfheal_rules`):
    hotspots and imbalance dissolve into a random-graph conversion,
    fabric failures heal around dead components, a retry storm
    quarantines the conversion plane, and a blown downtime budget
    backs the whole loop off.
    """
    return RemediationPolicy(rules=(
        ActionRule(
            alert="link_hotspot", action=ACTION_RECONVERT, cooldown_s=2.0,
            description="dissolve a sustained hotspot into global-random"),
        ActionRule(
            alert="link_imbalance", action=ACTION_RECONVERT, cooldown_s=2.0,
            description="rebalance a skewed fabric into global-random"),
        ActionRule(
            alert="fct_regression", action=ACTION_RECONVERT, cooldown_s=4.0,
            description="FCT tail regressed: convert the fabric"),
        ActionRule(
            alert="link_failure", action=ACTION_HEAL, cooldown_s=0.5,
            description="re-program converters around dead components"),
        ActionRule(
            alert="retry_storm", action=ACTION_QUARANTINE, cooldown_s=1.0,
            description="converter commands are failing in bulk: "
                        "quarantine the conversion plane"),
        ActionRule(
            alert="conversion_downtime", action=ACTION_BACKOFF,
            cooldown_s=5.0, backoff_factor=1.0, max_cooldown_s=5.0,
            description="downtime budget blown: hold further repairs"),
    ))


def selfheal_rules() -> Tuple[AlertRule, ...]:
    """Extra health alert rules the remediation plane subscribes to.

    ``link_failure`` watches the count of *open* dark links — a
    ``link_down`` with no matching ``link_up`` is a component that
    died outside any planned blink window, which is exactly the
    condition :func:`repro.core.failures.heal` exists to repair.
    Append these to :func:`repro.health.rules.default_rules` when
    building the loop's aggregator (see
    :func:`repro.selfheal.engine.new_selfheal_aggregator`).
    """
    return (
        AlertRule(
            name="link_failure",
            probe="conversion.dark_open",
            threshold=0.5,
            severity="critical",
            description="at least one link is dark outside a planned "
                        "blink window (component failure; resolves "
                        "when the link comes back)",
        ),
    )
