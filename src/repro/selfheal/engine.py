"""The remediation engine: alerts in, guarded repair actions out.

:class:`RemediationEngine` folds the health plane's alert log
(:attr:`HealthAggregator.log`) into pending incidents and, for each
one the :class:`~repro.selfheal.policy.RemediationPolicy` maps to an
action, pushes the action through the guard chain — hysteresis, flap
quarantine, global remediation hold, per-alert cooldown, action-budget
token bucket — before handing it to an :class:`Executor`.  Every
decision lands in the :class:`~repro.selfheal.ledger.RemediationLedger`
*and* on the telemetry bus as a registered ``selfheal.*`` event, each
carrying the cause linkage (alert rule + firing trace time).

Two executors ship:

* :class:`PlanOnlyExecutor` — deterministic simulated latencies, no
  plant.  This is what trace replay (``flattree heal TRACE``) uses:
  the fabric that produced the trace is gone, so the loop *plans* the
  repairs it would have taken.
* :class:`ControllerExecutor` — drives a live
  :class:`~repro.core.controller.Controller`: ``reconvert`` through
  the resilient batch executor (:meth:`Controller.execute_layout`
  with retry/rollback), ``heal`` through
  :meth:`Controller.recover` + the KSP routing fallback.

All timing decisions use the aggregator's **trace clock**, so a
replayed chaos run takes byte-identical decisions (see
``make heal-smoke``).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError
from repro.health.aggregate import HealthAggregator
from repro.health.rules import RulesEngine, default_rules
from repro.selfheal.guard import CooldownGate, FlapDetector, TokenBucket
from repro.selfheal.ledger import (
    STATUS_FAILED,
    STATUS_PLANNED,
    STATUS_STARTED,
    STATUS_SUCCEEDED,
    STATUS_SUPPRESSED,
    LedgerEntry,
    RemediationLedger,
)
from repro.selfheal.policy import (
    ACTION_BACKOFF,
    ACTION_HEAL,
    ACTION_QUARANTINE,
    ACTION_RECONVERT,
    PLANT_ACTIONS,
    ActionRule,
    RemediationPolicy,
    default_policy,
    selfheal_rules,
)

#: Suppression reasons the engine stamps on ledger entries/events.
SUPPRESS_FLAP = "flap_quarantine"
SUPPRESS_HOLD = "remediation_hold"
SUPPRESS_COOLDOWN = "cooldown"
SUPPRESS_BUDGET = "budget_exhausted"


@dataclass(frozen=True)
class ActionOutcome:
    """What the executor reports back for one attempted action."""

    ok: bool
    latency_s: float = 0.0
    detail: str = ""


class Executor:
    """Interface the engine drives; implementations repair one plant."""

    def perform(self, action: ActionRule, *, rule: str,
                t: float) -> ActionOutcome:
        raise NotImplementedError


class PlanOnlyExecutor(Executor):
    """Plan repairs without a plant (trace replay, dry runs).

    Latencies are the deterministic cost model of the conversion
    technology: a ``reconvert`` is modeled as three resilient batches
    (control round-trip + circuit switching each), a ``heal`` as one,
    and the hold-installing actions are free.
    """

    def __init__(self, technology: object = None) -> None:
        from repro.core.reconfigure import MEMS_OPTICAL
        tech = technology or MEMS_OPTICAL
        step = tech.control_overhead + tech.switch_delay
        self._latency = {
            ACTION_RECONVERT: 3 * step,
            ACTION_HEAL: step,
            ACTION_QUARANTINE: 0.0,
            ACTION_BACKOFF: 0.0,
        }
        self.performed: List[Tuple[str, str, float]] = []

    def perform(self, action: ActionRule, *, rule: str,
                t: float) -> ActionOutcome:
        self.performed.append((action.action, rule, t))
        return ActionOutcome(
            ok=True, latency_s=self._latency[action.action],
            detail="planned (no plant attached)")


class ControllerExecutor(Executor):
    """Drive a live :class:`~repro.core.controller.Controller`.

    ``reconvert`` converts the whole fabric to the action's target
    mode through the resilient executor (chaos-aware, with
    retry/rollback); ``heal`` asks the controller to re-program
    converters around the failure set reported by ``failures_at``
    (a callable of trace time — typically a closure over the active
    :class:`~repro.chaos.ChaosSchedule`).  Execution reports are kept
    on :attr:`reports` so callers can fold conversion downtime into
    the regret accounting.
    """

    def __init__(self, controller: object, *, technology: object = None,
                 chaos: object = None, retry_policy: object = None,
                 failures_at: Optional[Callable[[float], object]] = None,
                 max_batch: int = 64) -> None:
        from repro.core.reconfigure import MEMS_OPTICAL
        self.controller = controller
        self.technology = technology or MEMS_OPTICAL
        self.chaos = chaos
        self.retry_policy = retry_policy
        self.failures_at = failures_at
        self.max_batch = max_batch
        self.reports: List[object] = []
        self.heal_plans: List[object] = []

    def perform(self, action: ActionRule, *, rule: str,
                t: float) -> ActionOutcome:
        if action.action == ACTION_RECONVERT:
            return self._reconvert(action, t)
        if action.action == ACTION_HEAL:
            return self._heal(t)
        # quarantine/backoff only install engine-side holds; nothing
        # touches the plant.
        return ActionOutcome(ok=True, detail="hold installed")

    def _reconvert(self, action: ActionRule, t: float) -> ActionOutcome:
        from repro.core.conversion import Mode
        try:
            mode = Mode(action.mode)
        except ValueError:
            return ActionOutcome(
                ok=False, detail=f"unknown conversion mode {action.mode!r}")
        try:
            report = self.controller.execute_mode(
                mode,
                technology=self.technology,
                chaos=self.chaos,
                policy=self.retry_policy,
                max_batch=self.max_batch,
                start=t,
            )
        except ReproError as exc:
            return ActionOutcome(ok=False, detail=str(exc))
        self.reports.append(report)
        latency = max(0.0, report.total_time)
        if not report.success:
            return ActionOutcome(
                ok=False, latency_s=latency,
                detail=f"conversion aborted at batch {report.aborted_at}")
        return ActionOutcome(ok=True, latency_s=latency,
                             detail=report.summary())

    def _heal(self, t: float) -> ActionOutcome:
        if self.failures_at is None:
            return ActionOutcome(
                ok=False, detail="no failure source wired "
                                 "(ControllerExecutor(failures_at=...))")
        failures = self.failures_at(t)
        if failures is None or failures.is_empty():
            return ActionOutcome(
                ok=True, detail="no active failures (already healed)")
        try:
            plan = self.controller.recover(failures)
        except ReproError as exc:
            return ActionOutcome(ok=False, detail=str(exc))
        self.heal_plans.append(plan)
        step = self.technology.control_overhead + self.technology.switch_delay
        return ActionOutcome(ok=True, latency_s=step, detail=plan.summary())


class RemediationEngine:
    """The closed loop: fold alerts, guard, act, ledger everything."""

    def __init__(self, policy: Optional[RemediationPolicy] = None,
                 executor: Optional[Executor] = None,
                 ledger: Optional[RemediationLedger] = None) -> None:
        self.policy = policy or default_policy()
        self.executor = executor or PlanOnlyExecutor()
        self.ledger = ledger or RemediationLedger()
        self.flaps = FlapDetector(
            oscillations=self.policy.flap_oscillations,
            window_s=self.policy.flap_window_s,
            quarantine_s=self.policy.quarantine_s)
        self.cooldowns = CooldownGate()
        self.bucket = TokenBucket(self.policy.budget_capacity,
                                  self.policy.budget_refill_per_s)
        self._log_idx = 0
        # rule name -> trace time its alert fired (open incidents)
        self._pending: Dict[str, float] = {}
        # rule name -> earliest trace time to reconsider it
        self._retry_at: Dict[str, float] = {}
        self._hold_until = float("-inf")
        self._hold_strikes = 0
        #: :meth:`poll` runs both on the self-heal loop thread and on
        #: the main thread (replay, tests poking a shared engine), and
        #: everything below it — guards, ledger, executor, controller —
        #: mutates engine-owned state.  One lock at this boundary
        #: covers the whole cone; lock order is engine -> aggregator
        #: (the aggregator never calls back into the engine).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def hold_until(self) -> float:
        """Trace time the global remediation hold lifts (-inf = none)."""
        return self._hold_until

    def poll(self, aggregator: HealthAggregator) -> List[LedgerEntry]:
        """Fold new alert-log entries and act on pending incidents.

        Call this after feeding events to the aggregator (the loop
        thread does it per tail batch; replay does it per line).
        Returns the ledger entries appended by this poll.
        """
        with self._lock:
            log = aggregator.log
            if self._log_idx >= len(log) and not self._pending:
                return []
            while self._log_idx < len(log):
                entry = log[self._log_idx]
                self._log_idx += 1
                kind = entry.get("event")
                rule = str(entry.get("rule", ""))
                if not rule:
                    continue
                t = float(entry.get("t", 0.0))
                if kind == "alert_firing":
                    self.flaps.record_firing(rule, t)
                    self._pending.setdefault(rule, t)
                elif kind == "alert_resolved":
                    # Incident over: the repair (or the fabric) worked,
                    # so the escalation ladder resets.  Oscillation is
                    # the flap detector's job, not the cooldown's.
                    self._pending.pop(rule, None)
                    self._retry_at.pop(rule, None)
                    self.cooldowns.reset(rule)
            now = aggregator.t
            out: List[LedgerEntry] = []
            for rule in sorted(self._pending):
                alert_t = self._pending[rule]
                action = self.policy.for_alert(rule)
                if action is None:
                    continue
                if now - alert_t < self.policy.hysteresis_s:
                    continue  # still inside the observation window
                if now < self._retry_at.get(rule, float("-inf")):
                    continue
                out.extend(self._attempt(action, rule, alert_t, now))
            return out

    # ------------------------------------------------------------------
    def _attempt(self, action: ActionRule, rule: str, alert_t: float,
                 now: float) -> List[LedgerEntry]:
        entries = [self._record(STATUS_PLANNED, action, rule, alert_t, now)]
        suppressed = self._guard(action, rule, now)
        if suppressed is not None:
            reason, retry_at = suppressed
            entries.append(self._record(
                STATUS_SUPPRESSED, action, rule, alert_t, now,
                reason=reason))
            self._retry_at[rule] = retry_at
            return entries
        entries.append(self._record(STATUS_STARTED, action, rule,
                                    alert_t, now))
        try:
            outcome = self.executor.perform(action, rule=rule, t=now)
        except ReproError as exc:
            outcome = ActionOutcome(ok=False, detail=str(exc))
        cooldown = self.cooldowns.arm(
            rule, now, action.cooldown_s, action.backoff_factor,
            action.max_cooldown_s)
        self._retry_at[rule] = now + max(cooldown, self.policy.hysteresis_s)
        if outcome.ok:
            entries.append(self._record(
                STATUS_SUCCEEDED, action, rule, alert_t, now,
                latency_s=outcome.latency_s, detail=outcome.detail))
            self._install_hold(action, now)
        else:
            entries.append(self._record(
                STATUS_FAILED, action, rule, alert_t, now,
                reason=outcome.detail or "executor failure"))
        return entries

    def _guard(self, action: ActionRule, rule: str,
               now: float) -> Optional[Tuple[str, float]]:
        """First guard that vetoes the action: (reason, retry_at)."""
        if self.flaps.is_quarantined(rule, now):
            until = self.flaps.quarantined_until(rule)
            return SUPPRESS_FLAP, float(until if until is not None else now)
        if action.action in PLANT_ACTIONS and now < self._hold_until:
            return SUPPRESS_HOLD, self._hold_until
        if not self.cooldowns.ready(rule, now):
            return SUPPRESS_COOLDOWN, self.cooldowns.ready_at(rule)
        if not self.bucket.take(now):
            return SUPPRESS_BUDGET, self.bucket.next_token_at(now)
        return None

    def _install_hold(self, action: ActionRule, now: float) -> None:
        if action.action == ACTION_QUARANTINE:
            span = min(action.max_cooldown_s * 4,
                       self.policy.quarantine_s
                       * (action.backoff_factor ** self._hold_strikes))
            self._hold_strikes += 1
            self._hold_until = max(self._hold_until, now + span)
        elif action.action == ACTION_BACKOFF:
            self._hold_until = max(self._hold_until,
                                   now + action.cooldown_s)

    def _record(self, status: str, action: ActionRule, rule: str,
                alert_t: float, now: float, reason: str = "",
                latency_s: float = 0.0, detail: str = "") -> LedgerEntry:
        entry = self.ledger.add(
            t=now, status=status, action=action.action, rule=rule,
            alert_t=alert_t, reason=reason, latency_s=latency_s,
            detail=detail)
        if status == STATUS_PLANNED:
            obs.event("selfheal.action_planned", action=action.action,
                      rule=rule, alert_t=alert_t, t=now)
        elif status == STATUS_STARTED:
            obs.event("selfheal.action_started", action=action.action,
                      rule=rule, t=now)
        elif status == STATUS_SUCCEEDED:
            obs.event("selfheal.action_succeeded", action=action.action,
                      rule=rule, latency_s=latency_s, t=now)
        elif status == STATUS_FAILED:
            obs.event("selfheal.action_failed", action=action.action,
                      rule=rule, reason=reason, t=now)
        elif status == STATUS_SUPPRESSED:
            obs.event("selfheal.action_suppressed", action=action.action,
                      rule=rule, reason=reason, t=now)
        return entry


def new_selfheal_aggregator(**kwargs: object) -> HealthAggregator:
    """A :class:`HealthAggregator` wired for the remediation plane.

    Same defaults as :func:`repro.health.new_aggregator` but the rule
    catalog additionally carries the loop's own rules
    (:func:`~repro.selfheal.policy.selfheal_rules`, e.g.
    ``link_failure`` over open dark links).
    """
    kwargs.setdefault(
        "rules", RulesEngine(tuple(default_rules()) + selfheal_rules()))
    return HealthAggregator(**kwargs)  # type: ignore[arg-type]


def replay(lines: Iterable[str],
           policy: Optional[RemediationPolicy] = None,
           executor: Optional[Executor] = None,
           aggregator: Optional[HealthAggregator] = None,
           ) -> Tuple[HealthAggregator, RemediationEngine]:
    """Replay a telemetry JSONL trace through the closed loop.

    Feeds each line to the aggregator and polls the engine after
    every event, exactly like the live loop does per tail batch —
    same trace, same decisions, byte-identical ledger.  Blank lines
    are skipped; unparseable lines raise :class:`ReproError`.
    """
    agg = aggregator or new_selfheal_aggregator()
    engine = RemediationEngine(policy=policy, executor=executor)
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"trace line {lineno} is not valid JSON: {exc}") from exc
        if isinstance(event, dict):
            agg.consume(event)
            engine.poll(agg)
    agg.finish()
    engine.poll(agg)
    return agg, engine


def replay_path(path: str,
                policy: Optional[RemediationPolicy] = None,
                executor: Optional[Executor] = None,
                ) -> Tuple[HealthAggregator, RemediationEngine]:
    """:func:`replay` over a file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return replay(handle, policy=policy, executor=executor)
    except OSError as exc:
        raise ReproError(f"cannot read trace {path}: {exc}") from exc
