"""Anti-flap guards for the remediation engine.

Three small, trace-clock-driven state machines stand between a firing
alert and a plant action:

* :class:`TokenBucket` — the global action budget.  Every executed
  action (success or failure) spends one token; tokens refill at a
  fixed rate of trace seconds.  An empty bucket suppresses actions
  fleet-wide, bounding how fast the loop can churn the fabric no
  matter how many alerts fire.
* :class:`CooldownGate` — per-alert cooldowns with exponential
  escalation.  Consecutive attempts on the same alert widen the gap
  between them (a repair that keeps being needed is not working).
* :class:`FlapDetector` — watches alert *firing* timestamps; an alert
  that fires N times inside a sliding window is oscillating, and the
  detector quarantines it for an escalating period instead of letting
  the loop chase it.

All three consume the aggregator's **trace clock** (the ``t`` field of
replayed events), never wall time, so a replayed chaos run takes
byte-identical guard decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError

_NEVER = float("-inf")


@dataclass
class TokenBucket:
    """A global action budget refilled in trace time.

    Starts full.  ``take(t)`` refills by ``(t - last_t) * refill_per_s``
    (clamped at ``capacity``) and spends one token if available.  The
    clock may repeat but never runs backwards — a stale ``t`` simply
    refills nothing.
    """

    capacity: int
    refill_per_s: float
    tokens: float = field(init=False)
    _last_t: float = field(init=False, default=_NEVER)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ReproError("token bucket capacity must be >= 1")
        if self.refill_per_s < 0:
            raise ReproError("token bucket refill rate must be >= 0")
        self.tokens = float(self.capacity)

    def available(self, t: float) -> float:
        """Tokens that would be on hand at trace time ``t`` (no spend)."""
        self._refill(t)
        return self.tokens

    def take(self, t: float) -> bool:
        """Spend one token at trace time ``t``; False when broke."""
        self._refill(t)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def next_token_at(self, t: float) -> float:
        """Earliest trace time a token will be available after ``t``."""
        self._refill(t)
        if self.tokens >= 1.0:
            return t
        if self.refill_per_s <= 0:
            return float("inf")
        return t + (1.0 - self.tokens) / self.refill_per_s

    def _refill(self, t: float) -> None:
        if self._last_t == _NEVER:
            self._last_t = t
            return
        if t > self._last_t:
            self.tokens = min(
                float(self.capacity),
                self.tokens + (t - self._last_t) * self.refill_per_s)
            self._last_t = t


class CooldownGate:
    """Per-key cooldowns that escalate on consecutive attempts.

    ``arm(key, t, base, factor, cap)`` records an attempt: the key is
    not ready again until ``t + min(cap, base * factor**strikes)``
    where ``strikes`` counts prior consecutive attempts.  ``reset``
    clears the escalation once the underlying alert resolves for good.
    """

    def __init__(self) -> None:
        self._ready_at: Dict[str, float] = {}
        self._strikes: Dict[str, int] = {}

    def ready(self, key: str, t: float) -> bool:
        return t >= self._ready_at.get(key, _NEVER)

    def ready_at(self, key: str) -> float:
        """Trace time the key unlocks (-inf when never armed)."""
        return self._ready_at.get(key, _NEVER)

    def strikes(self, key: str) -> int:
        return self._strikes.get(key, 0)

    def arm(self, key: str, t: float, base: float,
            factor: float = 1.0, cap: float = float("inf")) -> float:
        strikes = self._strikes.get(key, 0)
        window = min(cap, base * (factor ** strikes))
        self._strikes[key] = strikes + 1
        self._ready_at[key] = t + window
        return window

    def reset(self, key: str) -> None:
        self._ready_at.pop(key, None)
        self._strikes.pop(key, None)


class FlapDetector:
    """Quarantine alerts that oscillate instead of chasing them.

    Feed every ``alert_firing`` edge through :meth:`record_firing`.
    When one rule fires ``oscillations`` times within ``window_s``
    trace seconds, the rule is quarantined for ``quarantine_s``
    (doubling on each subsequent quarantine, capped at
    ``max_quarantine_s``) and its firing history is cleared so the
    next escalation needs a fresh burst.
    """

    def __init__(self, oscillations: int = 3, window_s: float = 5.0,
                 quarantine_s: float = 10.0,
                 max_quarantine_s: float = 60.0) -> None:
        if oscillations < 2:
            raise ReproError("flap detection needs >= 2 oscillations")
        if window_s <= 0 or quarantine_s <= 0:
            raise ReproError("flap windows must be positive")
        self.oscillations = oscillations
        self.window_s = window_s
        self.quarantine_s = quarantine_s
        self.max_quarantine_s = max_quarantine_s
        self._firings: Dict[str, List[float]] = {}
        self._quarantined_until: Dict[str, float] = {}
        self._strikes: Dict[str, int] = {}

    def record_firing(self, rule: str, t: float) -> None:
        history = self._firings.setdefault(rule, [])
        history.append(t)
        cutoff = t - self.window_s
        while history and history[0] < cutoff:
            history.pop(0)
        if len(history) >= self.oscillations:
            strikes = self._strikes.get(rule, 0)
            span = min(self.max_quarantine_s,
                       self.quarantine_s * (2.0 ** strikes))
            self._strikes[rule] = strikes + 1
            self._quarantined_until[rule] = t + span
            history.clear()

    def quarantined_until(self, rule: str) -> Optional[float]:
        """Trace time the rule's quarantine lifts (None = not flapping)."""
        return self._quarantined_until.get(rule)

    def is_quarantined(self, rule: str, t: float) -> bool:
        until = self._quarantined_until.get(rule)
        if until is None:
            return False
        if t >= until:
            del self._quarantined_until[rule]
            return False
        return True
