"""Live mode: a background thread tailing a telemetry JSONL file.

:class:`SelfHealLoop` follows a growing trace file (the ``--follow``
side of ``flattree heal``), feeding each appended line into the
aggregator and polling the :class:`~repro.selfheal.engine.
RemediationEngine` after every batch.  Decision *timing* still comes
from the trace clock inside the events — wall time only paces how
often the file is re-read — so a live run and an offline replay of
the same trace produce the same ledger.

Thread hygiene (the contract the tests pin down): the worker is a
daemon thread whose body runs under ``try/finally`` — whatever the
engine or aggregator raises, the loop always finalizes the aggregator,
takes a last poll, records the error, and flips :attr:`finished`.
The context-manager form stops the thread even when the ``with`` body
raises, so a crashing experiment cannot leak a live loop past the
block.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Dict, List, Optional

from repro.errors import ReproError
from repro.health.aggregate import HealthAggregator
from repro.selfheal.engine import RemediationEngine, new_selfheal_aggregator


class SelfHealLoop:
    """Tail ``path`` through the closed loop on a background thread.

    ``poll_s`` is the wall-clock pause between tail reads when the
    file has no new lines; ``max_polls`` bounds how many such empty
    reads the loop tolerates before stopping on its own (None = run
    until :meth:`stop`).  A missing file counts as an empty read —
    the loop waits for the recorder to create it.
    """

    def __init__(self, path: str,
                 aggregator: Optional[HealthAggregator] = None,
                 engine: Optional[RemediationEngine] = None,
                 poll_s: float = 0.25,
                 max_polls: Optional[int] = None) -> None:
        if poll_s <= 0:
            raise ReproError("poll_s must be positive")
        self.path = path
        self.aggregator = aggregator or new_selfheal_aggregator()
        self.engine = engine or RemediationEngine()
        self.poll_s = poll_s
        self.max_polls = max_polls
        self.lines_read = 0
        self.bad_lines = 0
        self.empty_polls = 0
        self.error: Optional[BaseException] = None
        self.finished = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "SelfHealLoop":
        if self._thread is not None:
            raise ReproError("self-heal loop already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-selfheal-loop", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the loop and join it; idempotent."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ReproError("self-heal loop failed to stop")
        self._thread = None

    def __enter__(self) -> "SelfHealLoop":
        return self.start()

    def __exit__(self, exc_type: object, exc: object,
                 tb: object) -> None:
        # Always tear the thread down, even when the with-body raised.
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        handle: Optional[IO[str]] = None
        try:
            while not self._stop.is_set():
                if handle is None:
                    try:
                        handle = open(self.path, "r", encoding="utf-8")
                    except OSError:
                        if not self._idle():
                            break
                        continue
                batch = self._drain(handle)
                if batch:
                    self.empty_polls = 0
                    for event in batch:
                        self.aggregator.consume(event)
                    self.engine.poll(self.aggregator)
                elif not self._idle():
                    break
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
            self.error = exc
            raise
        finally:
            # Hygiene contract: the loop always finalizes, whatever
            # happened above — no half-open aggregator, no silent exit.
            if handle is not None:
                handle.close()
            try:
                self.aggregator.finish()
                self.engine.poll(self.aggregator)
            finally:
                self.finished.set()

    def _drain(self, handle: IO[str]) -> List[Dict[str, object]]:
        events: List[Dict[str, object]] = []
        while True:
            line = handle.readline()
            if not line:
                return events
            line = line.strip()
            if not line:
                continue
            self.lines_read += 1
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                self.bad_lines += 1
                continue
            if isinstance(event, dict):
                events.append(event)

    def _idle(self) -> bool:
        """One empty poll: True to keep waiting, False to stop."""
        self.empty_polls += 1
        if self.max_polls is not None and self.empty_polls >= self.max_polls:
            return False
        # Wall time paces the tail only; decisions use the trace clock.
        time.sleep(self.poll_s)
        return True
