"""MTTR/regret accounting: the closed loop vs no-op and oracle arms.

:func:`run_regret` replays one seeded fault storm — a chaos-sweep
style script of sustained link hotspots plus a plant failure (an edge
leg dies mid-run) — through three arms over identical tick streams:

``noop``
    Nobody acts.  Hotspots burn until the horizon, the dead leg
    strands its server, alerts stay firing (censored at the horizon).
``closed``
    The :class:`~repro.selfheal.engine.RemediationEngine` drives a
    live :class:`~repro.core.controller.Controller` through a
    :class:`~repro.selfheal.engine.ControllerExecutor`: hotspots
    dissolve into a random-graph conversion, the dead leg heals via
    converter re-programming + KSP fallback.
``oracle``
    Knows the storm script in advance and repairs each incident one
    tick after injection, for free — the unattainable lower bound.

Per arm we report **time-in-alert** (sum of firing→resolved windows,
censored at the horizon), **MTTR** (mean injection→repair latency),
**conversion downtime** (dark-window seconds from the resilient
executor's reports), and **FCT degradation** (mean flow completion
time on the arm's final fabric over a fixed workload, relative to the
pristine Clos).  *Regret* is the closed loop's excess over the oracle
on the two loop-controlled metrics.

Everything is trace-clock driven and seeded — two runs with the same
arguments produce identical reports (and identical ledgers, which
``make heal-smoke`` checks byte-for-byte).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.controller import Controller
from repro.core.design import FlatTreeDesign
from repro.core.failures import FailureSet, Leg, materialize_with_failures
from repro.core.flattree import FlatTree
from repro.core.reconfigure import MEMS_OPTICAL, Technology
from repro.errors import ReproError
from repro.flowsim import FlowSimulator, FlowSpec
from repro.routing.base import Path
from repro.routing.ksp import k_shortest_paths
from repro.selfheal.engine import (
    ControllerExecutor,
    RemediationEngine,
    new_selfheal_aggregator,
)
from repro.selfheal.ledger import RemediationLedger
from repro.selfheal.policy import (
    ACTION_HEAL,
    ACTION_RECONVERT,
    RemediationPolicy,
    default_policy,
)

#: Tick width of the synthetic monitor stream, in trace seconds.
DT = 0.05

ARMS: Tuple[str, ...] = ("noop", "closed", "oracle")


@dataclass
class _Episode:
    """One scripted hotspot: ``link`` runs hot from ``t0`` until repaired."""

    link: str
    t0: float
    repair_end: Optional[float] = None

    def hot(self, t: float) -> bool:
        if t < self.t0:
            return False
        return self.repair_end is None or t < self.repair_end


@dataclass(frozen=True)
class ArmResult:
    """The storm's outcome under one control arm."""

    arm: str
    time_in_alert_s: float
    mttr_s: float
    conversion_downtime_s: float
    fct_ratio: float
    stranded_servers: int
    incidents: int
    repaired: int
    actions: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class RegretReport:
    """Three-arm comparison plus the closed arm's full ledger."""

    k: int
    seed: int
    duration: float
    episodes: int
    arms: Dict[str, ArmResult]
    ledger: RemediationLedger

    @property
    def closed_beats_noop(self) -> bool:
        """The acceptance gate: strictly better MTTR *and* time-in-alert."""
        closed, noop = self.arms["closed"], self.arms["noop"]
        return (closed.mttr_s < noop.mttr_s
                and closed.time_in_alert_s < noop.time_in_alert_s)

    def regret(self) -> Dict[str, float]:
        """Closed-loop excess over the oracle (0 = perfect foresight)."""
        closed, oracle = self.arms["closed"], self.arms["oracle"]
        return {
            "time_in_alert_s": closed.time_in_alert_s
            - oracle.time_in_alert_s,
            "mttr_s": closed.mttr_s - oracle.mttr_s,
        }

    def table(self) -> str:
        lines = [
            f"regret report: k={self.k} seed={self.seed} "
            f"horizon={self.duration:g}s "
            f"({self.episodes} hotspot(s) + 1 leg failure)",
            f"  {'arm':<8} {'alert-s':>9} {'mttr-s':>8} {'conv-dt':>8} "
            f"{'fct-x':>7} {'dark-srv':>8} {'repaired':>8}",
        ]
        for name in ARMS:
            arm = self.arms[name]
            lines.append(
                f"  {arm.arm:<8} {arm.time_in_alert_s:>9.3f} "
                f"{arm.mttr_s:>8.3f} {arm.conversion_downtime_s:>8.3f} "
                f"{arm.fct_ratio:>7.3f} {arm.stranded_servers:>8d} "
                f"{arm.repaired:>4d}/{arm.incidents}")
        reg = self.regret()
        lines.append(
            f"  regret vs oracle: +{reg['time_in_alert_s']:.3f}s in alert, "
            f"+{reg['mttr_s']:.3f}s MTTR")
        lines.append(
            "  closed loop beats no-op: "
            + ("yes" if self.closed_beats_noop else "NO"))
        lines.append(f"  {self.ledger.summary()}")
        return "\n".join(lines)


def ksp_router(net: object) -> Callable[[int, int, int], Path]:
    """A flowsim router over any (possibly degraded) network.

    K-shortest-paths per switch pair, cached, with the flow id picking
    among the candidates — deterministic and mode-agnostic, which is
    what lets one workload run on Clos, converted, and healed fabrics
    alike.
    """
    cache: Dict[Tuple[int, int], List[Path]] = {}

    def route(src_server: int, dst_server: int, flow_id: int) -> Path:
        ssw = net.server_switch(src_server)
        dsw = net.server_switch(dst_server)
        if ssw == dsw:
            return Path((ssw,))
        key = (ssw, dsw)
        paths = cache.get(key)
        if paths is None:
            paths = k_shortest_paths(net, ssw, dsw)
            cache[key] = paths
        if not paths:
            raise ReproError(
                f"no surviving path between switches {ssw} and {dsw}")
        return paths[flow_id % len(paths)]

    return route


def _tick_events(t: float, episodes: List[_Episode]) -> List[dict]:
    """The synthetic monitor batch for one tick (hot + background links)."""
    batch = []
    for ep in episodes:
        batch.append(_link_sample(t, ep.link, 0.97 if ep.hot(t) else 0.08))
    batch.append(_link_sample(t, "bg0->bg1", 0.10))
    batch.append(_link_sample(t, "bg2->bg3", 0.15))
    return batch


def _link_sample(t: float, link: str, utilization: float) -> dict:
    return {"ts": 0.0, "name": "monitor.link_sample", "kind": "link_sample",
            "t": t, "link": link, "value": utilization,
            "utilization": utilization, "rate": utilization,
            "capacity": 1.0, "active_flows": 1}


def _link_down(t: float, link: str) -> dict:
    return {"ts": 0.0, "name": "monitor.link_down", "kind": "link_down",
            "t": t, "link": link, "value": 1}


def _link_up(t: float, link: str, dark_s: float) -> dict:
    return {"ts": 0.0, "name": "monitor.link_up", "kind": "link_up",
            "t": t, "link": link, "value": 1, "dark_s": dark_s}


def _time_in_alert(log: List[dict], horizon: float) -> float:
    """Sum of firing→resolved windows, censored at the horizon."""
    open_at: Dict[str, float] = {}
    total = 0.0
    for entry in log:
        kind = entry.get("event")
        rule = str(entry.get("rule", ""))
        if not rule:
            continue
        t = float(entry.get("t", 0.0))
        if kind == "alert_firing":
            open_at.setdefault(rule, t)
        elif kind == "alert_resolved":
            fired = open_at.pop(rule, None)
            if fired is not None:
                total += max(0.0, t - fired)
    for fired in open_at.values():
        total += max(0.0, horizon - fired)
    return total


def _mean_fct(net: object, flows: List[FlowSpec]) -> float:
    result = FlowSimulator(net, ksp_router(net)).run(flows)
    return result.mean_fct


def _run_arm(arm: str, *, k: int, seed: int, duration: float,
             episodes: int, flows: int, technology: Technology,
             policy: RemediationPolicy) -> Tuple[ArmResult,
                                                 RemediationLedger]:
    ft = FlatTree(FlatTreeDesign.for_fat_tree(k))
    controller = Controller(ft)
    victim = sorted(ft.four_port_ids())[0]
    victim_server = ft.converters[victim].server
    failures = FailureSet.of_legs((victim, Leg.EDGE))
    fault_t = round(0.7 * duration / DT) * DT
    dark_link = f"c{victim}->edge"

    # The storm script: hotspot episodes spread over the first 60% of
    # the horizon, then the leg failure.
    script = [_Episode(link=f"hs{i}a->hs{i}b",
                       t0=round((1.0 + i * 0.45 * duration) / DT) * DT)
              for i in range(episodes)]

    fault_open = [False]  # mutable closure state for failures_at

    agg = new_selfheal_aggregator(eval_every=4)
    engine: Optional[RemediationEngine] = None
    executor: Optional[ControllerExecutor] = None
    if arm == "closed":
        executor = ControllerExecutor(
            controller, technology=technology,
            failures_at=lambda t: failures if fault_open[0] else None)
        engine = RemediationEngine(policy=policy, executor=executor)

    fault_repair_at: Optional[float] = None  # scheduled link_up time
    fault_repaired: Optional[float] = None   # actual link_up time
    ticks = int(round(duration / DT))
    for i in range(ticks + 1):
        t = round(i * DT, 10)
        batch = _tick_events(t, script)
        if t == fault_t:
            fault_open[0] = True
            batch.append(_link_down(t, dark_link))
            if arm == "oracle":
                fault_repair_at = t + DT
        if arm == "oracle":
            for ep in script:
                if ep.repair_end is None and t >= ep.t0:
                    ep.repair_end = t + DT
        if (fault_repair_at is not None and fault_repaired is None
                and t >= fault_repair_at):
            if arm == "oracle":
                controller.recover(failures)
            fault_repaired = t
            fault_open[0] = False
            batch.append(_link_up(t, dark_link, t - fault_t))
        for event in batch:
            agg.consume(event)
        if engine is not None:
            for entry in engine.poll(agg):
                if entry.status != "succeeded":
                    continue
                if entry.action == ACTION_RECONVERT:
                    end = entry.t + max(entry.latency_s, DT)
                    for ep in script:
                        if ep.repair_end is None and entry.t >= ep.t0:
                            ep.repair_end = end
                elif entry.action == ACTION_HEAL and fault_repair_at is None:
                    fault_repair_at = entry.t + max(entry.latency_s, DT)
    agg.finish()
    if engine is not None:
        engine.poll(agg)

    horizon = max(duration, agg.t)
    incidents: List[Tuple[float, Optional[float]]] = [
        (ep.t0, ep.repair_end) for ep in script if ep.t0 <= duration]
    incidents.append((fault_t, fault_repaired))
    repairs = [(inject, repaired) for inject, repaired in incidents
               if repaired is not None]
    mttr_samples = [
        (repaired if repaired is not None else horizon) - inject
        for inject, repaired in incidents]
    mttr = sum(mttr_samples) / len(mttr_samples) if mttr_samples else 0.0

    downtime = 0.0
    actions: Dict[str, int] = {}
    ledger = engine.ledger if engine is not None else RemediationLedger()
    if executor is not None:
        for report in executor.reports:
            downtime += sum(up - down for down, up in report.timeline())
        for entry in ledger.by_status("succeeded"):
            actions[entry.action] = actions.get(entry.action, 0) + 1

    # FCT on the arm's final fabric: the leg stays physically dead in
    # every arm — what differs is whether converters were re-programmed
    # around it (heal) and/or the fabric was converted (reconvert).
    pristine = FlatTree(FlatTreeDesign.for_fat_tree(k)).materialize()
    final = materialize_with_failures(controller.flattree, failures)
    stranded = ft.params.num_servers - len(list(final.servers()))
    rng = random.Random(seed * 31 + 5)
    candidates = sorted(set(range(ft.params.num_servers)) - {victim_server})
    workload = []
    for fid in range(flows):
        src, dst = rng.sample(candidates, 2)
        workload.append(FlowSpec(fid, src, dst, size=1.0))
    base_fct = _mean_fct(pristine, workload)
    arm_fct = _mean_fct(final, workload)
    fct_ratio = arm_fct / base_fct if base_fct > 0 else 1.0

    return ArmResult(
        arm=arm,
        time_in_alert_s=_time_in_alert(agg.log, horizon),
        mttr_s=mttr,
        conversion_downtime_s=downtime,
        fct_ratio=fct_ratio,
        stranded_servers=stranded,
        incidents=len(incidents),
        repaired=len(repairs),
        actions=actions,
    ), ledger


def run_regret(k: int = 4, seed: int = 7, duration: float = 12.0,
               episodes: int = 2, flows: int = 12,
               technology: Technology = MEMS_OPTICAL,
               policy: Optional[RemediationPolicy] = None) -> RegretReport:
    """Run the three-arm storm and return the comparison report."""
    if k < 4 or k % 2:
        raise ReproError("k must be an even integer >= 4")
    if duration <= 2.0:
        raise ReproError("duration must leave room for the storm (> 2s)")
    pol = policy or default_policy()
    arms: Dict[str, ArmResult] = {}
    ledger = RemediationLedger()
    for arm in ARMS:
        result, arm_ledger = _run_arm(
            arm, k=k, seed=seed, duration=duration, episodes=episodes,
            flows=flows, technology=technology, policy=pol)
        arms[arm] = result
        if arm == "closed":
            ledger = arm_ledger
    return RegretReport(k=k, seed=seed, duration=duration,
                        episodes=episodes, arms=arms, ledger=ledger)
