"""The remediation ledger: an append-only audit of every loop decision.

Every decision the :class:`~repro.selfheal.engine.RemediationEngine`
takes — planned, started, succeeded, failed, or suppressed — lands
here as a :class:`LedgerEntry` carrying the **cause linkage**: the
alert rule that triggered it and the trace time that alert fired
(``alert_t``).  Entries are stamped with the aggregator's trace clock,
never wall time, so replaying the same telemetry trace produces a
byte-identical ledger (the ``heal-smoke`` CI target ``cmp``'s two
replays to prove it).

Serialization follows the HealthReport conventions: schema-tagged
(``flattree.selfheal/1``), NaN-scrubbed, sorted keys, trailing
newline.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Tuple

SCHEMA = "flattree.selfheal/1"

STATUS_PLANNED = "planned"
STATUS_STARTED = "started"
STATUS_SUCCEEDED = "succeeded"
STATUS_FAILED = "failed"
STATUS_SUPPRESSED = "suppressed"

STATUSES: Tuple[str, ...] = (
    STATUS_PLANNED, STATUS_STARTED, STATUS_SUCCEEDED,
    STATUS_FAILED, STATUS_SUPPRESSED,
)


def _scrub(value: Any) -> Any:
    """NaN/inf are not JSON; fold them to None like the health report."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value


@dataclass(frozen=True)
class LedgerEntry:
    """One loop decision, linked back to its causing alert.

    ``rule`` names the alert rule and ``alert_t`` its firing trace
    time — together the cause linkage.  ``reason`` explains failures
    and suppressions (``cooldown``/``budget``/``flap``/``hold``/...);
    ``latency_s`` is the plant latency of a successful action;
    ``detail`` is free-form executor color.
    """

    seq: int
    t: float
    status: str
    action: str
    rule: str
    alert_t: float
    reason: str = ""
    latency_s: float = 0.0
    detail: str = ""


class RemediationLedger:
    """Append-only record of loop decisions with deterministic export."""

    def __init__(self) -> None:
        self.entries: List[LedgerEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, t: float, status: str, action: str, rule: str,
            alert_t: float, reason: str = "", latency_s: float = 0.0,
            detail: str = "") -> LedgerEntry:
        entry = LedgerEntry(
            seq=len(self.entries), t=float(t), status=status,
            action=action, rule=rule, alert_t=float(alert_t),
            reason=reason, latency_s=float(latency_s), detail=detail)
        self.entries.append(entry)
        return entry

    def by_status(self, status: str) -> List[LedgerEntry]:
        return [e for e in self.entries if e.status == status]

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for entry in self.entries:
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    def succeeded_actions(self) -> List[str]:
        """Distinct action kinds that completed, sorted."""
        return sorted({e.action for e in self.by_status(STATUS_SUCCEEDED)})

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in STATUSES if counts[s]]
        return (f"{len(self.entries)} ledger entries: "
                f"{', '.join(parts) if parts else 'empty'}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "entries": [_scrub(asdict(e)) for e in self.entries],
            "counts": self.counts(),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        lines = ["remediation ledger",
                 f"  {'seq':>3}  {'t':>8}  {'status':<10}  {'action':<10}  "
                 f"{'rule':<20}  {'alert_t':>8}  note"]
        for e in self.entries:
            note = e.reason or e.detail
            if e.status == STATUS_SUCCEEDED and e.latency_s:
                note = f"latency {e.latency_s:.3f}s" + (
                    f"; {note}" if note else "")
            lines.append(
                f"  {e.seq:>3}  {e.t:>8.3f}  {e.status:<10}  "
                f"{e.action:<10}  {e.rule:<20}  {e.alert_t:>8.3f}  {note}")
        lines.append(f"  {self.summary()}")
        return "\n".join(lines)
