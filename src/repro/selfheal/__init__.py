"""repro.selfheal — the closed-loop remediation plane.

The missing arrow in the observe→act diagram: PR-6's health plane
raises alerts, PR-3's resilient executor can repair a fabric, and this
package connects them.  A declarative
:class:`~repro.selfheal.policy.RemediationPolicy` maps alert rules to
repair actions; the :class:`~repro.selfheal.engine.RemediationEngine`
pushes each firing alert through anti-flap guards (hysteresis, flap
quarantine, global hold, per-alert cooldowns, an action-budget token
bucket) before driving a live controller or a plan-only dry run; and
every decision lands in a trace-clock-deterministic
:class:`~repro.selfheal.ledger.RemediationLedger` plus registered
``selfheal.*`` telemetry events with cause-alert linkage.

Surfaces: ``flattree heal`` (offline replay, ``--follow`` live tail,
``--regret`` three-arm storm report, ``--soak`` flowsim soak),
:func:`repro.selfheal.regret.run_regret`, and
:func:`repro.experiments.selfheal_soak.run_selfheal_soak`.  See
``docs/robustness.md`` ("Self-healing loop").
"""

from repro.selfheal.engine import (
    ActionOutcome,
    ControllerExecutor,
    Executor,
    PlanOnlyExecutor,
    RemediationEngine,
    new_selfheal_aggregator,
    replay,
    replay_path,
)
from repro.selfheal.guard import CooldownGate, FlapDetector, TokenBucket
from repro.selfheal.ledger import (
    LedgerEntry,
    RemediationLedger,
    STATUSES,
)
from repro.selfheal.loop import SelfHealLoop
from repro.selfheal.policy import (
    ACTIONS,
    ActionRule,
    RemediationPolicy,
    default_policy,
    selfheal_rules,
)
from repro.selfheal.regret import ArmResult, RegretReport, run_regret

__all__ = [
    "ACTIONS",
    "ActionOutcome",
    "ActionRule",
    "ArmResult",
    "ControllerExecutor",
    "CooldownGate",
    "Executor",
    "FlapDetector",
    "LedgerEntry",
    "PlanOnlyExecutor",
    "RegretReport",
    "RemediationEngine",
    "RemediationLedger",
    "RemediationPolicy",
    "STATUSES",
    "SelfHealLoop",
    "TokenBucket",
    "default_policy",
    "new_selfheal_aggregator",
    "replay",
    "replay_path",
    "run_regret",
    "selfheal_rules",
]
