"""Flow-level workload generation: sizes and arrivals (extension).

The paper's §3.1 cites measurement studies (DCTCP, Kandula et al.) for
its traffic patterns; those same studies publish flow-size mixes that
flow-level simulation needs.  This module provides:

* two classic empirical size mixes as piecewise CDFs — ``WEB_SEARCH``
  (query/short-message heavy) and ``DATA_MINING`` (more mice, heavier
  elephants) — plus uniform and fixed mixes for controlled tests;
* :func:`poisson_flows` — open-loop Poisson arrivals over a server set
  with a pluggable pair pattern, producing
  :class:`~repro.flowsim.simulator.FlowSpec` lists for the simulator.

Sizes are in the simulator's capacity-unit-seconds; the CDF knots are
normalized so the mean of every mix is ~1.0, which keeps FCTs across
mixes comparable.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import TrafficError
from repro.flowsim.simulator import FlowSpec


@dataclass(frozen=True)
class SizeCDF:
    """A piecewise-linear flow-size CDF.

    ``knots`` are (size, cumulative probability) pairs, strictly
    increasing in both coordinates, ending at probability 1.0.
    """

    name: str
    knots: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.knots) < 2:
            raise TrafficError("a CDF needs at least two knots")
        sizes = [s for s, _p in self.knots]
        probs = [p for _s, p in self.knots]
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise TrafficError("CDF knots must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise TrafficError("CDF must end at probability 1.0")
        if probs[0] < 0:
            raise TrafficError("probabilities must be non-negative")

    def sample(self, rng: random.Random) -> float:
        """Inverse-transform sample with linear interpolation."""
        u = rng.random()
        probs = [p for _s, p in self.knots]
        i = bisect.bisect_left(probs, u)
        if i == 0:
            return self.knots[0][0]
        (s0, p0), (s1, p1) = self.knots[i - 1], self.knots[i]
        if p1 == p0:
            return s1
        frac = (u - p0) / (p1 - p0)
        return s0 + frac * (s1 - s0)

    def mean(self, samples: int = 20000, seed: int = 0) -> float:
        """Monte-Carlo mean (used by tests to pin the normalization)."""
        rng = random.Random(seed)
        return sum(self.sample(rng) for _ in range(samples)) / samples


#: Web-search-like mix: ~60% sub-0.1 mice, a long tail of elephants.
WEB_SEARCH = SizeCDF(
    "web-search",
    (
        (0.01, 0.0),
        (0.03, 0.3),
        (0.1, 0.6),
        (0.5, 0.8),
        (2.0, 0.93),
        (10.0, 0.99),
        (35.0, 1.0),
    ),
)

#: Data-mining-like mix: even more mice, heavier elephants.
DATA_MINING = SizeCDF(
    "data-mining",
    (
        (0.005, 0.0),
        (0.01, 0.5),
        (0.05, 0.75),
        (0.5, 0.89),
        (5.0, 0.96),
        (40.0, 0.999),
        (120.0, 1.0),
    ),
)

#: A deterministic unit-size mix (controlled experiments).
FIXED_UNIT = SizeCDF("fixed-unit", ((1.0, 0.0), (1.0 + 1e-12, 1.0)))

#: A uniform [0.5, 1.5] mix.
UNIFORM = SizeCDF("uniform", ((0.5, 0.0), (1.5, 1.0)))


PairPicker = Callable[[random.Random], Tuple[int, int]]


def uniform_pairs(servers: Sequence[int]) -> PairPicker:
    """Source/destination drawn uniformly among distinct servers."""
    pool = list(servers)
    if len(pool) < 2:
        raise TrafficError("need at least two servers")

    def pick(rng: random.Random) -> Tuple[int, int]:
        a, b = rng.sample(pool, 2)
        return a, b

    return pick


def hotspot_pairs(
    servers: Sequence[int], hotspot: int, incast_fraction: float = 0.5
) -> PairPicker:
    """Flows to/from one hot server (the paper's pervasive pattern)."""
    pool = [s for s in servers if s != hotspot]
    if not pool:
        raise TrafficError("hotspot needs at least one peer")
    if not 0 <= incast_fraction <= 1:
        raise TrafficError("incast fraction must be in [0, 1]")

    def pick(rng: random.Random) -> Tuple[int, int]:
        other = rng.choice(pool)
        if rng.random() < incast_fraction:
            return other, hotspot
        return hotspot, other

    return pick


def poisson_flows(
    pairs: PairPicker,
    rate: float,
    duration: float,
    sizes: SizeCDF = WEB_SEARCH,
    rng: Optional[random.Random] = None,
    start_id: int = 0,
) -> List[FlowSpec]:
    """Open-loop Poisson arrivals over ``duration`` at ``rate`` flows/s."""
    if rate <= 0 or duration <= 0:
        raise TrafficError("rate and duration must be positive")
    rng = rng or random.Random(0)
    flows: List[FlowSpec] = []
    now = rng.expovariate(rate)
    fid = start_id
    while now < duration:
        src, dst = pairs(rng)
        flows.append(
            FlowSpec(
                flow_id=fid,
                src_server=src,
                dst_server=dst,
                size=max(sizes.sample(rng), 1e-6),
                arrival=now,
            )
        )
        fid += 1
        now += rng.expovariate(rate)
    if not flows:
        raise TrafficError(
            "no arrivals drawn; increase rate x duration"
        )
    return flows
