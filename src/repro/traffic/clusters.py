"""Service clusters: the workload unit of the paper's evaluation (§3.1).

Measurement studies cited by the paper find two pervasive patterns:
broadcast/incast between a hot spot and a large cluster, and all-to-all
within small clusters.  The evaluation instantiates them as:

* **1000-member clusters** with one randomly chosen hot-spot member that
  broadcasts to / incasts from all other members (Figure 7);
* **20-member clusters** with all-to-all traffic (Figure 8).

Cluster members are *logical endpoints* placed onto servers by a
placement policy (:mod:`repro.traffic.placement`).  When the network has
fewer servers than one cluster's membership (small k), members wrap
around the server pool — with server bandwidth relaxed this measures
switch-level capacity, "relevant to the maximum number of servers a
topology can accommodate" (§3.1), and it is the only reading under which
the paper's k = 4..14 data points of Figure 7 exist at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import TrafficError

#: Paper cluster sizes.
BROADCAST_CLUSTER_SIZE = 1000
ALL_TO_ALL_CLUSTER_SIZE = 20


@dataclass(frozen=True)
class Cluster:
    """A service cluster: an ordered list of member server ids.

    ``members[i]`` is the server hosting logical member ``i``.  The same
    server may host several members when the cluster is larger than the
    server pool.  ``hotspot`` (optional) is the index of the member that
    acts as broadcast source / incast destination.
    """

    members: tuple
    hotspot: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise TrafficError("a cluster needs at least two members")
        if self.hotspot is not None and not 0 <= self.hotspot < len(self.members):
            raise TrafficError(f"hotspot index {self.hotspot} out of range")

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def hotspot_server(self) -> int:
        if self.hotspot is None:
            raise TrafficError("cluster has no hotspot member")
        return self.members[self.hotspot]


def cluster_count(num_servers: int, cluster_size: int) -> int:
    """How many clusters the evaluation creates.

    Every server joins at most one cluster, so at most
    ``num_servers // cluster_size`` disjoint clusters exist; when the
    pool is smaller than one cluster, a single wrapped cluster is used.
    """
    if cluster_size < 2:
        raise TrafficError("cluster size must be at least 2")
    return max(1, num_servers // cluster_size)


def make_clusters(
    placement: Sequence[int],
    cluster_size: int,
    rng: Optional[random.Random] = None,
    with_hotspots: bool = False,
) -> List[Cluster]:
    """Slice a placed member sequence into clusters.

    ``placement`` is the full logical-member -> server assignment
    produced by a placement policy; consecutive runs of ``cluster_size``
    members form the clusters.  With ``with_hotspots`` each cluster gets
    one uniformly random hot-spot member (paper: "one random server in
    each cluster is the source/destination").
    """
    if len(placement) % cluster_size != 0:
        raise TrafficError(
            f"placement length {len(placement)} is not a multiple of the "
            f"cluster size {cluster_size}"
        )
    rng = rng or random.Random(0)
    clusters = []
    for start in range(0, len(placement), cluster_size):
        members = tuple(placement[start:start + cluster_size])
        hotspot = rng.randrange(cluster_size) if with_hotspots else None
        clusters.append(Cluster(members=members, hotspot=hotspot))
    return clusters
