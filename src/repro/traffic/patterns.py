"""Traffic patterns: commodity generation from clusters (paper §3.1/3.3).

Patterns produce :class:`~repro.mcf.commodities.Commodity` lists that the
flow solvers consume.  Same-server pairs never yield commodities (they
are trivially satisfied under relaxed server bandwidth); same-*switch*
pairs are produced here and dropped later during switch contraction.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.errors import TrafficError
from repro.mcf.commodities import Commodity
from repro.traffic.clusters import Cluster


def broadcast_commodities(clusters: Iterable[Cluster]) -> List[Commodity]:
    """Hot spot -> every other member, unit demand, in every cluster."""
    out: List[Commodity] = []
    for cluster in clusters:
        hotspot = cluster.hotspot_server
        for i, member in enumerate(cluster.members):
            if i == cluster.hotspot or member == hotspot:
                continue
            out.append(Commodity(hotspot, member))
    _require(out)
    return out


def incast_commodities(clusters: Iterable[Cluster]) -> List[Commodity]:
    """Every other member -> hot spot (the reverse of broadcast)."""
    return [
        Commodity(c.dst, c.src, c.demand)
        for c in broadcast_commodities(clusters)
    ]


def all_to_all_commodities(clusters: Iterable[Cluster]) -> List[Commodity]:
    """Every ordered member pair in every cluster, unit demand."""
    out: List[Commodity] = []
    for cluster in clusters:
        for i, a in enumerate(cluster.members):
            for j, b in enumerate(cluster.members):
                if i == j or a == b:
                    continue
                out.append(Commodity(a, b))
    _require(out)
    return out


def permutation_commodities(
    servers: Sequence[int], rng: Optional[random.Random] = None
) -> List[Commodity]:
    """A random permutation workload (classic throughput stressor).

    Not part of the paper's evaluation, but a standard pattern for
    exercising topologies; used by examples and extension benches.
    """
    rng = rng or random.Random(0)
    if len(servers) < 2:
        raise TrafficError("permutation needs at least two servers")
    targets = list(servers)
    # Re-draw until derangement-ish: no fixed points (a few tries suffice).
    for _ in range(100):
        rng.shuffle(targets)
        if all(s != t for s, t in zip(servers, targets)):
            break
    return [
        Commodity(s, t) for s, t in zip(servers, targets) if s != t
    ]


def uniform_commodities(
    servers: Sequence[int],
    pairs: int,
    rng: Optional[random.Random] = None,
) -> List[Commodity]:
    """``pairs`` random distinct-server commodities, unit demand each."""
    rng = rng or random.Random(0)
    if len(servers) < 2:
        raise TrafficError("need at least two servers")
    out: List[Commodity] = []
    while len(out) < pairs:
        a, b = rng.sample(list(servers), 2)
        out.append(Commodity(a, b))
    return out


def _require(commodities: List[Commodity]) -> None:
    if not commodities:
        raise TrafficError(
            "pattern produced no commodities (all members co-located?)"
        )
