"""Workloads: clusters, placement policies, traffic patterns."""

from repro.traffic.clusters import (
    ALL_TO_ALL_CLUSTER_SIZE,
    BROADCAST_CLUSTER_SIZE,
    Cluster,
    cluster_count,
    make_clusters,
)
from repro.traffic.placement import (
    place_continuous,
    place_random_global,
    place_random_in_pods,
    placement_by_name,
    pod_groups,
)
from repro.traffic.flowgen import (
    DATA_MINING,
    FIXED_UNIT,
    UNIFORM,
    WEB_SEARCH,
    SizeCDF,
    hotspot_pairs,
    poisson_flows,
    uniform_pairs,
)
from repro.traffic.patterns import (
    all_to_all_commodities,
    broadcast_commodities,
    incast_commodities,
    permutation_commodities,
    uniform_commodities,
)

__all__ = [
    "ALL_TO_ALL_CLUSTER_SIZE",
    "BROADCAST_CLUSTER_SIZE",
    "Cluster",
    "DATA_MINING",
    "FIXED_UNIT",
    "SizeCDF",
    "UNIFORM",
    "WEB_SEARCH",
    "hotspot_pairs",
    "poisson_flows",
    "uniform_pairs",
    "all_to_all_commodities",
    "broadcast_commodities",
    "cluster_count",
    "incast_commodities",
    "make_clusters",
    "permutation_commodities",
    "place_continuous",
    "place_random_global",
    "place_random_in_pods",
    "placement_by_name",
    "pod_groups",
    "uniform_commodities",
]
