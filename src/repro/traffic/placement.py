"""Workload placement policies (paper §3.1).

"We consider strong, weak, and no locality of workload placement ...
the workload is placed continuously across servers, randomly in Pods,
or randomly in the entire network."

A *placement* maps logical cluster members (0 .. total_members-1) to
server ids.  Members wrap around the server pool when there are more
members than servers (see :mod:`repro.traffic.clusters`).

* :func:`place_continuous` — strong locality: member ``i`` goes to server
  ``i mod S`` in dense id order (dense ids pack racks, then Pods).
* :func:`place_random_global` — no locality: members land on uniformly
  random servers (a random permutation when members fit; balanced wrap
  otherwise).
* :func:`place_random_in_pods` — weak locality: each cluster picks random
  Pods that still have free servers and fills random free servers there,
  spilling to further random Pods when one runs out — "the worst-case
  simulation of resource fragmentation in workload placement".
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import TrafficError
from repro.topology.clos import ClosParams


def place_continuous(total_members: int, num_servers: int) -> List[int]:
    """Strong locality: consecutive members on consecutive servers."""
    _check(total_members, num_servers)
    return [i % num_servers for i in range(total_members)]


def place_random_global(
    total_members: int, num_servers: int, rng: random.Random
) -> List[int]:
    """No locality: members scattered uniformly over the whole network.

    When members fit into the pool the result is a partial random
    permutation (each server hosts at most one member, matching "each
    server being involved in a single cluster"); otherwise servers are
    recycled as evenly as possible, in random order.
    """
    _check(total_members, num_servers)
    placement: List[int] = []
    while len(placement) < total_members:
        batch = list(range(num_servers))
        rng.shuffle(batch)
        placement.extend(batch[: total_members - len(placement)])
    return placement


def place_random_in_pods(
    total_members: int,
    params: ClosParams,
    cluster_size: int,
    rng: random.Random,
) -> List[int]:
    """Weak locality: clusters packed into random Pods with free servers.

    Clusters are processed in order; each repeatedly picks a random Pod
    that still has free servers and consumes random free servers there
    until the cluster is complete.  When every server is taken and
    members remain (wrapped small-k case), the pool refills.
    """
    num_servers = params.num_servers
    _check(total_members, num_servers)
    if total_members % cluster_size != 0:
        raise TrafficError("total members must be a multiple of cluster size")

    free: List[List[int]] = [list(params.pod_servers(p)) for p in range(params.pods)]
    placement: List[int] = []
    for _ in range(total_members // cluster_size):
        needed = cluster_size
        while needed > 0:
            pods_with_free = [p for p, servers in enumerate(free) if servers]
            if not pods_with_free:
                free = [list(params.pod_servers(p)) for p in range(params.pods)]
                pods_with_free = list(range(params.pods))
            pod = rng.choice(pods_with_free)
            take = min(needed, len(free[pod]))
            chosen = rng.sample(free[pod], take)
            chosen_set = set(chosen)
            free[pod] = [s for s in free[pod] if s not in chosen_set]
            placement.extend(chosen)
            needed -= take
    return placement


def placement_by_name(
    name: str,
    total_members: int,
    params: ClosParams,
    cluster_size: int,
    rng: random.Random,
) -> List[int]:
    """Dispatch on the paper's locality names.

    ``"locality"`` -> continuous, ``"weak locality"`` -> random in Pods,
    ``"no locality"`` -> random global.
    """
    if name == "locality":
        return place_continuous(total_members, params.num_servers)
    if name == "weak locality":
        return place_random_in_pods(total_members, params, cluster_size, rng)
    if name == "no locality":
        return place_random_global(total_members, params.num_servers, rng)
    raise TrafficError(f"unknown placement policy {name!r}")


def _check(total_members: int, num_servers: int) -> None:
    if total_members < 1:
        raise TrafficError("need at least one member to place")
    if num_servers < 1:
        raise TrafficError("need at least one server")


def pod_groups(params: ClosParams) -> List[Sequence[int]]:
    """Server ids grouped by Pod (helper shared by experiments)."""
    return [params.pod_servers(p) for p in range(params.pods)]
