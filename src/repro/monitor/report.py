"""Text rendering of monitor contents: heatmap, hotspots, downtime.

The monitor's CLI surface (``flattree monitor``) and the ``fct
--monitor`` experiment print these tables — the library's equivalent
of a Grafana link-utilization dashboard, in aligned monospace text
like every other table in the repository.
"""

from __future__ import annotations

from typing import List

from repro.monitor.network import LinkSeries, NetworkMonitor, link_label, switch_label


def _cell(utilization: float) -> str:
    """3-char utilization cell: integer percent, capped at 999."""
    return f"{min(999, int(round(utilization * 100))):>3}"


def heatmap_table(
    monitor: NetworkMonitor, bins: int = 12, top: int = 10
) -> str:
    """Utilization-over-time heatmap of the busiest links.

    One row per hotspot link, one column per time bin; cells show mean
    utilization in the bin as an integer percent, ``-`` where the ring
    buffer retained no sample.  Only retained samples render (running
    peak/mean stats in the hotspot report stay exact regardless).
    """
    links = monitor.hotspots(top)
    links = [s for s in links if s.samples]
    if not links:
        return "(no link samples recorded)"
    t0, t1 = monitor.time_range()
    width = (t1 - t0) or 1.0
    name_w = max(len("link"), *(len(link_label(*s.key)) for s in links))
    header = (f"{'link':<{name_w}}  "
              + " ".join(f"{i:>3}" for i in range(bins))
              + "   peak")
    lines = [
        f"utilization % over t=[{t0:.3g}, {t1:.3g}] in {bins} bins",
        header,
        "-" * len(header),
    ]
    for series in links:
        sums = [0.0] * bins
        counts = [0] * bins
        for sample in series.samples:
            index = min(bins - 1, int((sample.t - t0) / width * bins))
            sums[index] += sample.utilization
            counts[index] += 1
        cells = [
            _cell(sums[i] / counts[i]) if counts[i] else "  -"
            for i in range(bins)
        ]
        lines.append(
            f"{link_label(*series.key):<{name_w}}  "
            + " ".join(cells)
            + f"  {_cell(series.peak)}"
        )
    return "\n".join(lines)


def _hotspot_rows(links: List[LinkSeries]) -> List[str]:
    name_w = max(len("link"), *(len(link_label(*s.key)) for s in links))
    header = (f"{'link':<{name_w}}  {'cap':>5}  {'peak':>6}  {'mean':>6}  "
              f"{'p99':>6}  {'flows':>5}  {'samples':>7}")
    rows = [header, "-" * len(header)]
    for series in links:
        rows.append(
            f"{link_label(*series.key):<{name_w}}  "
            f"{series.capacity:>5.1f}  "
            f"{series.peak:>6.3f}  "
            f"{series.mean_utilization:>6.3f}  "
            f"{series.utilization_quantile(0.99):>6.3f}  "
            f"{series.peak_flows:>5}  "
            f"{series.count:>7}"
        )
    return rows


def hotspot_report(monitor: NetworkMonitor, top: int = 10) -> str:
    """Hotspot links, busiest switches, imbalance, and downtime ledger."""
    links = monitor.hotspots(top)
    links = [s for s in links if s.count]
    lines: List[str] = []
    if not links:
        lines.append("(no link samples recorded)")
    else:
        lines.append(f"top {len(links)} links by peak utilization:")
        lines.extend(_hotspot_rows(links))
        loads = sorted(
            monitor.switch_loads().items(), key=lambda item: -item[1]
        )[:max(1, top // 2)]
        peaks = monitor.switch_peak_loads()
        lines.append("")
        lines.append("busiest switches (mean aggregate load, rate units):")
        for switch, load in loads:
            lines.append(
                f"  {switch_label(switch):<10}  mean {load:>7.3f}  "
                f"peak {peaks.get(switch, 0.0):>7.3f}"
            )
        lines.append("")
        lines.append(
            f"imbalance: gini {monitor.gini():.3f}, "
            f"max/mean {monitor.max_min_imbalance():.2f}, "
            f"peak link utilization {monitor.peak_utilization():.3f}"
        )
        lines.append(
            f"coverage: {monitor.samples_taken}/{monitor.events_seen} "
            f"allocation events sampled over "
            f"{len(monitor.series())} loaded links"
        )
    downtime = monitor.downtime()
    if downtime:
        lines.append("")
        lines.append("downtime ledger (per physical link):")
        for key, dark in sorted(
            downtime.items(), key=lambda item: (-item[1], link_label(*item[0]))
        )[:top]:
            windows = monitor.dark_windows(*key)
            lines.append(
                f"  {link_label(*key):<24}  dark {dark * 1e3:8.3f} ms "
                f"in {len(windows)} window(s)"
            )
        shown = min(top, len(downtime))
        if shown < len(downtime):
            lines.append(f"  ... and {len(downtime) - shown} more links")
        lines.append(
            f"  total: {len(downtime)} links dark for "
            f"{monitor.total_dark_time() * 1e3:.3f} link-ms"
        )
    return "\n".join(lines)
