"""sFlow/INT-style network monitoring plane over a fabric.

The paper's claims (§3.2-§3.4) are statements about *link-level load*
— flat-tree within a few percent of the random graph's path length,
zero-hop conversion, hybrid-zone isolation — yet the LP and the fluid
simulator only report endpoint aggregates.  :class:`NetworkMonitor`
closes that gap: the max-min allocator and the flowsim event loop
publish per-directed-link utilization, active-flow counts and
per-switch aggregate load at every allocation event; the conversion
engine publishes link-down/link-up events per schedule batch.  The
monitor maintains

* **bounded time series** per directed link (ring buffer of
  :class:`LinkSample`, configurable sampling ``interval`` and
  ``retention``) with exact running peak/mean even after old samples
  are evicted;
* a **downtime ledger**: dark windows per physical link, the
  audit-side cross-check of ``Schedule.blink_window`` and the input to
  :meth:`NetworkMonitor.dark_traffic` (how much in-flight traffic
  traversed dark links);
* **derived stats**: top-K hotspot links, per-switch aggregate load,
  Gini / max-min imbalance over mean link utilization.

When :mod:`repro.obs` telemetry is enabled, every recorded sample and
down/up transition is exported through the current sink as
``link_sample`` / ``link_down`` / ``link_up`` JSONL events (see
``docs/observability.md`` for the schemas).  A monitor attached to
nothing costs nothing: all publishers take ``monitor=None`` fast paths.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError
from repro.obs.stats import gini as _gini
from repro.obs.stats import nearest_rank_quantile, quantile_summary
from repro.routing.base import Path
from repro.topology.elements import Network, SwitchId

LinkKey = Tuple[SwitchId, SwitchId]

#: Default sampling interval in simulated seconds (0 = every event).
DEFAULT_INTERVAL = 0.0
#: Default ring-buffer retention per directed link, in samples.
DEFAULT_RETENTION = 1024
#: Event types the monitor exports through the obs sinks.
CAPABILITIES: Tuple[str, ...] = ("link_sample", "link_down", "link_up")


def switch_label(switch: SwitchId) -> str:
    """Compact human-readable switch name (``agg0.1``, ``core3``)."""
    kind = getattr(switch, "kind", None)
    if kind in ("edge", "agg"):
        return f"{kind}{switch.pod}.{switch.index}"
    if kind == "core":
        return f"core{switch.index}"
    if kind == "switch":
        return f"sw{switch.index}"
    return repr(switch)


def link_label(u: SwitchId, v: SwitchId) -> str:
    """Directed link name used in events and reports."""
    return f"{switch_label(u)}->{switch_label(v)}"


@dataclass(frozen=True)
class LinkSample:
    """One utilization observation of a directed link."""

    t: float
    rate: float
    utilization: float
    active_flows: int


class LinkSeries:
    """Bounded time series plus exact running stats for one link.

    The ring buffer holds the most recent ``retention`` samples; the
    running ``peak``/``mean`` statistics cover *every* observation ever
    recorded, so eviction never distorts the derived stats.
    """

    __slots__ = ("key", "capacity", "samples", "count", "peak",
                 "peak_flows", "_rate_sum", "_util_sum")

    def __init__(self, key: LinkKey, capacity: float, retention: int) -> None:
        self.key = key
        self.capacity = capacity
        self.samples: Deque[LinkSample] = deque(maxlen=retention)
        self.count = 0
        self.peak = 0.0
        self.peak_flows = 0
        self._rate_sum = 0.0
        self._util_sum = 0.0

    def record(self, sample: LinkSample) -> None:
        self.samples.append(sample)
        self.count += 1
        self._rate_sum += sample.rate
        self._util_sum += sample.utilization
        if sample.utilization > self.peak:
            self.peak = sample.utilization
        if sample.active_flows > self.peak_flows:
            self.peak_flows = sample.active_flows

    @property
    def mean_utilization(self) -> float:
        return self._util_sum / self.count if self.count else 0.0

    @property
    def mean_rate(self) -> float:
        return self._rate_sum / self.count if self.count else 0.0

    def utilization_quantile(self, q: float) -> float:
        """Nearest-rank quantile over the *retained* samples."""
        return nearest_rank_quantile(
            (s.utilization for s in self.samples), q
        )

    def utilization_summary(self) -> Dict[str, float]:
        """p50/p90/p99 utilization over the retained samples."""
        return quantile_summary([s.utilization for s in self.samples])

    def snapshot(self) -> Dict[str, object]:
        return {
            "link": link_label(*self.key),
            "capacity": self.capacity,
            "samples": self.count,
            "peak_utilization": self.peak,
            "mean_utilization": self.mean_utilization,
            "peak_active_flows": self.peak_flows,
        }


class NetworkMonitor:
    """Monitoring plane: link counters, switch loads, downtime ledger.

    Publishers call :meth:`on_allocation` (allocator/flowsim) and
    :meth:`link_down` / :meth:`link_up` (conversion engine); consumers
    read :meth:`hotspots`, :meth:`switch_loads`, :meth:`gini`,
    :meth:`downtime` and :meth:`dark_traffic`, or render the report
    tables in :mod:`repro.monitor.report`.
    """

    def __init__(
        self,
        net: Network,
        interval: float = DEFAULT_INTERVAL,
        retention: int = DEFAULT_RETENTION,
    ) -> None:
        if interval < 0:
            raise ReproError("sampling interval must be non-negative")
        if retention < 1:
            raise ReproError("retention must be at least 1 sample")
        self.net = net
        self.interval = interval
        self.retention = retention
        self._capacity: Dict[LinkKey, float] = {}
        self._bind_capacities(net)
        self._series: Dict[LinkKey, LinkSeries] = {}
        self._switch_sum: Dict[SwitchId, float] = {}
        self._switch_peak: Dict[SwitchId, float] = {}
        self.events_seen = 0
        self.samples_taken = 0
        self._last_sample_t = -math.inf
        self.last_rate_total = 0.0
        self.last_sample_time: Optional[float] = None
        # Downtime ledger: undirected link -> list of [down_t, up_t|None].
        self._dark: Dict[frozenset, List[List[Optional[float]]]] = {}
        self._dark_keys: Dict[frozenset, LinkKey] = {}

    def _bind_capacities(self, net: Network) -> None:
        for u, v, cap in net.edge_list():
            self._capacity[(u, v)] = cap
            self._capacity[(v, u)] = cap

    def rebind(self, net: Network) -> None:
        """Point the monitor at a new materialization of the fabric.

        Used across a live conversion: series for surviving links keep
        accumulating, links new to the fabric get fresh series, and the
        downtime ledger carries over untouched, so one monitor holds
        the utilization trajectory of the whole before/after timeline.
        """
        self.net = net
        self._bind_capacities(net)

    # ------------------------------------------------------------------
    # publishers
    # ------------------------------------------------------------------
    def on_allocation(
        self,
        t: float,
        link_rates: Dict[LinkKey, float],
        link_flows: Optional[Dict[LinkKey, int]] = None,
    ) -> None:
        """Record one allocation event (rate per loaded directed link).

        ``interval`` throttles recording: events closer than the
        sampling interval to the previous recorded sample are counted
        but not sampled, bounding both memory and JSONL volume.
        """
        self.events_seen += 1
        if (self.interval > 0.0 and self.samples_taken
                and t - self._last_sample_t < self.interval):
            return
        self._last_sample_t = t
        self.samples_taken += 1
        link_flows = link_flows or {}
        export = obs.enabled()
        total = 0.0
        switch_load: Dict[SwitchId, float] = {}
        for key, rate in link_rates.items():
            capacity = self._capacity.get(key)
            if capacity is None:
                capacity = self.net.capacity(*key)
                if capacity <= 0:
                    raise ReproError(
                        f"allocation on unknown link {link_label(*key)}"
                    )
                self._capacity[key] = capacity
            series = self._series.get(key)
            if series is None:
                series = LinkSeries(key, capacity, self.retention)
                self._series[key] = series
            utilization = rate / capacity
            flows = link_flows.get(key, 0)
            series.record(LinkSample(t, rate, utilization, flows))
            total += rate
            for switch in key:
                switch_load[switch] = switch_load.get(switch, 0.0) + rate
            if export:
                obs.publish(
                    "link_sample", "monitor.link_sample",
                    t=t,
                    link=link_label(*key),
                    value=utilization,
                    utilization=utilization,
                    rate=rate,
                    capacity=capacity,
                    active_flows=flows,
                )
        for switch, load in switch_load.items():
            self._switch_sum[switch] = (
                self._switch_sum.get(switch, 0.0) + load
            )
            if load > self._switch_peak.get(switch, 0.0):
                self._switch_peak[switch] = load
        self.last_rate_total = total
        self.last_sample_time = t
        obs.incr("monitor.samples")
        obs.incr("monitor.link_samples", len(link_rates))

    def link_down(self, t: float, u: SwitchId, v: SwitchId) -> None:
        """A physical link goes dark (conversion batch commits)."""
        key = frozenset((u, v))
        windows = self._dark.setdefault(key, [])
        if windows and windows[-1][1] is None:
            raise ReproError(
                f"link {link_label(u, v)} is already dark"
            )
        windows.append([t, None])
        self._dark_keys.setdefault(key, (u, v))
        obs.incr("monitor.link_down_events")
        obs.publish(
            "link_down", "monitor.link_down",
            t=t, link=link_label(u, v), value=1,
        )

    def link_up(self, t: float, u: SwitchId, v: SwitchId) -> None:
        """A dark link is restored; closes its open downtime window."""
        key = frozenset((u, v))
        windows = self._dark.get(key)
        if not windows or windows[-1][1] is not None:
            raise ReproError(
                f"link_up for {link_label(u, v)} without a matching "
                f"link_down"
            )
        down_t = windows[-1][0]
        if t < down_t:
            raise ReproError(
                f"link {link_label(u, v)} comes up at {t} before it "
                f"went down at {down_t}"
            )
        windows[-1][1] = t
        obs.incr("monitor.link_up_events")
        obs.publish(
            "link_up", "monitor.link_up",
            t=t, link=link_label(u, v), value=1, dark_s=t - down_t,
        )

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    def series(self) -> List[LinkSeries]:
        """All tracked link series (links that ever carried traffic)."""
        return list(self._series.values())

    def link_series(self, u: SwitchId, v: SwitchId) -> Optional[LinkSeries]:
        return self._series.get((u, v))

    def hotspots(self, k: int = 10, by: str = "peak") -> List[LinkSeries]:
        """Top-``k`` busiest links by peak or mean utilization."""
        if by not in ("peak", "mean"):
            raise ReproError(f"hotspot ordering must be peak/mean, not {by!r}")
        return sorted(
            self._series.values(),
            key=lambda s: (
                -(s.peak if by == "peak" else s.mean_utilization),
                link_label(*s.key),
            ),
        )[:k]

    def switch_loads(self) -> Dict[SwitchId, float]:
        """Mean aggregate load (sum of incident link rates) per switch."""
        if not self.samples_taken:
            return {}
        return {
            s: total / self.samples_taken
            for s, total in self._switch_sum.items()
        }

    def switch_peak_loads(self) -> Dict[SwitchId, float]:
        return dict(self._switch_peak)

    def gini(self) -> float:
        """Gini coefficient over mean utilization of *all* fabric links.

        Idle links count as zero load: a fabric where traffic crowds
        onto a few links scores high even if those links are balanced
        among themselves.
        """
        means = {key: 0.0 for key in self._capacity}
        for key, series in self._series.items():
            means[key] = series.mean_utilization
        return _gini(means.values())

    def max_min_imbalance(self) -> float:
        """Max over links of mean utilization / fabric-wide mean (>= 1).

        1.0 is perfectly balanced; large values mean hotspot links run
        far above the average link.  Returns 0 with no samples.
        """
        if not self._series:
            return 0.0
        means = [0.0] * (len(self._capacity) - len(self._series))
        means.extend(s.mean_utilization for s in self._series.values())
        overall = sum(means) / len(means)
        if overall == 0:
            return 0.0
        return max(means) / overall

    def peak_utilization(self) -> float:
        """Highest utilization any link ever reached."""
        return max((s.peak for s in self._series.values()), default=0.0)

    def time_range(self) -> Tuple[float, float]:
        """(first, last) sample time over the retained samples."""
        first = math.inf
        last = -math.inf
        for series in self._series.values():
            if series.samples:
                first = min(first, series.samples[0].t)
                last = max(last, series.samples[-1].t)
        if first is math.inf:
            return (0.0, 0.0)
        return (first, last)

    # ------------------------------------------------------------------
    # downtime ledger
    # ------------------------------------------------------------------
    def dark_windows(self, u: SwitchId, v: SwitchId) -> List[Tuple[float, float]]:
        """Closed dark windows of a physical link (direction-agnostic)."""
        return [
            (t0, t1)
            for t0, t1 in self._dark.get(frozenset((u, v)), [])
            if t1 is not None
        ]

    def open_dark_links(self) -> List[LinkKey]:
        """Links currently dark (down without a matching up)."""
        return [
            self._dark_keys[key]
            for key, windows in self._dark.items()
            if windows and windows[-1][1] is None
        ]

    def downtime(self) -> Dict[LinkKey, float]:
        """Total dark seconds per physical link (closed windows only)."""
        out: Dict[LinkKey, float] = {}
        for key, windows in self._dark.items():
            total = sum(t1 - t0 for t0, t1 in windows if t1 is not None)
            out[self._dark_keys[key]] = total
        return out

    def total_dark_time(self) -> float:
        """Sum of per-link dark time (link-seconds of downtime)."""
        return sum(self.downtime().values())

    def dark_traffic(
        self, flows: Iterable[Tuple[Path, float, float]]
    ) -> float:
        """Flow-seconds of in-flight traffic that traversed dark links.

        ``flows`` is ``(path, start, finish)`` per flow.  For every
        (flow, link on its path, closed dark window) triple, the overlap
        of the flow's lifetime with the window accumulates — the
        disruption a drain-less conversion would have inflicted.
        """
        windows_by_link = {
            key: [(t0, t1) for t0, t1 in windows if t1 is not None]
            for key, windows in self._dark.items()
        }
        if not windows_by_link:
            return 0.0
        total = 0.0
        for path, start, finish in flows:
            for u, v in path.edges():
                for t0, t1 in windows_by_link.get(frozenset((u, v)), ()):
                    total += max(0.0, min(finish, t1) - max(start, t0))
        return total

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable summary of everything the monitor holds."""
        return {
            "net": self.net.name,
            "interval": self.interval,
            "retention": self.retention,
            "events_seen": self.events_seen,
            "samples_taken": self.samples_taken,
            "links_tracked": len(self._series),
            "peak_utilization": self.peak_utilization(),
            "gini": self.gini(),
            "max_min_imbalance": self.max_min_imbalance(),
            "links": [s.snapshot() for s in self.hotspots(len(self._series))],
            "switch_loads": {
                switch_label(s): load
                for s, load in sorted(
                    self.switch_loads().items(),
                    key=lambda item: -item[1],
                )
            },
            "downtime": {
                link_label(*key): dark
                for key, dark in self.downtime().items()
            },
            "total_dark_s": self.total_dark_time(),
        }

    def describe(self) -> str:
        interval = ("every event" if self.interval == 0
                    else f"{self.interval:g}s")
        return (
            f"monitor({self.net.name}: {len(self._series)} links, "
            f"{self.samples_taken}/{self.events_seen} events sampled, "
            f"interval {interval}, retention {self.retention})"
        )
