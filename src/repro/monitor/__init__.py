"""repro.monitor — the network-plane observability layer.

Where :mod:`repro.obs` watches the *process* (spans, counters,
wall-clock), this package watches the *network*: per-directed-link
utilization time series fed by the max-min allocator and the flowsim
event loop, per-switch aggregate load, conversion downtime ledgers fed
by the reconfiguration engine, and derived hotspot/imbalance stats.
See ``docs/observability.md`` for the metric catalog and
``flattree monitor`` for the CLI surface.
"""

from repro.monitor.network import (
    CAPABILITIES,
    DEFAULT_INTERVAL,
    DEFAULT_RETENTION,
    LinkSample,
    LinkSeries,
    NetworkMonitor,
    link_label,
    switch_label,
)
from repro.monitor.report import heatmap_table, hotspot_report

__all__ = [
    "CAPABILITIES",
    "DEFAULT_INTERVAL",
    "DEFAULT_RETENTION",
    "LinkSample",
    "LinkSeries",
    "NetworkMonitor",
    "heatmap_table",
    "hotspot_report",
    "link_label",
    "switch_label",
]
