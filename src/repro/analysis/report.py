"""Topology comparison reports: one table summarizing a set of networks.

Experiment drivers and the examples want a quick "how do these networks
compare structurally" answer without running the full figure pipelines.
:func:`compare_networks` computes the headline metrics for each network
— average path length, diameter, server spread by layer, bisection
estimate — and renders them side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.cuts import random_bisection_bandwidth
from repro.topology.elements import Network
from repro.topology.stats import (
    average_server_path_length,
    server_counts_by_kind,
    switch_distances,
)


@dataclass
class TopologySummary:
    """Headline structural metrics of one network."""

    name: str
    switches: int
    servers: int
    cables: int
    average_path_length: float
    diameter: int
    bisection: float
    servers_by_kind: Dict[str, int]


def summarize(
    net: Network,
    bisection_trials: int = 4,
    rng: Optional[random.Random] = None,
) -> TopologySummary:
    """Compute a :class:`TopologySummary` for one network."""
    distances = switch_distances(net)
    dist = distances[0]
    finite = dist[np.isfinite(dist)]
    return TopologySummary(
        name=net.name,
        switches=net.num_switches,
        servers=net.num_servers,
        cables=net.num_cables,
        average_path_length=average_server_path_length(
            net, distances=distances
        ),
        diameter=int(finite.max()),
        bisection=random_bisection_bandwidth(
            net, trials=bisection_trials, rng=rng or random.Random(0)
        ),
        servers_by_kind=server_counts_by_kind(net),
    )


def compare_networks(
    networks: List[Network],
    bisection_trials: int = 4,
    seed: int = 0,
) -> str:
    """Render a side-by-side comparison table for several networks."""
    summaries = [
        summarize(net, bisection_trials, random.Random(seed))
        for net in networks
    ]
    rows = [
        ("switches", lambda s: str(s.switches)),
        ("servers", lambda s: str(s.servers)),
        ("cables", lambda s: str(s.cables)),
        ("avg path length", lambda s: f"{s.average_path_length:.3f}"),
        ("diameter", lambda s: str(s.diameter)),
        ("bisection (est)", lambda s: f"{s.bisection:.1f}"),
        (
            "servers by layer",
            lambda s: ",".join(
                f"{kind}:{count}"
                for kind, count in sorted(s.servers_by_kind.items())
            ),
        ),
    ]
    name_width = max(len("metric"), *(len(r[0]) for r in rows))
    col_widths = [
        max(len(s.name), *(len(fn(s)) for _label, fn in rows))
        for s in summaries
    ]
    header = "  ".join(
        ["metric".ljust(name_width)]
        + [s.name.rjust(w) for s, w in zip(summaries, col_widths)]
    )
    lines = [header, "-" * len(header)]
    for label, fn in rows:
        lines.append(
            "  ".join(
                [label.ljust(name_width)]
                + [fn(s).rjust(w) for s, w in zip(summaries, col_widths)]
            )
        )
    return "\n".join(lines)
