"""Cut-based capacity metrics: bisection bandwidth and pair cuts.

The paper argues topologies by throughput; operators also reason with
**bisection bandwidth** — the worst cut splitting the servers in half.
Exact bisection is NP-hard, so this module provides the standard
estimates used in the topology literature:

* :func:`random_bisection_bandwidth` — min over random server halvings
  of the max-flow between the halves' switch sets (a randomized
  estimate; switches hosting servers of both halves carry transit only,
  so the value is a comparison signal rather than a bound);
* :func:`sparsest_pair_cut` — min over sampled switch pairs of their
  max-flow (a cheap lower-level capacity signal used by tests).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import maximum_flow

from repro.errors import SolverError
from repro.topology.elements import Network, SwitchId

_SCALE = 10_000


def _capacity_matrix(
    net: Network, extra_nodes: int = 0
) -> Tuple[sp.csr_matrix, Dict[SwitchId, int]]:
    index = net.switch_index()
    n = len(index) + extra_nodes
    rows, cols, vals = [], [], []
    for u, v, cap in net.edge_list():
        ui, vi = index[u], index[v]
        scaled = int(round(cap * _SCALE))
        rows.extend((ui, vi))
        cols.extend((vi, ui))
        vals.extend((scaled, scaled))
    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(n, n), dtype=np.int64
    )
    return matrix, index


def flow_between_sets(
    net: Network, side_a, side_b
) -> float:
    """Max flow from switch set ``side_a`` to ``side_b`` (super nodes)."""
    side_a, side_b = set(side_a), set(side_b)
    if not side_a or not side_b:
        raise SolverError("both sides of a cut need at least one switch")
    if side_a & side_b:
        raise SolverError("cut sides overlap")
    base, index = _capacity_matrix(net, extra_nodes=2)
    n = len(index)
    source, sink = n, n + 1
    # scipy's maximum_flow requires int32; one billion dwarfs any real
    # cut (total fabric capacity stays far below it) without overflow.
    big = 1_000_000_000
    lil = base.tolil()
    for switch in side_a:
        lil[source, index[switch]] = big
    for switch in side_b:
        lil[index[switch], sink] = big
    result = maximum_flow(lil.tocsr().astype(np.int32), source, sink)
    return result.flow_value / _SCALE


def random_bisection_bandwidth(
    net: Network,
    trials: int = 8,
    rng: Optional[random.Random] = None,
) -> float:
    """Estimate bisection bandwidth over random server halvings.

    Servers are split into equal halves uniformly at random; each trial
    measures the max flow between the two halves' switch sets (switches
    hosting servers from both halves join neither side's super node and
    simply carry transit).  The minimum over trials is reported.
    """
    rng = rng or random.Random(0)
    servers = sorted(net.servers())
    if len(servers) < 2:
        raise SolverError("bisection needs at least two servers")
    best = float("inf")
    for _ in range(trials):
        shuffled = list(servers)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2
        left = {net.server_switch(s) for s in shuffled[:half]}
        right = {net.server_switch(s) for s in shuffled[half:]}
        left, right = left - right, right - left
        if not left or not right:
            continue
        best = min(best, flow_between_sets(net, left, right))
    if best == float("inf"):
        raise SolverError("all trials degenerated (too few switches?)")
    return best


def sparsest_pair_cut(
    net: Network,
    samples: int = 16,
    rng: Optional[random.Random] = None,
) -> float:
    """Min max-flow over sampled switch pairs (capacity floor signal)."""
    from repro.mcf.maxflow import single_pair_max_flow

    rng = rng or random.Random(0)
    switches = [s for s in net.switches() if net.degree(s) > 0]
    if len(switches) < 2:
        raise SolverError("need two connected switches")
    best = float("inf")
    for _ in range(samples):
        u, v = rng.sample(switches, 2)
        best = min(best, single_pair_max_flow(net, u, v))
    return best
