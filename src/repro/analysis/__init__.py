"""Analysis helpers: cut metrics and topology comparison reports."""

from repro.analysis.cuts import (
    flow_between_sets,
    random_bisection_bandwidth,
    sparsest_pair_cut,
)
from repro.analysis.report import TopologySummary, compare_networks, summarize

__all__ = [
    "TopologySummary",
    "compare_networks",
    "flow_between_sets",
    "random_bisection_bandwidth",
    "sparsest_pair_cut",
    "summarize",
]
