"""repro — full reproduction of *Flat-tree: A Convertible Data Center
Network Architecture from Clos to Random Graph* (Xia & Ng, HotNets 2016).

Public API layers:

* :mod:`repro.topology` — network model and the baseline builders
  (fat-tree, Jellyfish random graph, two-stage random graph) plus graph
  metrics and audits;
* :mod:`repro.core` — the paper's contribution: converter switches,
  flat-tree Pods, Pod-core and inter-Pod wiring, the conversion engine,
  hybrid zones, (m, n) profiling, and the centralized controller;
* :mod:`repro.routing` — ECMP, k-shortest-paths, two-level fat-tree
  routing, and pre-computed SDN programs;
* :mod:`repro.mcf` — maximum concurrent multi-commodity flow (exact LP
  and Garg-Könemann approximation), the paper's throughput metric;
* :mod:`repro.traffic` — cluster workloads and placement policies;
* :mod:`repro.flowsim` — flow-level fluid simulation (extension);
* :mod:`repro.experiments` — one module per paper figure/table;
* :mod:`repro.obs` — telemetry: metrics registry, span tracing, sinks
  (disabled by default; ``obs.enable()`` or the CLI's ``--telemetry``).

Quickstart::

    from repro import FlatTree, FlatTreeDesign, Mode, convert

    design = FlatTreeDesign.for_fat_tree(k=8)
    flattree = FlatTree(design)
    network = convert(flattree, Mode.GLOBAL_RANDOM)
"""

from repro import obs
from repro.core.controller import Controller, ReconfigurationPlan
from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.profiling import profile_mn, profiled_design
from repro.core.zones import ZoneLayout, proportional_layout
from repro.errors import (
    ConfigurationError,
    PortBudgetError,
    ReproError,
    RoutingError,
    SolverError,
    TopologyError,
    TrafficError,
    WiringError,
)
from repro.topology.clos import ClosParams, fat_tree_params
from repro.topology.elements import Network
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree
from repro.topology.twostage import build_two_stage

__version__ = "1.0.0"

__all__ = [
    "ClosParams",
    "ConfigurationError",
    "Controller",
    "FlatTree",
    "FlatTreeDesign",
    "Mode",
    "Network",
    "PortBudgetError",
    "ReconfigurationPlan",
    "ReproError",
    "RoutingError",
    "SolverError",
    "TopologyError",
    "TrafficError",
    "WiringError",
    "ZoneLayout",
    "__version__",
    "build_fat_tree",
    "build_jellyfish_like_fat_tree",
    "build_two_stage",
    "convert",
    "fat_tree_params",
    "obs",
    "profile_mn",
    "profiled_design",
    "proportional_layout",
]
