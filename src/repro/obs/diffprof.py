"""Differential profiling: where a wall-time delta actually went.

The pairwise bench comparator (``tools.perfreport compare``) can say
*that* a session regressed; this module says *where*.  It aligns two
performance recordings and attributes the delta per function / span
path, in three input flavors sharing one result shape:

* **span-tree diff** (:func:`diff_profiles`) — two
  :class:`repro.obs.perf.Profile` trees from telemetry JSONL traces,
  aligned by span *path* so `cli/convert/mcf.exact` in the base run
  lines up with the same phase in the new run even when siblings share
  a name.  Each aligned path carries cumulative / self wall-time and
  ``mem_peak_kb`` deltas and is classified ``grown`` / ``shrunk`` /
  ``steady`` / ``new`` / ``gone`` / ``below-floor``; the two critical
  paths are compared level by level for the divergence summary.
* **hotspot-campaign diff** (:func:`diff_hotspot_documents`) — two
  ``HOTSPOTS_<seq>.json`` artifacts (``flattree hotspots``), aligned by
  sampled function key over estimated self/cum seconds.
* **bench-session diff** (:func:`diff_bench_sessions`) — two
  ``BENCH_<seq>.json`` sessions, aligned by bench node id over wall
  time (the same join the comparator uses, rendered as attribution).

**Differential flamegraphs** ride along: :func:`subtract_folded` takes
two folded-stack exports (``a;b;c <usec>`` lines, as produced by
``Profile.folded`` and ``SampleProfile.folded``) and emits the
two-column ``stack base_usec new_usec`` format that Brendan Gregg's
``difffolded.pl`` produces and ``flamegraph.pl`` renders red/blue —
so ``perfreport diff --folded out.folded`` shows where an optimization
*moved* time, for traces and campaigns alike.

Classification is noise-tolerant with the same defaults as the bench
gate: a path must grow beyond ``1 + tolerance`` (default 25%) and sit
above the runtime floor (default 5 ms) on at least one side to count.
A diff with at least one ``grown`` path carries ``exit_code`` 1 — the
CLI (``python -m tools.perfreport diff``) forwards it.

This module is a replay-critical sink for flatlint FT007: its reports
must be byte-identical across replays, so no wall clock or RNG may
reach it.  The format is documented in ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.obs.perf import Profile
from repro.obs.trace import event

__all__ = [
    "DEFAULT_MIN_RUNTIME_S",
    "DEFAULT_TOLERANCE",
    "PathDelta",
    "ProfileDiff",
    "diff_bench_sessions",
    "diff_hotspot_documents",
    "diff_profiles",
    "emit_diff_event",
    "parse_folded",
    "render_json",
    "render_text",
    "subtract_folded",
]

#: Relative growth tolerated before a path counts as ``grown``; mirrors
#: the pairwise bench comparator so the two gates agree on "noise".
DEFAULT_TOLERANCE = 0.25

#: Paths under this on both sides are ``below-floor`` and never judged.
DEFAULT_MIN_RUNTIME_S = 0.005


@dataclass
class PathDelta:
    """One aligned path's judgement across the two recordings."""

    path: str
    name: str
    status: str  # grown | shrunk | steady | new | gone | below-floor
    base_cum_s: float
    new_cum_s: float
    base_self_s: float
    new_self_s: float
    base_calls: int
    new_calls: int
    base_mem_kb: Optional[float] = None
    new_mem_kb: Optional[float] = None

    @property
    def cum_delta_s(self) -> float:
        return self.new_cum_s - self.base_cum_s

    @property
    def self_delta_s(self) -> float:
        return self.new_self_s - self.base_self_s

    @property
    def ratio(self) -> Optional[float]:
        if self.base_cum_s > 0:
            return self.new_cum_s / self.base_cum_s
        return None

    @property
    def mem_delta_kb(self) -> Optional[float]:
        if self.base_mem_kb is None and self.new_mem_kb is None:
            return None
        return (self.new_mem_kb or 0.0) - (self.base_mem_kb or 0.0)


@dataclass
class ProfileDiff:
    """The full attribution of ``diff BASE NEW``."""

    kind: str  # trace | hotspots | bench
    base_label: str
    new_label: str
    tolerance: float
    min_runtime_s: float
    base_total_s: float
    new_total_s: float
    deltas: List[PathDelta] = field(default_factory=list)
    #: (name, cum_s) along each recording's critical path (traces only).
    critical_base: List[Tuple[str, float]] = field(default_factory=list)
    critical_new: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def total_delta_s(self) -> float:
        return self.new_total_s - self.base_total_s

    @property
    def grown(self) -> List[PathDelta]:
        return [d for d in self.deltas if d.status == "grown"]

    @property
    def shrunk(self) -> List[PathDelta]:
        return [d for d in self.deltas if d.status == "shrunk"]

    @property
    def exit_code(self) -> int:
        return 1 if self.grown else 0

    def critical_divergence(self) -> Optional[int]:
        """First level where the two critical paths name different spans.

        ``None`` when either path is empty or they agree level by level
        up to the shorter one's depth.
        """
        if not self.critical_base or not self.critical_new:
            return None
        for depth, (base, new) in enumerate(
                zip(self.critical_base, self.critical_new)):
            if base[0] != new[0]:
                return depth
        return None


# ----------------------------------------------------------------------
# alignment
# ----------------------------------------------------------------------

@dataclass
class _PathStats:
    """One side's accounting for every span occurrence sharing a path."""

    path: str
    name: str
    calls: int = 0
    cum_s: float = 0.0
    self_s: float = 0.0
    mem_kb: Optional[float] = None


def _collapse_profile(profile: Profile) -> Dict[str, _PathStats]:
    stats: Dict[str, _PathStats] = {}
    for node in profile.walk():
        entry = stats.setdefault(node.path,
                                 _PathStats(path=node.path, name=node.name))
        entry.calls += 1
        entry.cum_s += node.duration_s
        entry.self_s += node.self_s
        if node.mem_peak_kb is not None:
            entry.mem_kb = max(entry.mem_kb or 0.0, node.mem_peak_kb)
    return stats


def _judge(base: Optional[_PathStats], new: Optional[_PathStats],
           tolerance: float, min_runtime_s: float) -> PathDelta:
    either = new if new is not None else base
    if either is None:  # pragma: no cover - _align never produces this
        raise ReproError("internal: aligned a path present on neither side")
    path = either.path
    name = either.name
    base_cum = base.cum_s if base is not None else 0.0
    new_cum = new.cum_s if new is not None else 0.0
    if base is None:
        status = "below-floor" if new_cum < min_runtime_s else "new"
    elif new is None:
        status = "below-floor" if base_cum < min_runtime_s else "gone"
    elif max(base_cum, new_cum) < min_runtime_s:
        status = "below-floor"
    elif new_cum > base_cum * (1 + tolerance):
        status = "grown"
    elif new_cum < base_cum * (1 - tolerance):
        status = "shrunk"
    else:
        status = "steady"
    return PathDelta(
        path=path, name=name, status=status,
        base_cum_s=base_cum, new_cum_s=new_cum,
        base_self_s=base.self_s if base is not None else 0.0,
        new_self_s=new.self_s if new is not None else 0.0,
        base_calls=base.calls if base is not None else 0,
        new_calls=new.calls if new is not None else 0,
        base_mem_kb=base.mem_kb if base is not None else None,
        new_mem_kb=new.mem_kb if new is not None else None,
    )


def _align(base: Mapping[str, _PathStats], new: Mapping[str, _PathStats],
           tolerance: float, min_runtime_s: float) -> List[PathDelta]:
    deltas = [
        _judge(base.get(path), new.get(path), tolerance, min_runtime_s)
        for path in sorted(set(base) | set(new))
    ]
    deltas.sort(key=lambda d: (-abs(d.cum_delta_s), d.path))
    return deltas


def diff_profiles(
    base: Profile,
    new: Profile,
    tolerance: float = DEFAULT_TOLERANCE,
    min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
    base_label: str = "base",
    new_label: str = "new",
) -> ProfileDiff:
    """Span-tree diff of two reconstructed telemetry profiles."""
    deltas = _align(_collapse_profile(base), _collapse_profile(new),
                    tolerance, min_runtime_s)
    return ProfileDiff(
        kind="trace", base_label=base_label, new_label=new_label,
        tolerance=tolerance, min_runtime_s=min_runtime_s,
        base_total_s=base.total_s, new_total_s=new.total_s,
        deltas=deltas,
        critical_base=[(n.name, n.duration_s) for n in base.critical_path()],
        critical_new=[(n.name, n.duration_s) for n in new.critical_path()],
    )


def _collapse_hotspots(
        document: Mapping[str, object]) -> Dict[str, _PathStats]:
    stats: Dict[str, _PathStats] = {}
    functions = document.get("functions")
    for entry in functions if isinstance(functions, list) else []:
        if not isinstance(entry, dict):
            continue
        key = str(entry.get("key", ""))
        if not key:
            continue
        stats[key] = _PathStats(
            path=key, name=key,
            calls=int(entry.get("self_samples", 0) or 0),
            cum_s=float(entry.get("cum_s", 0.0) or 0.0),
            self_s=float(entry.get("self_s", 0.0) or 0.0),
        )
    return stats


def diff_hotspot_documents(
    base: Mapping[str, object],
    new: Mapping[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
    base_label: str = "base",
    new_label: str = "new",
) -> ProfileDiff:
    """Function-level diff of two ``HOTSPOTS_*.json`` campaigns.

    ``calls`` carries self-sample counts; times are the campaigns'
    estimated seconds (samples x period), so two campaigns are only
    comparable when recorded at similar rates over similar batteries —
    the ``k`` / ``hz`` header fields are surfaced by the CLI renderer.
    """
    deltas = _align(_collapse_hotspots(base), _collapse_hotspots(new),
                    tolerance, min_runtime_s)
    return ProfileDiff(
        kind="hotspots", base_label=base_label, new_label=new_label,
        tolerance=tolerance, min_runtime_s=min_runtime_s,
        base_total_s=float(base.get("duration_s", 0.0) or 0.0),
        new_total_s=float(new.get("duration_s", 0.0) or 0.0),
        deltas=deltas,
    )


def _collapse_bench(session: Mapping[str, object]) -> Dict[str, _PathStats]:
    stats: Dict[str, _PathStats] = {}
    benchmarks = session.get("benchmarks")
    for key, entry in (benchmarks.items()
                       if isinstance(benchmarks, dict) else []):
        if not isinstance(entry, dict):
            continue
        wall = entry.get("wall_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            continue
        rounds = entry.get("rounds")
        stats[str(key)] = _PathStats(
            path=str(key), name=str(key),
            calls=rounds if isinstance(rounds, int)
            and not isinstance(rounds, bool) else 1,
            cum_s=float(wall), self_s=float(wall),
        )
    return stats


def diff_bench_sessions(
    base: Mapping[str, object],
    new: Mapping[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
    base_label: str = "base",
    new_label: str = "new",
) -> ProfileDiff:
    """Per-bench diff of two ``BENCH_*.json`` sessions."""
    base_stats = _collapse_bench(base)
    new_stats = _collapse_bench(new)
    deltas = _align(base_stats, new_stats, tolerance, min_runtime_s)
    return ProfileDiff(
        kind="bench", base_label=base_label, new_label=new_label,
        tolerance=tolerance, min_runtime_s=min_runtime_s,
        base_total_s=sum(s.cum_s for s in base_stats.values()),
        new_total_s=sum(s.cum_s for s in new_stats.values()),
        deltas=deltas,
    )


# ----------------------------------------------------------------------
# differential flamegraphs (folded-stack subtraction)
# ----------------------------------------------------------------------

def parse_folded(lines: Iterable[str]) -> Dict[str, int]:
    """Decode ``stack <usec>`` lines; identical stacks are summed."""
    weights: Dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        stack, _, weight = line.rpartition(" ")
        if not stack or not weight.lstrip("-").isdigit():
            raise ReproError(
                f"folded line {lineno} is not 'frames <usec>': {line!r}")
        weights[stack] = weights.get(stack, 0) + int(weight)
    return weights


def subtract_folded(base: Mapping[str, int],
                    new: Mapping[str, int]) -> List[str]:
    """Two-column differential folded stacks: ``stack base_us new_us``.

    The output is the format ``difffolded.pl`` produces, which
    ``flamegraph.pl`` renders as a red/blue differential flame graph
    (red = grew, blue = shrank); stacks absent on one side carry a 0
    on that side.  Lines are sorted by stack for determinism.
    """
    return [
        f"{stack} {base.get(stack, 0)} {new.get(stack, 0)}"
        for stack in sorted(set(base) | set(new))
    ]


# ----------------------------------------------------------------------
# rendering + wire event
# ----------------------------------------------------------------------

_STATUS_ORDER = {"grown": 0, "shrunk": 1, "new": 2, "gone": 3,
                 "steady": 4, "below-floor": 5}


def render_text(diff: ProfileDiff, top: int = 30) -> str:
    """Aligned text attribution, biggest movers first."""
    total_ratio = (f", {diff.new_total_s / diff.base_total_s:.2f}x"
                   if diff.base_total_s > 0 else "")
    lines = [
        f"perfreport diff ({diff.kind}): {diff.base_label} -> "
        f"{diff.new_label} (tolerance {diff.tolerance:.0%}, floor "
        f"{diff.min_runtime_s * 1e3:g} ms)",
        f"total {diff.base_total_s:.4f}s -> {diff.new_total_s:.4f}s "
        f"({diff.total_delta_s:+.4f}s{total_ratio})",
    ]
    has_mem = any(d.mem_delta_kb is not None for d in diff.deltas)
    label = "path" if diff.kind == "trace" else (
        "function" if diff.kind == "hotspots" else "bench")
    header = (f"{'status':<12} {'base_s':>10} {'new_s':>10} {'delta_s':>10} "
              f"{'ratio':>7}")
    if has_mem:
        header += f" {'mem_kb':>9}"
    header += f"  {label}"
    lines += [header, "-" * len(header)]
    ordered = sorted(
        diff.deltas,
        key=lambda d: (_STATUS_ORDER[d.status], -abs(d.cum_delta_s), d.path))
    for delta in ordered[:top]:
        ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
        row = (f"{delta.status:<12} {delta.base_cum_s:>10.4f} "
               f"{delta.new_cum_s:>10.4f} {delta.cum_delta_s:>+10.4f} "
               f"{ratio:>7}")
        if has_mem:
            mem = (f"{delta.mem_delta_kb:>+9.1f}"
                   if delta.mem_delta_kb is not None else f"{'-':>9}")
            row += f" {mem}"
        row += f"  {delta.path}"
        lines.append(row)
    if len(diff.deltas) > top:
        lines.append(f"... {len(diff.deltas) - top} more path(s) "
                     f"(raise --top)")
    if diff.critical_base or diff.critical_new:
        lines.append("")
        base_chain = " > ".join(name for name, _ in diff.critical_base)
        new_chain = " > ".join(name for name, _ in diff.critical_new)
        base_leaf = diff.critical_base[-1][1] if diff.critical_base else 0.0
        new_leaf = diff.critical_new[-1][1] if diff.critical_new else 0.0
        lines.append(f"critical path (base): {base_chain}  "
                     f"leaf {base_leaf:.4f}s")
        lines.append(f"critical path (new):  {new_chain}  "
                     f"leaf {new_leaf:.4f}s")
        divergence = diff.critical_divergence()
        if divergence is not None:
            base_name = diff.critical_base[divergence][0]
            new_name = diff.critical_new[divergence][0]
            lines.append(
                f"critical paths diverge at depth {divergence}: "
                f"base {base_name!r} vs new {new_name!r}")
    lines.append(
        f"{len(diff.grown)} grown, {len(diff.shrunk)} shrunk across "
        f"{len(diff.deltas)} aligned {label}(s)")
    return "\n".join(lines)


def render_json(diff: ProfileDiff) -> Dict[str, object]:
    """JSON-ready attribution for machine consumers (CI annotations)."""
    return {
        "kind": diff.kind,
        "base": diff.base_label,
        "new": diff.new_label,
        "tolerance": diff.tolerance,
        "min_runtime_s": diff.min_runtime_s,
        "base_total_s": diff.base_total_s,
        "new_total_s": diff.new_total_s,
        "total_delta_s": diff.total_delta_s,
        "grown": len(diff.grown),
        "shrunk": len(diff.shrunk),
        "critical_base": [
            {"name": name, "cum_s": cum} for name, cum in diff.critical_base],
        "critical_new": [
            {"name": name, "cum_s": cum} for name, cum in diff.critical_new],
        "deltas": [
            {
                "path": d.path,
                "name": d.name,
                "status": d.status,
                "base_cum_s": d.base_cum_s,
                "new_cum_s": d.new_cum_s,
                "delta_s": d.cum_delta_s,
                "base_self_s": d.base_self_s,
                "new_self_s": d.new_self_s,
                "self_delta_s": d.self_delta_s,
                "ratio": d.ratio,
                "base_calls": d.base_calls,
                "new_calls": d.new_calls,
                "mem_delta_kb": d.mem_delta_kb,
            }
            for d in diff.deltas
        ],
    }


def emit_diff_event(diff: ProfileDiff) -> None:
    """Publish the registered ``perf.diff_session`` wire event."""
    event("perf.diff_session", base=diff.base_label, new=diff.new_label,
          grown=len(diff.grown), shrunk=len(diff.shrunk))
