"""Human-readable rendering of a metrics registry snapshot."""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.obs import trace


def _fmt(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def render_table(snapshot: Optional[Dict[str, dict]] = None) -> str:
    """Aligned text table of a registry snapshot (CLI ``--telemetry``).

    Counters and gauges render their value; histograms render count,
    mean and the p50/p90/p99 quantiles.
    """
    snapshot = snapshot if snapshot is not None else trace.registry.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    rows = []
    for name in sorted(snapshot):
        stats = snapshot[name]
        kind = stats["kind"]
        if kind == "histogram":
            detail = (
                f"n={_fmt(stats['count'])}  mean={_fmt(stats['mean'])}  "
                f"p50={_fmt(stats['p50'])}  p90={_fmt(stats['p90'])}  "
                f"p99={_fmt(stats['p99'])}"
            )
        else:
            detail = _fmt(stats["value"])
        rows.append((name, kind, detail))
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    header = f"{'metric':<{name_w}}  {'kind':<{kind_w}}  value"
    lines = [header, "-" * len(header)]
    for name, kind, detail in rows:
        lines.append(f"{name:<{name_w}}  {kind:<{kind_w}}  {detail}")
    return "\n".join(lines)
