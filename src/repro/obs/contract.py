"""The telemetry wire contract — the single source of event truth.

Every telemetry line a sink emits is a flat JSON object carrying
``ts`` (number), ``name`` (non-empty string), ``kind`` (one of
:data:`KINDS`), and either ``value`` (number) or ``duration_s``
(non-negative number).  Span events additionally carry
:data:`SPAN_FIELDS` — ``path``, ``depth``, and the trace context
``span_id``/``parent_id`` that lets ``repro.obs.perf`` rebuild the
call tree; the monitor's link events carry per-kind fields; one-off
``event`` lines must use a name registered in
:data:`KNOWN_EVENT_NAMES` and carry that name's required attributes
(:data:`EVENT_FIELDS`).

This module is consumed by *three* independent checkers, which is why
it lives here and nowhere else:

* ``tools/check_telemetry.py`` — the runtime JSONL validator run by
  ``make telemetry-smoke`` / ``make monitor-smoke`` / CI;
* ``tools/flatlint`` rule **FT002** — the static pass that proves, at
  lint time, that every literal ``obs.event(...)`` name is registered
  here *and* that every registered name still has an emit site;
* the test suite (``tests/obs/test_contract.py``).

Register a new one-off event by adding one :data:`EVENT_FIELDS` entry
(plus, when the attributes deserve value-level validation, an
:data:`EVENT_CHECKS` function) and documenting it in
``docs/observability.md`` — ``make lint`` fails until the emit site
and the registration agree in both directions.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, FrozenSet, List, Mapping

#: Every legal value of the ``kind`` field.
KINDS: FrozenSet[str] = frozenset({
    "counter", "gauge", "histogram", "timer", "span", "event",
    "link_sample", "link_down", "link_up",
})

#: Required fields on every ``kind == "span"`` event, beyond the
#: universal ``ts``/``name``/``kind``/``duration_s``.  ``span_id`` is a
#: positive integer unique within a run (deterministic per-process
#: counter, reset by ``repro.obs.enable``); ``parent_id`` is the
#: enclosing span's id or ``null`` at the root.  Spans may additionally
#: carry free-form call-site attributes and, under tracemalloc
#: accounting, a non-negative numeric ``mem_peak_kb``.
SPAN_FIELDS: FrozenSet[str] = frozenset({
    "path", "depth", "span_id", "parent_id",
})

#: Required attributes per registered one-off event name (kind ==
#: ``event``).  The keys of this mapping *are* the event-name registry:
#: an emit site using a name absent here fails both the runtime
#: validator and flatlint FT002; a key with no emit site fails FT002.
EVENT_FIELDS: Mapping[str, FrozenSet[str]] = {
    "core.profiling.skipped_candidate": frozenset({"m", "n", "reason"}),
    "core.reconfigure.converter_retry": frozenset(
        {"converter", "attempt", "batch", "fault", "t"}),
    "core.reconfigure.batch_rollback": frozenset(
        {"batch", "converters", "reason", "t"}),
    "core.failures.heal": frozenset({"reconfigured", "unrecoverable", "t"}),
    "flowsim.flow_rerouted": frozenset({"flow_id", "outcome", "t"}),
    "experiments.degradation.solver_failure": frozenset(
        {"topology", "fraction", "draw"}),
    "core.scaling.candidate_skipped": frozenset({"candidate", "reason"}),
    "perf.bench_session": frozenset({"out", "benches"}),
    "perf.hotspot_session": frozenset({"out", "functions", "samples"}),
    "perf.diff_session": frozenset({"base", "new", "grown", "shrunk"}),
    "perf.trend_session": frozenset({"sessions", "metrics", "steps"}),
    "sampler.start": frozenset({"hz"}),
    "sampler.stop": frozenset({"samples", "elapsed_s"}),
    "sampler.flush": frozenset({"samples"}),
    "progress.heartbeat": frozenset({"phase", "done", "total", "elapsed_s"}),
    "health.alert_firing": frozenset(
        {"rule", "metric", "value", "threshold", "t"}),
    "health.alert_resolved": frozenset(
        {"rule", "metric", "fired_for", "t"}),
    "health.slo_burn": frozenset(
        {"slo", "burn_rate", "budget_remaining", "t"}),
    "selfheal.action_planned": frozenset(
        {"action", "rule", "alert_t", "t"}),
    "selfheal.action_started": frozenset({"action", "rule", "t"}),
    "selfheal.action_succeeded": frozenset(
        {"action", "rule", "latency_s", "t"}),
    "selfheal.action_failed": frozenset({"action", "rule", "reason", "t"}),
    "selfheal.action_suppressed": frozenset(
        {"action", "rule", "reason", "t"}),
    "chaos.recover_noop": frozenset({"component", "target", "t"}),
}

#: The contract's one-off event names — derived from
#: :data:`EVENT_FIELDS` so the two can never drift.
KNOWN_EVENT_NAMES: FrozenSet[str] = frozenset(EVENT_FIELDS)


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_event_time(event: Mapping[str, Any], problems: List[str],
                      label: str) -> None:
    t = event.get("t")
    if not _numeric(t):
        problems.append(f"{label} missing numeric 't'")
    elif t < 0:
        problems.append(f"negative {label} time {t}")


def _check_counted(event: Mapping[str, Any], problems: List[str], label: str,
                   field_name: str, minimum: int = 0) -> None:
    value = event.get(field_name)
    if not isinstance(value, int) or isinstance(value, bool):
        problems.append(f"{label} missing integer {field_name!r}")
    elif value < minimum:
        problems.append(f"{label} {field_name!r} below {minimum}: {value}")


def _check_named(event: Mapping[str, Any], problems: List[str], label: str,
                 field_name: str) -> None:
    value = event.get(field_name)
    if not isinstance(value, str) or not value.strip():
        problems.append(f"{label} missing non-empty {field_name!r}")


def _check_skipped_candidate(event: Mapping[str, Any],
                             problems: List[str]) -> None:
    _check_counted(event, problems, "skipped_candidate", "m", minimum=1)
    _check_counted(event, problems, "skipped_candidate", "n", minimum=1)
    _check_named(event, problems, "skipped_candidate", "reason")


def _check_converter_retry(event: Mapping[str, Any],
                           problems: List[str]) -> None:
    _check_named(event, problems, "converter_retry", "converter")
    _check_counted(event, problems, "converter_retry", "attempt", minimum=1)
    _check_counted(event, problems, "converter_retry", "batch")
    if event.get("fault") not in ("timeout", "nack"):
        problems.append(
            "converter_retry 'fault' must be 'timeout' or 'nack'"
        )
    _check_event_time(event, problems, "converter_retry")


def _check_batch_rollback(event: Mapping[str, Any],
                          problems: List[str]) -> None:
    _check_counted(event, problems, "batch_rollback", "batch")
    _check_counted(event, problems, "batch_rollback", "converters", minimum=1)
    _check_named(event, problems, "batch_rollback", "reason")
    _check_event_time(event, problems, "batch_rollback")


def _check_heal(event: Mapping[str, Any], problems: List[str]) -> None:
    _check_counted(event, problems, "heal", "reconfigured")
    _check_counted(event, problems, "heal", "unrecoverable")
    _check_event_time(event, problems, "heal")


def _check_flow_rerouted(event: Mapping[str, Any],
                         problems: List[str]) -> None:
    _check_counted(event, problems, "flow_rerouted", "flow_id")
    if event.get("outcome") not in ("rerouted", "failed"):
        problems.append(
            "flow_rerouted 'outcome' must be 'rerouted' or 'failed'"
        )
    _check_event_time(event, problems, "flow_rerouted")


def _check_solver_failure(event: Mapping[str, Any],
                          problems: List[str]) -> None:
    _check_named(event, problems, "solver_failure", "topology")
    fraction = event.get("fraction")
    if not _numeric(fraction):
        problems.append("solver_failure missing numeric 'fraction'")
    elif not 0 <= fraction <= 1:
        problems.append(f"solver_failure 'fraction' outside [0, 1]: {fraction}")
    _check_counted(event, problems, "solver_failure", "draw")


def _check_candidate_skipped(event: Mapping[str, Any],
                             problems: List[str]) -> None:
    _check_named(event, problems, "candidate_skipped", "candidate")
    _check_named(event, problems, "candidate_skipped", "reason")


def _check_bench_session(event: Mapping[str, Any],
                         problems: List[str]) -> None:
    _check_named(event, problems, "bench_session", "out")
    _check_counted(event, problems, "bench_session", "benches")


def _check_elapsed(event: Mapping[str, Any], problems: List[str],
                   label: str, field_name: str = "elapsed_s") -> None:
    value = event.get(field_name)
    if not _numeric(value):
        problems.append(f"{label} missing numeric {field_name!r}")
    elif value < 0:
        problems.append(f"negative {label} {field_name!r} {value}")


def _check_hotspot_session(event: Mapping[str, Any],
                           problems: List[str]) -> None:
    _check_named(event, problems, "hotspot_session", "out")
    _check_counted(event, problems, "hotspot_session", "functions")
    _check_counted(event, problems, "hotspot_session", "samples")


def _check_diff_session(event: Mapping[str, Any],
                        problems: List[str]) -> None:
    _check_named(event, problems, "diff_session", "base")
    _check_named(event, problems, "diff_session", "new")
    _check_counted(event, problems, "diff_session", "grown")
    _check_counted(event, problems, "diff_session", "shrunk")


def _check_trend_session(event: Mapping[str, Any],
                         problems: List[str]) -> None:
    _check_counted(event, problems, "trend_session", "sessions")
    _check_counted(event, problems, "trend_session", "metrics")
    _check_counted(event, problems, "trend_session", "steps")


def _check_sampler_start(event: Mapping[str, Any],
                         problems: List[str]) -> None:
    hz = event.get("hz")
    if not _numeric(hz):
        problems.append("sampler.start missing numeric 'hz'")
    elif hz <= 0:
        problems.append(f"sampler.start 'hz' must be positive: {hz}")


def _check_sampler_stop(event: Mapping[str, Any],
                        problems: List[str]) -> None:
    _check_counted(event, problems, "sampler.stop", "samples")
    _check_elapsed(event, problems, "sampler.stop")


def _check_sampler_flush(event: Mapping[str, Any],
                         problems: List[str]) -> None:
    _check_counted(event, problems, "sampler.flush", "samples")


def _check_progress_heartbeat(event: Mapping[str, Any],
                              problems: List[str]) -> None:
    _check_named(event, problems, "progress.heartbeat", "phase")
    _check_counted(event, problems, "progress.heartbeat", "done")
    _check_counted(event, problems, "progress.heartbeat", "total")
    _check_elapsed(event, problems, "progress.heartbeat")
    for optional in ("eta_s", "rss_kb", "rss_peak_kb", "traced_peak_kb"):
        value = event.get(optional)
        if value is None:
            continue
        if not _numeric(value) or value < 0:
            problems.append(
                f"progress.heartbeat {optional!r} must be a non-negative "
                f"number when present: {value!r}")


def _check_alert_firing(event: Mapping[str, Any],
                        problems: List[str]) -> None:
    _check_named(event, problems, "alert_firing", "rule")
    _check_named(event, problems, "alert_firing", "metric")
    if not _numeric(event.get("threshold")):
        problems.append("alert_firing missing numeric 'threshold'")
    _check_event_time(event, problems, "alert_firing")


def _check_alert_resolved(event: Mapping[str, Any],
                          problems: List[str]) -> None:
    _check_named(event, problems, "alert_resolved", "rule")
    _check_named(event, problems, "alert_resolved", "metric")
    fired_for = event.get("fired_for")
    if not _numeric(fired_for):
        problems.append("alert_resolved missing numeric 'fired_for'")
    elif fired_for < 0:
        problems.append(f"negative alert_resolved 'fired_for' {fired_for}")
    _check_event_time(event, problems, "alert_resolved")


def _check_slo_burn(event: Mapping[str, Any],
                    problems: List[str]) -> None:
    _check_named(event, problems, "slo_burn", "slo")
    burn = event.get("burn_rate")
    if not _numeric(burn):
        problems.append("slo_burn missing numeric 'burn_rate'")
    elif burn < 0:
        problems.append(f"negative slo_burn 'burn_rate' {burn}")
    # budget_remaining may legitimately go negative once overspent.
    if not _numeric(event.get("budget_remaining")):
        problems.append("slo_burn missing numeric 'budget_remaining'")
    _check_event_time(event, problems, "slo_burn")


def _check_selfheal_common(event: Mapping[str, Any], problems: List[str],
                           label: str) -> None:
    _check_named(event, problems, label, "action")
    _check_named(event, problems, label, "rule")
    _check_event_time(event, problems, label)


def _check_action_planned(event: Mapping[str, Any],
                          problems: List[str]) -> None:
    _check_selfheal_common(event, problems, "action_planned")
    alert_t = event.get("alert_t")
    if not _numeric(alert_t):
        problems.append("action_planned missing numeric 'alert_t'")
    elif alert_t < 0:
        problems.append(f"negative action_planned 'alert_t' {alert_t}")


def _check_action_started(event: Mapping[str, Any],
                          problems: List[str]) -> None:
    _check_selfheal_common(event, problems, "action_started")


def _check_action_succeeded(event: Mapping[str, Any],
                            problems: List[str]) -> None:
    _check_selfheal_common(event, problems, "action_succeeded")
    latency = event.get("latency_s")
    if not _numeric(latency):
        problems.append("action_succeeded missing numeric 'latency_s'")
    elif latency < 0:
        problems.append(f"negative action_succeeded 'latency_s' {latency}")


def _check_action_failed(event: Mapping[str, Any],
                         problems: List[str]) -> None:
    _check_selfheal_common(event, problems, "action_failed")
    _check_named(event, problems, "action_failed", "reason")


def _check_action_suppressed(event: Mapping[str, Any],
                             problems: List[str]) -> None:
    _check_selfheal_common(event, problems, "action_suppressed")
    _check_named(event, problems, "action_suppressed", "reason")


def _check_recover_noop(event: Mapping[str, Any],
                        problems: List[str]) -> None:
    # The wire-level 'kind' field is always "event"; the chaos
    # component kind rides in 'component' to avoid the collision.
    if event.get("component") not in ("leg", "cable", "switch"):
        problems.append(
            "recover_noop 'component' must be 'leg', 'cable' or 'switch'")
    _check_named(event, problems, "recover_noop", "target")
    _check_event_time(event, problems, "recover_noop")


#: Per-name value-level schema checks for registered one-off events.
EVENT_CHECKS: Mapping[str, Callable[[Mapping[str, Any], List[str]], None]] = {
    "core.profiling.skipped_candidate": _check_skipped_candidate,
    "core.reconfigure.converter_retry": _check_converter_retry,
    "core.reconfigure.batch_rollback": _check_batch_rollback,
    "core.failures.heal": _check_heal,
    "flowsim.flow_rerouted": _check_flow_rerouted,
    "experiments.degradation.solver_failure": _check_solver_failure,
    "core.scaling.candidate_skipped": _check_candidate_skipped,
    "perf.bench_session": _check_bench_session,
    "perf.hotspot_session": _check_hotspot_session,
    "perf.diff_session": _check_diff_session,
    "perf.trend_session": _check_trend_session,
    "sampler.start": _check_sampler_start,
    "sampler.stop": _check_sampler_stop,
    "sampler.flush": _check_sampler_flush,
    "progress.heartbeat": _check_progress_heartbeat,
    "health.alert_firing": _check_alert_firing,
    "health.alert_resolved": _check_alert_resolved,
    "health.slo_burn": _check_slo_burn,
    "selfheal.action_planned": _check_action_planned,
    "selfheal.action_started": _check_action_started,
    "selfheal.action_succeeded": _check_action_succeeded,
    "selfheal.action_failed": _check_action_failed,
    "selfheal.action_suppressed": _check_action_suppressed,
    "chaos.recover_noop": _check_recover_noop,
}


def _check_link_fields(event: Mapping[str, Any],
                       problems: List[str]) -> None:
    _check_named(event, problems, "link event", "link")
    t = event.get("t")
    if not _numeric(t):
        problems.append("link event missing numeric 't'")
    elif t < 0:
        problems.append(f"negative link event time {t}")


def _check_link_sample(event: Mapping[str, Any],
                       problems: List[str]) -> None:
    for field_name in ("utilization", "rate", "capacity"):
        value = event.get(field_name)
        if not _numeric(value):
            problems.append(f"link_sample missing numeric {field_name!r}")
        elif value < 0:
            problems.append(f"negative {field_name!r} {value}")
    if event.get("capacity") == 0:
        problems.append("link_sample has zero 'capacity'")
    active = event.get("active_flows")
    if not isinstance(active, int) or isinstance(active, bool) or active < 0:
        problems.append(
            "link_sample missing non-negative integer 'active_flows'"
        )


def check_event(event: Mapping[str, Any]) -> List[str]:
    """Validate one already-decoded telemetry event (empty = valid)."""
    problems: List[str] = []
    ts = event.get("ts")
    if not _numeric(ts):
        problems.append("missing/non-numeric 'ts'")
    name = event.get("name")
    if not isinstance(name, str) or not name.strip():
        problems.append("missing/empty 'name'")
    kind = event.get("kind")
    if kind not in KINDS:
        problems.append(
            f"unknown 'kind' {kind!r} (expected one of {sorted(KINDS)})"
        )

    has_value = _numeric(event.get("value"))
    duration = event.get("duration_s")
    has_duration = _numeric(duration)
    if not has_value and not has_duration:
        problems.append("needs a numeric 'value' or 'duration_s'")
    if has_duration and duration < 0:
        problems.append(f"negative 'duration_s' {duration}")

    if kind == "span":
        if not isinstance(event.get("path"), str):
            problems.append("span missing 'path'")
        if not isinstance(event.get("depth"), int):
            problems.append("span missing integer 'depth'")
        span_id = event.get("span_id")
        if not isinstance(span_id, int) or isinstance(span_id, bool):
            problems.append("span missing integer 'span_id'")
        elif span_id < 1:
            problems.append(f"span 'span_id' must be >= 1: {span_id}")
        if "parent_id" not in event:
            problems.append("span missing 'parent_id' (null at the root)")
        else:
            parent_id = event.get("parent_id")
            if parent_id is not None and (
                    not isinstance(parent_id, int)
                    or isinstance(parent_id, bool) or parent_id < 1):
                problems.append(
                    f"span 'parent_id' must be null or an integer >= 1: "
                    f"{parent_id!r}")
            elif (isinstance(parent_id, int)
                    and isinstance(span_id, int)
                    and not isinstance(parent_id, bool)
                    and parent_id >= span_id):
                problems.append(
                    f"span 'parent_id' {parent_id} not below 'span_id' "
                    f"{span_id} (parents are created first)")
        mem = event.get("mem_peak_kb")
        if mem is not None and (not _numeric(mem) or mem < 0):
            problems.append(
                f"span 'mem_peak_kb' must be a non-negative number: {mem!r}")
    elif kind == "event":
        if isinstance(name, str) and name not in KNOWN_EVENT_NAMES:
            problems.append(
                f"unknown event type {name!r} (known: "
                f"{sorted(KNOWN_EVENT_NAMES)}; register new one-off "
                f"events in repro.obs.contract and the docs)"
            )
        check = EVENT_CHECKS.get(name) if isinstance(name, str) else None
        if check is not None:
            check(event, problems)
    elif kind in ("link_sample", "link_down", "link_up"):
        _check_link_fields(event, problems)
        if kind == "link_sample":
            _check_link_sample(event, problems)
    return problems


def check_line(line: str, lineno: int = 0) -> List[str]:
    """Return a list of problems with one JSONL line (empty = valid)."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(event, dict):
        return ["not a JSON object"]
    return check_event(event)


def validate_stream(lines: List[str]) -> Dict[int, List[str]]:
    """Validate many JSONL lines; maps 1-based line number -> problems."""
    errors: Dict[int, List[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        problems = check_line(line, lineno)
        if problems:
            errors[lineno] = problems
    return errors
