"""Metrics registry: counters, gauges, histograms, monotonic timers.

Metrics live in a process-global :class:`MetricsRegistry` (``repro.obs.
registry``) and are addressed by dotted names mirroring the package
tree, e.g. ``topology.fattree.build_s`` or ``mcf.exact.solve_s``.  The
``_s`` suffix marks seconds; plain names are event or object counts.

Instrumented code never touches this module directly — it goes through
the module-level fast-path helpers in :mod:`repro.obs` (``incr``,
``observe``, ``set_gauge``, ``timer``) which collapse to a single
attribute check when telemetry is disabled.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Type, TypeVar

from repro.errors import ReproError
from repro.obs.stats import nearest_rank_quantile, quantile_summary


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A distribution of observations with p50/p90/p99 quantiles.

    Observations are kept exactly up to ``max_samples`` and then
    decimated (every other retained sample dropped, subsequent
    observations recorded at half rate, repeatedly) so memory stays
    bounded under million-observation hot loops while ``count`` and
    ``sum`` remain exact.
    """

    __slots__ = ("name", "count", "sum", "min", "max",
                 "_samples", "_max_samples", "_stride", "_skip")
    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self._samples.append(value)
        if len(self._samples) >= self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def _sample_view(self) -> List[float]:
        """Retained samples, with the true extremes folded back in.

        Decimation keeps every ``_stride``-th observation, so the
        recorded ``min``/``max`` can vanish from ``_samples`` and tail
        quantiles (p99) would under-report.  Once decimation has
        happened the exact extremes are appended to the view — two
        extra points among thousands barely weight the interior ranks,
        and ``quantile(0.0)``/``quantile(1.0)`` stay exact.
        """
        if self._stride == 1 or not self.count:
            return self._samples
        return self._samples + [self.min, self.max]

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained samples."""
        return nearest_rank_quantile(self._sample_view(), q)

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
        }
        out.update(quantile_summary(self._sample_view()))
        return out


class Timer:
    """Context manager recording elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


#: The concrete metric kinds the registry can create on first use.
_MetricT = TypeVar("_MetricT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Name -> metric map with create-on-first-use semantics.

    A name is bound to one metric kind for the registry's lifetime;
    re-using ``topology.fattree.builds`` as a gauge after it was a
    counter raises, which catches typo'd instrumentation early.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls: Type[_MetricT]) -> _MetricT:
        metric = self._metrics.get(name)
        if metric is None:
            if not name or name != name.strip():
                raise ReproError(f"bad metric name {name!r}")
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} is a {getattr(metric, 'kind', '?')}, "
                f"not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return Timer(self._get(name, Histogram))

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain dicts (JSON-serializable)."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}

    def reset(self) -> None:
        self._metrics.clear()
