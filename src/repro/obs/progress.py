"""Long-run progress heartbeats: phase, done/total, monotone ETA, RSS.

At mega-fabric scale (k=48/64) a single build or solve runs for
minutes; without a progress plane the telemetry bus goes dark between
span exits.  :class:`ProgressTracker` fixes that: instrumented loops
call :meth:`~ProgressTracker.advance` per unit of work and the tracker
emits throttled ``progress.heartbeat`` events through the existing bus
(:func:`repro.obs.trace.event`), so ``flattree top --follow`` and the
health plane see live done/total, an ETA, and process memory
watermarks while the build is still running.

Design points:

* **Disabled is near-free.**  ``advance`` does one enabled check and
  an integer add when telemetry is off — no clock read, no I/O.
* **Throttled.**  At most one heartbeat per ``interval_s`` (default
  1 s) regardless of item rate, plus a final one from ``finish``.
* **Monotone ETA.**  The estimate derives from the overall average
  rate and is additionally clamped to never exceed the previously
  published value, so a live dashboard never shows the ETA climbing
  (it may stall under slowdown, which is honest: the clamp trades
  responsiveness-to-slowdown for a non-jittering display).
* **Memory watermarks.**  Each heartbeat carries current RSS (from
  ``/proc/self/status``, falling back to ``resource.getrusage``), the
  peak RSS observed by this tracker, and — when :mod:`tracemalloc` is
  tracing (``--trace-malloc``) — the traced-allocation peak.
"""

from __future__ import annotations

import time
import tracemalloc
from types import TracebackType
from typing import Callable, Dict, Optional, Type

from repro.obs.trace import enabled, event

__all__ = ["ProgressTracker", "read_rss_kb"]

#: Default minimum spacing between heartbeats, in seconds.
DEFAULT_INTERVAL_S = 1.0


def read_rss_kb() -> Optional[float]:
    """Current resident set size in KiB, or ``None`` if unreadable.

    Reads ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` peak RSS (which is a high-watermark, not a
    current value — still useful as a memory signal on non-Linux).
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError, ValueError):
        return None


class ProgressTracker:
    """Heartbeat emitter for one named phase of a long run.

    ``total`` is the expected item count (0 = unknown: heartbeats
    still flow, without an ETA).  ``clock`` is injectable for
    deterministic tests and defaults to :func:`time.monotonic`.

    Usage::

        tracker = obs.ProgressTracker("topology.build_clos", total=pods)
        for pod in range(pods):
            ... wire pod ...
            tracker.advance()
        tracker.finish()

    or as a context manager (``finish`` runs on exit).
    """

    def __init__(self, phase: str, total: int = 0, *,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.phase = phase
        self.total = max(0, int(total))
        self.interval_s = interval_s
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic)
        self._start = self._clock()
        self._done = 0
        self._last_emit: Optional[float] = None
        self._eta_published = float("inf")
        self._rss_peak_kb = 0.0
        self._finished = False

    @property
    def done(self) -> int:
        return self._done

    def eta_s(self) -> Optional[float]:
        """Monotone ETA estimate in seconds (``None`` when unknowable)."""
        return self._eta(self._clock())

    def advance(self, n: int = 1) -> None:
        """Record ``n`` completed items; maybe emit a heartbeat."""
        self._done += n
        if not enabled():
            return
        now = self._clock()
        if (self._last_emit is not None
                and now - self._last_emit < self.interval_s):
            return
        self._emit(now)

    def finish(self) -> None:
        """Emit one final heartbeat (idempotent)."""
        if self._finished:
            return
        self._finished = True
        if not enabled():
            return
        self._emit(self._clock())

    def __enter__(self) -> "ProgressTracker":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> bool:
        self.finish()
        return False

    def _eta(self, now: float) -> Optional[float]:
        """Average-rate ETA, clamped to the last published value."""
        if self.total <= 0 or self._done <= 0:
            return None
        if self._done >= self.total:
            return 0.0
        elapsed = max(0.0, now - self._start)
        raw = (self.total - self._done) * elapsed / self._done
        return min(raw, self._eta_published)

    def _emit(self, now: float) -> None:
        self._last_emit = now
        elapsed = max(0.0, now - self._start)
        eta = self._eta(now)
        if eta is not None:
            self._eta_published = eta
        rss = read_rss_kb()
        if rss is not None:
            self._rss_peak_kb = max(self._rss_peak_kb, rss)
        extra: Dict[str, object] = {}
        if eta is not None:
            extra["eta_s"] = eta
        if rss is not None:
            extra["rss_kb"] = rss
            extra["rss_peak_kb"] = self._rss_peak_kb
        if tracemalloc.is_tracing():
            extra["traced_peak_kb"] = tracemalloc.get_traced_memory()[1] / 1024
        event("progress.heartbeat", phase=self.phase, done=self._done,
              total=self.total, elapsed_s=elapsed, **extra)
