"""Durable hotspot-campaign artifacts: ``HOTSPOTS_<seq>.json``.

A hotspot campaign (``flattree hotspots``) runs a scripted battery of
the library's expensive phases — fat-tree build, Clos->random
conversion, KSP, MCF, flowsim — under the sampling profiler
(:mod:`repro.obs.sampler`) and records the result in one repo-root
``HOTSPOTS_<seq>.json``, the artifact the vectorization/sharding work
(ROADMAP open items 1-2) cites when deciding what to optimize.

The document (schema :data:`SCHEMA`) carries the environment
fingerprint reused from :mod:`repro.obs.bench`, per-stage wall time and
sample counts, the top functions ranked by self time with the span
paths they ran under, and the raw folded stacks so the flame graph
round-trips through ``python -m tools.perfreport hotspots``.  Files
are written NaN-scrubbed with sorted keys, so identical campaigns
produce structurally identical documents.

Sequencing follows the BENCH convention: numbered files form the
trajectory; free-form tags (``HOTSPOTS_smoke.json``) are ignored by
discovery and never claim a sequence slot.
"""

from __future__ import annotations

import json
import math
import re
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.obs.bench import environment_fingerprint, repo_root
from repro.obs.sampler import SampleProfile

__all__ = [
    "SCHEMA",
    "build_document",
    "hotspot_paths",
    "load_document",
    "next_hotspots_path",
    "render_document",
    "validate_document",
    "write_document",
]

#: Document schema identifier; bump the suffix on breaking change.
SCHEMA = "flattree.hotspots/1"

#: Repo-root artifacts: ``HOTSPOTS_<seq>.json``; free-form tags such as
#: ``HOTSPOTS_smoke.json`` are throwaway and skip sequence discovery.
_HOTSPOT_SEQ = re.compile(r"^HOTSPOTS_(\d+)\.json$")

#: A folded-stack line: frames joined by ``;`` then an integer weight.
_FOLDED_LINE = re.compile(r"^\S.* \d+$")

#: A full decoded hotspot document.
HotspotDocument = Dict[str, Any]


def hotspot_paths(root: Path) -> List[Path]:
    """Existing numbered campaign artifacts under ``root``, oldest first."""
    found = [(int(m.group(1)), path)
             for path in root.glob("HOTSPOTS_*.json")
             if (m := _HOTSPOT_SEQ.match(path.name)) is not None]
    return [path for _, path in sorted(found)]


def next_hotspots_path(root: Path) -> Path:
    """The next free ``HOTSPOTS_<seq>.json`` slot under ``root``."""
    taken = [int(m.group(1))
             for path in root.glob("HOTSPOTS_*.json")
             if (m := _HOTSPOT_SEQ.match(path.name)) is not None]
    return root / f"HOTSPOTS_{max(taken, default=0) + 1}.json"


def _scrub(value: Any) -> Any:
    """Replace non-finite floats with ``None`` (JSON has no NaN)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _scrub(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(item) for item in value]
    return value


def build_document(
    profile: SampleProfile,
    stages: Sequence[Mapping[str, object]],
    *,
    k: int,
    label: str = "hotspots",
    top: int = 60,
    root: Optional[Path] = None,
) -> HotspotDocument:
    """Assemble one campaign document from a finished profile.

    ``stages`` is the campaign's ordered stage list: mappings with
    ``name`` (short stage id), ``span`` (the telemetry span path the
    stage ran under), and ``wall_s``.  Per-stage sample counts are
    derived here by matching each sample's captured span path against
    the stage span prefix.
    """
    stage_records: List[Dict[str, object]] = []
    for stage in stages:
        span = str(stage.get("span", ""))
        samples = sum(
            count for (span_path, _stack), count in profile.counts.items()
            if span and (span_path == span
                         or span_path.startswith(span + "/")))
        wall = stage.get("wall_s", 0.0)
        stage_records.append({
            "name": str(stage.get("name", "")),
            "span": span,
            "wall_s": float(wall) if isinstance(wall, (int, float)) else 0.0,
            "samples": samples,
        })
    functions: List[Dict[str, object]] = []
    for stat in profile.aggregate()[:top]:
        functions.append({
            "key": stat.key,
            "self_samples": stat.self_samples,
            "cum_samples": stat.cum_samples,
            "self_s": stat.self_s,
            "cum_s": stat.cum_s,
            "spans": {path: count for path, count in
                      sorted(stat.spans.items()) if path},
        })
    return {
        "schema": SCHEMA,
        "label": label,
        "k": int(k),
        "hz": profile.hz,
        "effective_hz": profile.effective_hz,
        "samples": profile.samples,
        "duration_s": profile.duration_s,
        # Session metadata by contract: ``ts`` dates the campaign run
        # and is excluded from hotspot regression comparison, so wall
        # time here cannot skew replays.
        "ts": time.time(),  # flatlint: disable=FT007
        "environment": environment_fingerprint(root),
        "stages": stage_records,
        "functions": functions,
        "folded": profile.folded(),
    }


def validate_document(document: Mapping[str, object]) -> List[str]:
    """Schema-check a decoded hotspot document (empty = valid)."""
    problems: List[str] = []
    if document.get("schema") != SCHEMA:
        problems.append(
            f"'schema' must be {SCHEMA!r}, got {document.get('schema')!r}")
    samples = document.get("samples")
    if not isinstance(samples, int) or isinstance(samples, bool):
        problems.append("missing integer 'samples'")
        samples = 0
    elif samples < 0:
        problems.append(f"negative 'samples' {samples}")
    duration = document.get("duration_s")
    if (not isinstance(duration, (int, float)) or isinstance(duration, bool)
            or duration < 0):
        problems.append("missing non-negative 'duration_s'")
    env = document.get("environment")
    if not isinstance(env, dict):
        problems.append("missing 'environment' fingerprint object")
    else:
        for key in ("python", "cpu_count", "repro"):
            if key not in env:
                problems.append(f"environment missing {key!r}")
    stages = document.get("stages")
    if not isinstance(stages, list) or not stages:
        problems.append("missing non-empty 'stages' list")
    else:
        for stage in stages:
            if not isinstance(stage, dict) or not stage.get("name"):
                problems.append(f"malformed stage entry {stage!r}")
    functions = document.get("functions")
    if not isinstance(functions, list):
        problems.append("missing 'functions' list")
    else:
        if samples > 0 and not functions:
            problems.append("'functions' empty despite captured samples")
        previous = None
        for entry in functions:
            if not isinstance(entry, dict) or not entry.get("key"):
                problems.append(f"malformed function entry {entry!r}")
                continue
            self_samples = entry.get("self_samples")
            if (not isinstance(self_samples, int)
                    or isinstance(self_samples, bool) or self_samples < 0):
                problems.append(
                    f"function {entry.get('key')!r} missing non-negative "
                    "integer 'self_samples'")
                continue
            if previous is not None and self_samples > previous:
                problems.append(
                    "'functions' not sorted by self_samples descending")
                break
            previous = self_samples
    folded = document.get("folded")
    if not isinstance(folded, list):
        problems.append("missing 'folded' stack list")
    else:
        for line in folded:
            if not isinstance(line, str) or not _FOLDED_LINE.match(line):
                problems.append(f"malformed folded line {line!r}")
                break
    return problems


def write_document(path: Path, document: HotspotDocument) -> None:
    """Write one artifact (NaN-scrubbed, sorted keys, trailing newline)."""
    scrubbed = _scrub(document)
    problems = validate_document(scrubbed)
    if problems:
        raise ReproError(
            f"refusing to write invalid hotspot document {path}: "
            + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(scrubbed, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_document(path: Path) -> HotspotDocument:
    """Read and schema-check one ``HOTSPOTS_*.json``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read hotspot document {path}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ReproError(f"{path} is not a JSON object")
    problems = validate_document(document)
    if problems:
        raise ReproError(f"{path} fails the hotspot schema: "
                         + "; ".join(problems))
    return document


def render_document(document: Mapping[str, Any], top: int = 20) -> str:
    """Human-readable campaign summary: stages then top functions."""
    lines = [
        f"hotspot campaign {document.get('label')!r}  "
        f"k={document.get('k')}  samples={document.get('samples')}  "
        f"duration={float(document.get('duration_s', 0.0)):.2f}s  "
        f"rate={float(document.get('effective_hz', 0.0)):.0f}Hz",
        "",
        f"{'stage':<12} {'wall_s':>8} {'samples':>8}",
    ]
    for stage in document.get("stages", []):
        lines.append(f"{stage.get('name', '?'):<12} "
                     f"{float(stage.get('wall_s', 0.0)):8.2f} "
                     f"{int(stage.get('samples', 0)):8d}")
    lines.append("")
    lines.append(f"{'self_s':>8} {'cum_s':>8} {'samples':>8}  "
                 "function  [span]")
    for entry in document.get("functions", [])[:top]:
        spans = entry.get("spans") or {}
        span = ""
        if spans:
            span_path = max(sorted(spans), key=lambda path: spans[path])
            span = f"  [{span_path}]"
        lines.append(f"{float(entry.get('self_s', 0.0)):8.3f} "
                     f"{float(entry.get('cum_s', 0.0)):8.3f} "
                     f"{int(entry.get('self_samples', 0)):8d}  "
                     f"{entry.get('key')}{span}")
    return "\n".join(lines)
