"""Shared statistics helpers used across telemetry and simulation.

One implementation of nearest-rank quantile indexing serves the
metrics registry (:class:`~repro.obs.registry.Histogram`), simulation
results (:class:`~repro.flowsim.simulator.SimulationResult`) and the
network monitor's derived link statistics, so the three subsystems can
never drift apart on percentile semantics.  The streaming primitives
(:class:`Ewma`, :class:`WindowedQuantile`) back the health plane's
per-series rollups (:mod:`repro.health`): O(1) state per series, no
allocation on the update path.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterable, Sequence, Tuple

from repro.errors import ReproError

#: The quantiles every summary table in the repo reports.
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
)


def nearest_rank_quantile(values: Iterable[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (``nan`` when empty).

    Uses the inclusive nearest-rank definition: the smallest sample
    whose rank is at least ``ceil(q * n)``, clamped to the sample range,
    so ``q=0`` is the minimum and ``q=1`` the maximum.
    """
    if not 0.0 <= q <= 1.0:
        raise ReproError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return math.nan
    index = min(len(ordered) - 1,
                max(0, int(math.ceil(q * len(ordered))) - 1))
    return ordered[index]


def quantile_summary(values: Sequence[float]) -> Dict[str, float]:
    """``{"p50": ..., "p90": ..., "p99": ...}`` over *values*.

    The one place the repo's p50/p90/p99 triple is spelled out —
    :class:`~repro.obs.registry.Histogram` snapshots, link-series
    summaries and the health plane's rollups all call this instead of
    repeating three ``nearest_rank_quantile`` lines each.
    """
    ordered = sorted(values)
    return {
        label: nearest_rank_quantile(ordered, q)
        for label, q in SUMMARY_QUANTILES
    }


class Ewma:
    """Exponentially-weighted moving average, O(1) per observation.

    ``alpha`` is the per-observation smoothing factor (weight of the
    newest sample); :meth:`from_half_life` derives it from the number
    of observations after which an old sample's weight has halved.
    Before the first update :attr:`value` is ``nan``; the first
    observation seeds the average exactly (no zero-bias warmup).
    """

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = math.nan
        self.count = 0

    @classmethod
    def from_half_life(cls, half_life: float) -> "Ewma":
        """EWMA whose sample weight halves every *half_life* updates."""
        if half_life <= 0:
            raise ReproError(f"half-life must be positive, got {half_life}")
        return cls(alpha=1.0 - 2.0 ** (-1.0 / half_life))

    def update(self, value: float) -> float:
        """Fold one observation in; returns the new average."""
        self.count += 1
        if self.count == 1:
            self.value = float(value)
        else:
            self.value += self.alpha * (float(value) - self.value)
        return self.value


class WindowedQuantile:
    """Sliding-window quantiles over the last ``window`` observations.

    A bounded ring buffer (O(1) push, O(window) memory); quantiles are
    computed on demand through the shared nearest-rank definition, so
    a windowed p99 here and a histogram p99 can never disagree on
    semantics.  ``sum``/``count`` cover every observation ever pushed
    (eviction never distorts the running mean).
    """

    __slots__ = ("window", "_samples", "count", "sum")

    def __init__(self, window: int = 128) -> None:
        if window < 1:
            raise ReproError(f"window must be >= 1, got {window}")
        self.window = window
        self._samples: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.sum = 0.0

    def push(self, value: float) -> None:
        self._samples.append(float(value))
        self.count += 1
        self.sum += float(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Running mean over *all* observations (not just the window)."""
        return self.sum / self.count if self.count else math.nan

    @property
    def last(self) -> float:
        return self._samples[-1] if self._samples else math.nan

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window."""
        return nearest_rank_quantile(self._samples, q)

    def summary(self) -> Dict[str, float]:
        return quantile_summary(list(self._samples))


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = balanced).

    The monitor uses it over per-link mean utilizations as the
    load-imbalance summary: 0 means every link carries the same load,
    values toward 1 mean a few links carry nearly everything.
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    if ordered[0] < 0:
        raise ReproError("gini requires non-negative values")
    # One fused pass: sum and the rank-weighted sum together.  This is
    # on the health plane's per-evaluation path, where generator frames
    # per element were the dominant constant factor.
    total = 0.0
    weighted = 0.0
    coefficient = 1 - n
    for v in ordered:
        total += v
        weighted += coefficient * v
        coefficient += 2
    if total == 0:
        return 0.0
    return weighted / (n * total)
