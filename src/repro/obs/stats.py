"""Shared statistics helpers used across telemetry and simulation.

One implementation of nearest-rank quantile indexing serves the
metrics registry (:class:`~repro.obs.registry.Histogram`), simulation
results (:class:`~repro.flowsim.simulator.SimulationResult`) and the
network monitor's derived link statistics, so the three subsystems can
never drift apart on percentile semantics.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ReproError


def nearest_rank_quantile(values: Iterable[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (``nan`` when empty).

    Uses the inclusive nearest-rank definition: the smallest sample
    whose rank is at least ``ceil(q * n)``, clamped to the sample range,
    so ``q=0`` is the minimum and ``q=1`` the maximum.
    """
    if not 0.0 <= q <= 1.0:
        raise ReproError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return math.nan
    index = min(len(ordered) - 1,
                max(0, int(math.ceil(q * len(ordered))) - 1))
    return ordered[index]


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = balanced).

    The monitor uses it over per-link mean utilizations as the
    load-imbalance summary: 0 means every link carries the same load,
    values toward 1 mean a few links carry nearly everything.
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    if any(v < 0 for v in ordered):
        raise ReproError("gini requires non-negative values")
    total = sum(ordered)
    if total == 0:
        return 0.0
    weighted = sum((2 * i - n + 1) * v for i, v in enumerate(ordered))
    return weighted / (n * total)
