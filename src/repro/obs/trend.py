"""Trajectory-aware regression analytics over durable perf sessions.

``tools.perfreport compare`` judges the newest two ``BENCH_*.json``
sessions pairwise: one noisy recording can flip the gate either way.
This module ingests the *whole* recorded trajectory — every numbered
``BENCH_<seq>.json`` and ``HOTSPOTS_<seq>.json`` at the repo root —
into per-metric time series and judges the newest point against a
noise model fitted to its own history:

* **noise model** — per metric, the median and median absolute
  deviation (MAD) over the trailing window (default 8 sessions,
  newest excluded).  The acceptance band half-width is::

      max(sigmas * 1.4826 * MAD, rel_floor * median, min_runtime_s)

  ``1.4826 * MAD`` estimates a Gaussian sigma robustly, so one
  historical outlier cannot widen the band the way a stddev would;
  the relative floor (default 25%, matching the pairwise gate) keeps
  near-constant series from producing a zero-width band, and the
  absolute floor (default 5 ms) mutes timer jitter on micro-benches.
* **step detection** — the newest value outside the band is a
  ``step-up`` (regression; drives ``exit_code`` 1) or ``step-down``
  (improvement; reported, never fails).  Every *historical* point is
  also scanned against its own preceding window so the renderers can
  mark where past steps landed in the series.

Surfaces: ``python -m tools.perfreport trend`` (text / JSON /
markdown) and ``flattree trend``; ``make bench-compare`` gates CI on
this instead of the newest-two compare.  A regression must therefore
exceed the *noise band*, not merely the 25% pairwise tolerance.

Like the other durable-artifact writers this module is a
replay-critical flatlint FT007 sink: reports must be byte-identical
across replays, so no wall clock or RNG may flow in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs import bench, hotspots
from repro.obs.trace import event

__all__ = [
    "DEFAULT_MIN_RUNTIME_S",
    "DEFAULT_REL_FLOOR",
    "DEFAULT_SIGMAS",
    "DEFAULT_WINDOW",
    "MAD_SCALE",
    "MIN_HISTORY",
    "MetricTrend",
    "SeriesPoint",
    "StepChange",
    "TrendReport",
    "analyze_series",
    "analyze_trajectory",
    "bench_series",
    "emit_trend_event",
    "hotspot_series",
    "render_json",
    "render_markdown",
    "render_text",
]

#: Trailing sessions the noise model is fitted to (newest excluded).
DEFAULT_WINDOW = 8

#: Band half-width in robust sigmas; 4 keeps honest noise inside.
DEFAULT_SIGMAS = 4.0

#: Relative band floor — matches the pairwise comparator's tolerance
#: so the trajectory gate is never *stricter* than the gate it replaces.
DEFAULT_REL_FLOOR = 0.25

#: Absolute band floor in seconds; sub-floor deltas are timer jitter.
DEFAULT_MIN_RUNTIME_S = 0.005

#: MAD -> sigma for Gaussian noise (1 / Phi^-1(3/4)).
MAD_SCALE = 1.4826

#: History points needed before the newest one can be judged.
MIN_HISTORY = 2


@dataclass
class SeriesPoint:
    """One session's observation of one metric."""

    seq: int
    label: str  # e.g. "BENCH_3.json"
    value: float


@dataclass
class StepChange:
    """A point that broke out of its trailing noise band."""

    seq: int
    label: str
    direction: str  # step-up | step-down
    value: float
    median: float

    @property
    def ratio(self) -> Optional[float]:
        return self.value / self.median if self.median > 0 else None


@dataclass
class MetricTrend:
    """One metric's series plus the newest point's judgement."""

    metric: str
    points: List[SeriesPoint]
    median: float = 0.0
    mad: float = 0.0
    band_low: float = 0.0
    band_high: float = 0.0
    #: ok | step-up | step-down | below-floor | insufficient-history
    status: str = "insufficient-history"
    steps: List[StepChange] = field(default_factory=list)

    @property
    def newest(self) -> Optional[SeriesPoint]:
        return self.points[-1] if self.points else None

    @property
    def delta(self) -> Optional[float]:
        if self.newest is None or self.status == "insufficient-history":
            return None
        return self.newest.value - self.median

    @property
    def ratio(self) -> Optional[float]:
        if self.newest is None or self.median <= 0:
            return None
        if self.status == "insufficient-history":
            return None
        return self.newest.value / self.median


@dataclass
class TrendReport:
    """The full trajectory judgement the CLIs and the CI gate consume."""

    root: str
    window: int
    sigmas: float
    rel_floor: float
    min_runtime_s: float
    sessions: List[str] = field(default_factory=list)
    metrics: List[MetricTrend] = field(default_factory=list)
    environment_drift: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricTrend]:
        return [m for m in self.metrics if m.status == "step-up"]

    @property
    def improvements(self) -> List[MetricTrend]:
        return [m for m in self.metrics if m.status == "step-down"]

    @property
    def step_count(self) -> int:
        return sum(len(m.steps) for m in self.metrics)

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


# ----------------------------------------------------------------------
# the noise model
# ----------------------------------------------------------------------

def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _band(history: Sequence[float], sigmas: float, rel_floor: float,
          min_runtime_s: float) -> Tuple[float, float, float, float]:
    """(median, mad, band_low, band_high) for one trailing window."""
    median = _median(history)
    mad = _median([abs(v - median) for v in history])
    half = max(sigmas * MAD_SCALE * mad, rel_floor * median, min_runtime_s)
    return median, mad, max(0.0, median - half), median + half


def analyze_series(
    metric: str,
    points: Sequence[SeriesPoint],
    window: int = DEFAULT_WINDOW,
    sigmas: float = DEFAULT_SIGMAS,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
) -> MetricTrend:
    """Judge one metric's newest point against its trailing history.

    Historical breakouts are recorded in ``steps`` (each point judged
    against the window preceding *it*), but only the newest point sets
    ``status`` — an old step already shipped, it is context, not news.
    """
    trend = MetricTrend(metric=metric, points=list(points))
    series = trend.points
    steps: List[StepChange] = []
    for index in range(len(series)):
        history = [p.value for p in series[max(0, index - window):index]]
        if len(history) < MIN_HISTORY:
            continue
        median, mad, low, high = _band(history, sigmas, rel_floor,
                                       min_runtime_s)
        point = series[index]
        if point.value > high:
            direction = "step-up"
        elif point.value < low:
            direction = "step-down"
        else:
            direction = ""
        if direction:
            steps.append(StepChange(seq=point.seq, label=point.label,
                                    direction=direction, value=point.value,
                                    median=median))
        if index == len(series) - 1:
            trend.median, trend.mad = median, mad
            trend.band_low, trend.band_high = low, high
            newest_floor = max(point.value, median)
            if newest_floor < min_runtime_s:
                trend.status = "below-floor"
            else:
                trend.status = direction or "ok"
    trend.steps = steps
    return trend


# ----------------------------------------------------------------------
# trajectory ingestion
# ----------------------------------------------------------------------

def _seq_of(path: Path) -> int:
    digits = "".join(ch for ch in path.stem if ch.isdigit())
    return int(digits) if digits else 0


def bench_series(
    sessions: Sequence[Tuple[Path, Mapping[str, object]]],
) -> Dict[str, List[SeriesPoint]]:
    """``bench:<key>`` series from decoded ``BENCH_*.json`` sessions."""
    series: Dict[str, List[SeriesPoint]] = {}
    for path, session in sessions:
        benchmarks = session.get("benchmarks")
        if not isinstance(benchmarks, dict):
            continue
        for key in sorted(benchmarks):
            entry = benchmarks[key]
            if not isinstance(entry, dict):
                continue
            wall = entry.get("wall_s")
            if not isinstance(wall, (int, float)) or isinstance(wall, bool):
                continue
            series.setdefault(f"bench:{key}", []).append(SeriesPoint(
                seq=_seq_of(path), label=path.name, value=float(wall)))
    return series


def hotspot_series(
    documents: Sequence[Tuple[Path, Mapping[str, object]]],
) -> Dict[str, List[SeriesPoint]]:
    """``hotspots:stage.<name>.wall_s`` series from campaign artifacts."""
    series: Dict[str, List[SeriesPoint]] = {}
    for path, document in documents:
        stages = document.get("stages")
        if not isinstance(stages, list):
            continue
        for stage in stages:
            if not isinstance(stage, dict):
                continue
            name = stage.get("name")
            wall = stage.get("wall_s")
            if not isinstance(name, str):
                continue
            if not isinstance(wall, (int, float)) or isinstance(wall, bool):
                continue
            series.setdefault(
                f"hotspots:stage.{name}.wall_s", []).append(SeriesPoint(
                    seq=_seq_of(path), label=path.name, value=float(wall)))
    return series


#: Fingerprint keys whose drift makes adjacent sessions incomparable.
_DRIFT_KEYS = ("python", "implementation", "machine", "cpu_count",
               "networkx", "numpy", "scipy")


def _environment_drift(
    sessions: Sequence[Tuple[Path, Mapping[str, object]]],
) -> List[str]:
    notes: List[str] = []
    for (prev_path, prev), (cur_path, cur) in zip(sessions, sessions[1:]):
        prev_env = prev.get("environment")
        cur_env = cur.get("environment")
        if not isinstance(prev_env, dict) or not isinstance(cur_env, dict):
            continue
        for key in _DRIFT_KEYS:
            if prev_env.get(key) != cur_env.get(key):
                notes.append(
                    f"{prev_path.name} -> {cur_path.name}: {key} changed "
                    f"{prev_env.get(key)!r} -> {cur_env.get(key)!r}")
    return notes


def analyze_trajectory(
    root: Optional[Path] = None,
    window: int = DEFAULT_WINDOW,
    sigmas: float = DEFAULT_SIGMAS,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
) -> TrendReport:
    """Ingest every numbered session under ``root`` and judge the newest.

    Sessions that fail to decode are skipped with a drift note rather
    than failing the whole report — one corrupt historical artifact
    must not brick the gate.
    """
    root = root if root is not None else bench.repo_root()
    report = TrendReport(root=str(root), window=window, sigmas=sigmas,
                         rel_floor=rel_floor, min_runtime_s=min_runtime_s)
    bench_sessions: List[Tuple[Path, Mapping[str, object]]] = []
    for path in bench.bench_paths(root):
        try:
            bench_sessions.append((path, bench.load_session(path)))
        except ReproError as exc:
            report.environment_drift.append(f"{path.name}: unreadable ({exc})")
            continue
        report.sessions.append(path.name)
    hotspot_documents: List[Tuple[Path, Mapping[str, object]]] = []
    for path in hotspots.hotspot_paths(root):
        try:
            hotspot_documents.append((path, hotspots.load_document(path)))
        except ReproError as exc:
            report.environment_drift.append(f"{path.name}: unreadable ({exc})")
            continue
        report.sessions.append(path.name)
    all_series = bench_series(bench_sessions)
    all_series.update(hotspot_series(hotspot_documents))
    report.metrics = [
        analyze_series(metric, all_series[metric], window=window,
                       sigmas=sigmas, rel_floor=rel_floor,
                       min_runtime_s=min_runtime_s)
        for metric in sorted(all_series)
    ]
    report.environment_drift.extend(_environment_drift(bench_sessions))
    return report


# ----------------------------------------------------------------------
# rendering + wire event
# ----------------------------------------------------------------------

_STATUS_ORDER = {"step-up": 0, "step-down": 1, "ok": 2,
                 "below-floor": 3, "insufficient-history": 4}


def _ordered(metrics: Sequence[MetricTrend]) -> List[MetricTrend]:
    return sorted(metrics,
                  key=lambda m: (_STATUS_ORDER.get(m.status, 9),
                                 -(abs(m.delta) if m.delta is not None
                                   else 0.0),
                                 m.metric))


def render_text(report: TrendReport, top: int = 40) -> str:
    """Aligned per-metric trajectory table, regressions first."""
    lines = [
        f"perfreport trend: {len(report.sessions)} session(s) under "
        f"{report.root}",
        f"noise model: median +/- max({report.sigmas:g} x 1.4826 x MAD, "
        f"{report.rel_floor:.0%} x median, "
        f"{report.min_runtime_s * 1e3:g} ms) over trailing "
        f"{report.window} session(s)",
    ]
    header = (f"{'status':<21} {'newest':>10} {'median':>10} {'band':>23} "
              f" metric")
    lines += [header, "-" * len(header)]
    ordered = _ordered(report.metrics)
    for metric in ordered[:top]:
        newest = metric.newest
        value = f"{newest.value:.4f}" if newest is not None else "-"
        if metric.status == "insufficient-history":
            median = band = "-"
        else:
            median = f"{metric.median:.4f}"
            band = f"[{metric.band_low:.4f}, {metric.band_high:.4f}]"
        ratio = (f" ({metric.ratio:.2f}x)"
                 if metric.ratio is not None
                 and metric.status in ("step-up", "step-down") else "")
        lines.append(f"{metric.status + ratio:<21} {value:>10} {median:>10} "
                     f"{band:>23}  {metric.metric}")
    if len(report.metrics) > top:
        lines.append(f"... {len(report.metrics) - top} more metric(s) "
                     f"(raise --top)")
    past = [(metric.metric, step) for metric in report.metrics
            for step in metric.steps
            if metric.newest is None or step.seq != metric.newest.seq]
    if past:
        lines.append("")
        lines.append("historical steps:")
        for name, step in past:
            ratio = f" ({step.ratio:.2f}x)" if step.ratio is not None else ""
            lines.append(f"  {step.label}: {name} {step.direction} to "
                         f"{step.value:.4f}{ratio}")
    if report.environment_drift:
        lines.append("")
        lines.append("environment drift:")
        lines.extend(f"  {note}" for note in report.environment_drift)
    lines.append(
        f"{len(report.regressions)} regression(s), "
        f"{len(report.improvements)} improvement(s) across "
        f"{len(report.metrics)} metric(s)")
    return "\n".join(lines)


def render_json(report: TrendReport) -> Dict[str, object]:
    """JSON-ready report — the ``TREND_REPORT.json`` CI artifact body."""
    return {
        "schema": "flattree.trend/1",
        "root": report.root,
        "window": report.window,
        "sigmas": report.sigmas,
        "rel_floor": report.rel_floor,
        "min_runtime_s": report.min_runtime_s,
        "sessions": list(report.sessions),
        "regressions": len(report.regressions),
        "improvements": len(report.improvements),
        "environment_drift": list(report.environment_drift),
        "metrics": [
            {
                "metric": m.metric,
                "status": m.status,
                "newest": m.newest.value if m.newest is not None else None,
                "median": m.median,
                "mad": m.mad,
                "band_low": m.band_low,
                "band_high": m.band_high,
                "delta": m.delta,
                "ratio": m.ratio,
                "points": [
                    {"seq": p.seq, "label": p.label, "value": p.value}
                    for p in m.points
                ],
                "steps": [
                    {"seq": s.seq, "label": s.label,
                     "direction": s.direction, "value": s.value,
                     "median": s.median, "ratio": s.ratio}
                    for s in m.steps
                ],
            }
            for m in _ordered(report.metrics)
        ],
    }


def render_markdown(report: TrendReport, top: int = 40) -> str:
    """GitHub-flavored summary table for PR comments / job summaries."""
    lines = [
        "## Performance trajectory",
        "",
        f"{len(report.sessions)} session(s); noise band = median +/- "
        f"max({report.sigmas:g}x1.4826xMAD, {report.rel_floor:.0%}, "
        f"{report.min_runtime_s * 1e3:g} ms) over trailing "
        f"{report.window}.",
        "",
        "| status | metric | newest | median | band |",
        "|---|---|---:|---:|---|",
    ]
    for metric in _ordered(report.metrics)[:top]:
        newest = metric.newest
        value = f"{newest.value:.4f}" if newest is not None else "-"
        if metric.status == "insufficient-history":
            median = band = "-"
        else:
            median = f"{metric.median:.4f}"
            band = f"[{metric.band_low:.4f}, {metric.band_high:.4f}]"
        badge = {"step-up": "**step-up**",
                 "step-down": "step-down"}.get(metric.status, metric.status)
        lines.append(f"| {badge} | `{metric.metric}` | {value} | {median} "
                     f"| {band} |")
    if report.environment_drift:
        lines.append("")
        lines.append("Environment drift:")
        lines.extend(f"- {note}" for note in report.environment_drift)
    lines.append("")
    lines.append(f"{len(report.regressions)} regression(s), "
                 f"{len(report.improvements)} improvement(s).")
    return "\n".join(lines)


def emit_trend_event(report: TrendReport) -> None:
    """Publish the registered ``perf.trend_session`` wire event."""
    event("perf.trend_session", sessions=len(report.sessions),
          metrics=len(report.metrics), steps=report.step_count)
