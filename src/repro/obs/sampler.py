"""Statistical sampling profiler: wall-clock stacks with span context.

The span profiler (:mod:`repro.obs.perf`) only attributes time to code
we already wrapped in spans — exactly the wrong tool for *discovering*
unknown hotspots inside builders, KSP, MCF, or flowsim internals.
:class:`SamplingProfiler` fills that gap: a background daemon thread
snapshots the target thread's Python stack via
:func:`sys._current_frames` at a configurable rate, aggregates
identical stacks, and tags every sample with the innermost telemetry
span active on the target thread at capture time (via
:func:`repro.obs.trace.active_span_path`), so function-level self/cum
time lands *inside* the existing span taxonomy.

Costs and caveats:

* Overhead is O(stack depth) per sample on the *sampler* thread; the
  target thread pays nothing beyond GIL handoffs.  At the default
  97 Hz the flowsim benchmark gate holds total overhead under 5 %
  (``benchmarks/test_bench_sampler.py``).
* The default rate is a prime (97 Hz) so periodic program phases do
  not alias against the sampling clock.
* Sampling is statistical: functions cheaper than a few sample
  periods may not appear at all.  Durations are estimates
  (``samples x period``), not measurements.

Wire events (registered in :mod:`repro.obs.contract`):
``sampler.start`` on :meth:`SamplingProfiler.start`, ``sampler.flush``
on each :meth:`~SamplingProfiler.flush`, ``sampler.stop`` with the
final sample count on :meth:`~SamplingProfiler.stop`.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from types import FrameType, TracebackType
from typing import Dict, List, Optional, Tuple, Type

from repro.obs.trace import active_span_path, event

__all__ = [
    "DEFAULT_HZ",
    "FunctionStat",
    "SampleProfile",
    "SamplingProfiler",
]

#: Default sampling rate.  Prime, so periodic phases in the profiled
#: program do not alias against the sampler clock.
DEFAULT_HZ = 97.0

#: Frames deeper than this are truncated (innermost kept); guards the
#: per-sample cost against pathological recursion.
_MAX_DEPTH = 128

#: One aggregated sample bucket: (span path at capture, root-first
#: stack of ``module.qualname`` frames) -> hit count.
_Counts = Dict[Tuple[str, Tuple[str, ...]], int]


def _frame_key(frame: FrameType) -> str:
    """``module.qualname`` for one frame (qualname falls back pre-3.11)."""
    code = frame.f_code
    module = str(frame.f_globals.get("__name__", "?"))
    qualname = str(getattr(code, "co_qualname", code.co_name))
    return f"{module}.{qualname}"


def _stack_of(frame: Optional[FrameType]) -> Tuple[str, ...]:
    """Root-first tuple of frame keys, truncated at :data:`_MAX_DEPTH`."""
    parts: List[str] = []
    cursor = frame
    while cursor is not None and len(parts) < _MAX_DEPTH:
        parts.append(_frame_key(cursor))
        cursor = cursor.f_back
    parts.reverse()
    return tuple(parts)


@dataclass
class FunctionStat:
    """Per-function attribution aggregated over all samples.

    ``self`` counts samples where the function was the innermost frame;
    ``cum`` counts samples where it appeared anywhere on the stack
    (deduplicated per sample, so recursion does not double-count).
    ``spans`` maps the telemetry span path active at capture time to
    the number of *self* samples taken under it — the "which phase is
    this hot in" signal the hotspot report ranks by.
    """

    key: str
    self_samples: int = 0
    cum_samples: int = 0
    self_s: float = 0.0
    cum_s: float = 0.0
    spans: Dict[str, int] = field(default_factory=dict)


class SampleProfile:
    """Immutable result of a sampling run."""

    def __init__(self, counts: _Counts, samples: int, duration_s: float,
                 hz: float) -> None:
        self.counts: _Counts = dict(counts)
        self.samples = samples
        self.duration_s = duration_s
        self.hz = hz

    @property
    def period_s(self) -> float:
        """Estimated seconds represented by one sample."""
        if self.samples <= 0:
            return 0.0
        return self.duration_s / self.samples

    @property
    def effective_hz(self) -> float:
        """Achieved sampling rate (<= requested under load)."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.samples / self.duration_s

    def aggregate(self) -> List[FunctionStat]:
        """Per-function stats, sorted by self time (desc), then name."""
        period = self.period_s
        stats: Dict[str, FunctionStat] = {}
        for (span_path, stack), count in self.counts.items():
            if not stack:
                continue
            leaf = stats.setdefault(stack[-1], FunctionStat(stack[-1]))
            leaf.self_samples += count
            leaf.spans[span_path] = leaf.spans.get(span_path, 0) + count
            for key in sorted(set(stack)):
                entry = stats.setdefault(key, FunctionStat(key))
                entry.cum_samples += count
        out = list(stats.values())
        for entry in out:
            entry.self_s = entry.self_samples * period
            entry.cum_s = entry.cum_samples * period
        out.sort(key=lambda entry: (-entry.self_samples, entry.key))
        return out

    def folded(self) -> List[str]:
        """Folded stacks (``a;b;c <weight>``), flamegraph.pl-compatible.

        Weights are integer microseconds of estimated self time, the
        same unit :meth:`repro.obs.perf.Profile.folded` emits, so both
        render through the same tooling.  Span path components prefix
        the Python frames, putting sampled stacks *under* their span in
        the flame graph.
        """
        period_us = self.period_s * 1e6
        weights: Dict[str, int] = {}
        for (span_path, stack), count in self.counts.items():
            parts = span_path.split("/") if span_path else []
            key = ";".join(list(parts) + list(stack))
            if not key:
                continue
            weights[key] = weights.get(key, 0) + int(round(count * period_us))
        return [f"{key} {weight}" for key, weight in sorted(weights.items())]

    def render_table(self, top: int = 20) -> str:
        """Human-readable top-N by self time, with dominant span."""
        lines = [
            f"samples {self.samples}  duration {self.duration_s:.2f}s  "
            f"rate {self.effective_hz:.0f}/{self.hz:.0f} Hz",
            f"{'self_s':>8} {'cum_s':>8} {'self%':>6}  function  [span]",
        ]
        total_s = self.samples * self.period_s
        for entry in self.aggregate()[:top]:
            share = 100.0 * entry.self_s / total_s if total_s > 0 else 0.0
            span = ""
            if entry.spans:
                span_path = max(sorted(entry.spans),
                                key=lambda path: entry.spans[path])
                if span_path:
                    span = f"  [{span_path}]"
            lines.append(f"{entry.self_s:8.3f} {entry.cum_s:8.3f} "
                         f"{share:5.1f}%  {entry.key}{span}")
        return "\n".join(lines)


class SamplingProfiler:
    """Background-thread stack sampler for one target thread.

    Usage::

        profiler = SamplingProfiler(hz=97)
        profiler.start()            # samples the *calling* thread
        ... workload ...
        profile = profiler.stop()   # SampleProfile

    or as a context manager (profile lands on ``.profile``).  One
    profiler instance supports one start/stop cycle.
    """

    def __init__(self, hz: float = DEFAULT_HZ,
                 target_thread_id: Optional[int] = None) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = hz
        self._target_thread_id = target_thread_id
        self._interval_s = 1.0 / hz
        self._counts: _Counts = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._duration_s = 0.0
        #: ``_duration_s`` is finalized both by the sampler thread's
        #: ``finally`` (crash path) and by :meth:`stop` (normal path);
        #: the join() already orders them, but the lock makes the
        #: handoff explicit rather than implicit in the join.
        self._state_lock = threading.Lock()
        self.profile: Optional[SampleProfile] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def samples(self) -> int:
        """Samples captured so far (approximate while running)."""
        return self._samples

    def start(self) -> "SamplingProfiler":
        """Begin sampling; the target defaults to the calling thread."""
        if self._thread is not None:
            raise RuntimeError("SamplingProfiler cannot be restarted; "
                               "create a new instance")
        if self._target_thread_id is None:
            self._target_thread_id = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True)
        self._thread.start()
        event("sampler.start", hz=self.hz)
        return self

    def stop(self) -> SampleProfile:
        """Stop sampling, join the sampler thread, return the profile.

        Idempotent: a second ``stop()`` returns the cached profile
        instead of raising, so ``finally``-style teardown can call it
        unconditionally after an explicit mid-body stop.
        """
        if self._thread is None:
            raise RuntimeError("SamplingProfiler was never started")
        if self.profile is not None:
            return self.profile
        self._stop.set()
        self._thread.join()
        with self._state_lock:
            if self._duration_s == 0.0:
                self._duration_s = time.perf_counter() - self._started_at
        self.profile = SampleProfile(
            self._counts, self._samples, self._duration_s, self.hz)
        event("sampler.stop", samples=self._samples,
              elapsed_s=self._duration_s)
        return self.profile

    def flush(self, label: str = "") -> int:
        """Emit a ``sampler.flush`` marker; returns samples so far.

        Campaign runners call this at stage boundaries so a live
        telemetry tail shows sampling progress between phases; it does
        not reset or copy the aggregation state.
        """
        event("sampler.flush", samples=self._samples, label=label)
        return self._samples

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> bool:
        # Tear the sampler thread down even when the with-body raised;
        # skip the stop when it already happened (explicit mid-body
        # stop) so the original exception is never masked.
        if self._thread is not None and self.profile is None:
            self.stop()
        return False

    def _run(self) -> None:
        """Sampler thread body: fixed-rate ticks with drift correction.

        The loop runs under ``try/finally``: whatever a capture raises,
        the duration is finalized and the stop flag is set, so a
        crashed sampler can still be ``stop()``ed cleanly and never
        outlives its start/stop cycle.
        """
        target = self._target_thread_id
        assert target is not None
        interval = self._interval_s
        origin = time.perf_counter()
        tick = 0
        try:
            while True:
                tick += 1
                deadline = origin + tick * interval
                delay = deadline - time.perf_counter()
                if delay > 0 and self._stop.wait(delay):
                    break
                if self._stop.is_set():
                    break
                frame = sys._current_frames().get(target)
                if frame is None:  # target thread exited
                    break
                stack = _stack_of(frame)
                del frame  # drop the reference promptly; frames pin locals
                span_path = active_span_path(target)
                bucket = (span_path, stack)
                self._counts[bucket] = self._counts.get(bucket, 0) + 1
                self._samples += 1
        finally:
            self._stop.set()
            with self._state_lock:
                self._duration_s = time.perf_counter() - self._started_at
