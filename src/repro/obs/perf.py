"""Span-tree profiling: where the wall-clock of a run actually went.

:class:`Profile` reconstructs the span call tree of one telemetry
session from the JSONL events the tracer emitted (``kind == "span"``)
and answers the questions a perf PR is judged on:

* **per-name accounting** — cumulative and *self* time (cumulative
  minus direct children) plus call counts, via :meth:`Profile.
  aggregate`;
* **the critical path** — the chain of heaviest spans from the slowest
  root down to a leaf, via :meth:`Profile.critical_path`;
* **a folded-stack export** — ``parent;child;leaf <microseconds>``
  lines consumable by ``flamegraph.pl`` and speedscope, via
  :meth:`Profile.folded`;
* **memory attribution** — when the trace was recorded under
  ``REPRO_TRACEMALLOC`` (see :func:`repro.obs.enable`), the per-name
  peak of the spans' ``mem_peak_kb`` deltas.

Reconstruction prefers the ``span_id``/``parent_id`` trace context
every span now carries (exact even when sibling spans share a name);
traces from older sessions without ids are linked by replaying the
exit-ordered stream against ``depth``/``path`` prefixes.

The CLI front end is ``python -m tools.perfreport profile RUN.jsonl``
(and ``... flamegraph RUN.jsonl``); the format is documented in
``docs/performance.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import ReproError

#: Event keys that are trace plumbing rather than call-site attributes.
_CORE_FIELDS = frozenset({
    "ts", "name", "kind", "duration_s", "path", "depth",
    "span_id", "parent_id", "mem_peak_kb",
})


@dataclass
class SpanNode:
    """One reconstructed span occurrence in the call tree."""

    name: str
    span_id: int
    parent_id: Optional[int]
    path: str
    depth: int
    duration_s: float
    mem_peak_kb: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Duration not covered by direct children (clamped at 0)."""
        covered = sum(child.duration_s for child in self.children)
        return max(0.0, self.duration_s - covered)


@dataclass
class NameStats:
    """Aggregated accounting for every span sharing one name."""

    name: str
    calls: int
    cum_s: float
    self_s: float
    mem_peak_kb: Optional[float]


class Profile:
    """A reconstructed span tree plus the derived perf reports."""

    def __init__(self, roots: List[SpanNode],
                 nodes: Dict[int, SpanNode]) -> None:
        self.roots = roots
        self.nodes = nodes

    # -- construction -------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Mapping[str, object]]) -> "Profile":
        """Build a profile from already-decoded telemetry events.

        Non-span events are ignored, so the full JSONL stream of a
        ``--telemetry`` run can be fed in unfiltered.
        """
        spans = [e for e in events if e.get("kind") == "span"]
        nodes = [cls._node_of(e) for e in spans]
        if nodes and all(node.span_id > 0 for node in nodes):
            return cls._link_by_ids(nodes)
        return cls._link_by_exit_order(nodes)

    @classmethod
    def from_jsonl(cls, path: str) -> "Profile":
        """Load a profile from a ``--telemetry=PATH`` JSONL file."""
        events: List[Mapping[str, object]] = []
        with open(path, "r", encoding="utf-8") as stream:
            for lineno, line in enumerate(stream, start=1):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"{path}:{lineno}: not valid JSONL: {exc}") from exc
                if isinstance(event, dict):
                    events.append(event)
        return cls.from_events(events)

    @staticmethod
    def _node_of(event: Mapping[str, object]) -> SpanNode:
        name = event.get("name")
        duration = event.get("duration_s")
        if not isinstance(name, str) or not isinstance(duration, (int, float)):
            raise ReproError(f"malformed span event: {dict(event)!r}")
        span_id = event.get("span_id")
        parent_id = event.get("parent_id")
        depth = event.get("depth")
        mem = event.get("mem_peak_kb")
        path = event.get("path")
        return SpanNode(
            name=name,
            span_id=span_id if isinstance(span_id, int)
            and not isinstance(span_id, bool) else 0,
            parent_id=parent_id if isinstance(parent_id, int)
            and not isinstance(parent_id, bool) else None,
            path=path if isinstance(path, str) else name,
            depth=depth if isinstance(depth, int)
            and not isinstance(depth, bool) else 0,
            duration_s=float(duration),
            mem_peak_kb=float(mem) if isinstance(mem, (int, float))
            and not isinstance(mem, bool) else None,
            attrs={k: v for k, v in event.items() if k not in _CORE_FIELDS},
        )

    @classmethod
    def _link_by_ids(cls, nodes: List[SpanNode]) -> "Profile":
        by_id = {node.span_id: node for node in nodes}
        if len(by_id) != len(nodes):
            raise ReproError("duplicate span_id in trace — ids must be "
                             "unique within one telemetry session")
        roots: List[SpanNode] = []
        for node in nodes:
            parent = (by_id.get(node.parent_id)
                      if node.parent_id is not None else None)
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        return cls(roots, by_id)

    @classmethod
    def _link_by_exit_order(cls, nodes: List[SpanNode]) -> "Profile":
        # Children exit (and emit) before their parents, so a newly
        # seen span adopts every still-orphaned span one level deeper
        # whose path sits under its own.
        pending: List[SpanNode] = []
        for seq, node in enumerate(nodes, start=1):
            node.span_id = seq
            adopted = [o for o in pending
                       if o.depth == node.depth + 1
                       and o.path.startswith(node.path + "/")]
            for orphan in adopted:
                orphan.parent_id = node.span_id
                pending.remove(orphan)
            node.children.extend(adopted)
            pending.append(node)
        return cls(pending, {node.span_id: node for node in nodes})

    # -- reports ------------------------------------------------------

    @property
    def total_s(self) -> float:
        """Wall-clock covered by the root spans."""
        return sum(root.duration_s for root in self.roots)

    def walk(self) -> Iterable[SpanNode]:
        """Every node, parents before children."""
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def aggregate(self) -> List[NameStats]:
        """Per-name calls / cumulative / self time, heaviest self first.

        Cumulative time is the plain sum of span durations per name, so
        a recursive span nested under itself counts its subtree twice —
        self time never double-counts and is the column to optimize by.
        """
        stats: Dict[str, NameStats] = {}
        for node in self.walk():
            entry = stats.get(node.name)
            if entry is None:
                stats[node.name] = NameStats(
                    name=node.name, calls=1, cum_s=node.duration_s,
                    self_s=node.self_s, mem_peak_kb=node.mem_peak_kb)
                continue
            entry.calls += 1
            entry.cum_s += node.duration_s
            entry.self_s += node.self_s
            if node.mem_peak_kb is not None:
                entry.mem_peak_kb = max(entry.mem_peak_kb or 0.0,
                                        node.mem_peak_kb)
        return sorted(stats.values(),
                      key=lambda s: (-s.self_s, s.name))

    def critical_path(self) -> List[SpanNode]:
        """Heaviest root, then the heaviest child at every level."""
        if not self.roots:
            return []
        node = max(self.roots, key=lambda n: (n.duration_s, -n.span_id))
        chain = [node]
        while node.children:
            node = max(node.children, key=lambda n: (n.duration_s, -n.span_id))
            chain.append(node)
        return chain

    def folded(self) -> List[str]:
        """Folded stacks: ``a;b;c <self-microseconds>`` per unique path.

        Weights are integer self-time microseconds, the format
        ``flamegraph.pl`` ingests directly and speedscope imports as
        "folded stacks"; identical paths (repeated calls) are summed.
        """
        weights: Dict[str, int] = {}
        for node in self.walk():
            stack = node.path.replace(";", ",").split("/")
            key = ";".join(stack)
            weights[key] = weights.get(key, 0) + int(round(node.self_s * 1e6))
        return [f"{key} {weight}" for key, weight in sorted(weights.items())]

    def render_table(self, top: int = 20) -> str:
        """Aligned text report: totals, hot names, the critical path."""
        stats = self.aggregate()
        lines = [
            f"{len(self.nodes)} spans, {len(self.roots)} roots, "
            f"total {self.total_s:.6f}s"
        ]
        has_mem = any(s.mem_peak_kb is not None for s in stats)
        header = (f"{'name':<28} {'calls':>6} {'cum_s':>10} {'self_s':>10} "
                  f"{'self%':>6}")
        if has_mem:
            header += f" {'peak_kb':>9}"
        lines += [header, "-" * len(header)]
        total = self.total_s or 1.0
        for entry in stats[:top]:
            row = (f"{entry.name:<28} {entry.calls:>6} "
                   f"{entry.cum_s:>10.6f} {entry.self_s:>10.6f} "
                   f"{100 * entry.self_s / total:>5.1f}%")
            if has_mem:
                mem = (f"{entry.mem_peak_kb:>9.1f}"
                       if entry.mem_peak_kb is not None else f"{'-':>9}")
                row += f" {mem}"
            lines.append(row)
        chain = self.critical_path()
        if chain:
            lines.append("")
            lines.append("critical path:")
            for node in chain:
                lines.append(
                    f"  {'  ' * node.depth}{node.name}  "
                    f"cum {node.duration_s:.6f}s  self {node.self_s:.6f}s")
        return "\n".join(lines)
