"""repro.obs — dependency-free observability: metrics, spans, sinks.

Three pieces (see ``docs/observability.md`` for the metric catalog):

* a process-global :class:`~repro.obs.registry.MetricsRegistry`
  (``repro.obs.registry``) of counters, gauges and histograms addressed
  by dotted names (``topology.fattree.build_s``);
* a span/tracing API — ``with obs.span("convert", mode=...):`` —
  emitting structured JSON-lines events to a pluggable sink;
* instrumentation helpers (``incr`` / ``observe`` / ``set_gauge`` /
  ``timer`` / ``event``) used throughout the library.  All of them are
  **no-ops until** :func:`enable` **is called**: the disabled fast path
  is a single attribute check, so the permanent instrumentation costs
  nothing in ordinary runs.

Spans carry ``span_id``/``parent_id`` trace context; feed a recorded
JSONL trace to :class:`~repro.obs.perf.Profile` for per-name self /
cumulative time, the critical path, and flamegraph export, and see
:mod:`repro.obs.bench` for durable ``BENCH_*.json`` perf sessions
(``docs/performance.md``).

Typical use::

    from repro import obs
    from repro.obs.sinks import MemorySink

    sink = MemorySink()
    obs.enable(sink, emit_metric_events=True)
    with obs.span("experiment", k=8):
        ...                     # instrumented library calls
    print(obs.render_table())   # final counters/quantiles
    obs.disable()               # flush + close the sink
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.render import render_table
from repro.obs.stats import (
    Ewma,
    WindowedQuantile,
    gini,
    nearest_rank_quantile,
    quantile_summary,
)
from repro.obs.sinks import (
    FileSink,
    MemorySink,
    NullSink,
    Sink,
    StderrSink,
    StreamSink,
)
from repro.obs.perf import NameStats, Profile, SpanNode
from repro.obs.progress import ProgressTracker, read_rss_kb
from repro.obs.sampler import (
    FunctionStat,
    SampleProfile,
    SamplingProfiler,
)
from repro.obs.trace import (
    active_span_path,
    TRACEMALLOC_ENV,
    Span,
    current_sink,
    disable,
    enable,
    enabled,
    event,
    incr,
    install_sink,
    observe,
    publish,
    registry,
    set_gauge,
    span,
    timer,
)

__all__ = [
    "Counter",
    "Ewma",
    "FileSink",
    "FunctionStat",
    "Gauge",
    "Histogram",
    "MemorySink",
    "MetricsRegistry",
    "NameStats",
    "NullSink",
    "Profile",
    "ProgressTracker",
    "SampleProfile",
    "SamplingProfiler",
    "Sink",
    "Span",
    "SpanNode",
    "StderrSink",
    "StreamSink",
    "TRACEMALLOC_ENV",
    "Timer",
    "WindowedQuantile",
    "active_span_path",
    "current_sink",
    "disable",
    "enable",
    "enabled",
    "event",
    "gini",
    "incr",
    "install_sink",
    "nearest_rank_quantile",
    "observe",
    "publish",
    "quantile_summary",
    "read_rss_kb",
    "registry",
    "render_table",
    "set_gauge",
    "span",
    "timer",
]
