"""Durable benchmark sessions: the ``BENCH_<seq>.json`` trajectory.

``benchmarks/METRICS.json`` is overwritten on every bench run and
pytest-benchmark's tables scroll away with the terminal, so the repo
had no way to say "this PR made the KSP solver 30% slower".  This
module defines the durable record: one repo-root ``BENCH_<seq>.json``
per bench session, carrying

* an **environment fingerprint** (python / networkx / numpy / scipy
  versions, CPU count, platform, git commit + dirty flag) so numbers
  are only ever compared like-for-like;
* one entry per benchmark with its **wall time** (pytest-benchmark's
  per-round minimum — the low-noise statistic — plus mean / stddev /
  rounds) merged with the **registry counters** the bench harness
  snapshots into ``benchmarks/METRICS.json`` (solver iterations,
  repair loops, cache hits);
* a monotonically growing sequence number, so ``BENCH_1.json``,
  ``BENCH_2.json``, ... form the repository's perf trajectory.

Produced by ``flattree bench`` (see :mod:`repro.cli`), consumed by the
regression gate ``python -m tools.perfreport compare BASE NEW`` and by
``make bench-compare`` / ``make bench-smoke``.  The schema is
documented in ``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import platform
import posixpath
import re
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ReproError

#: Version of the BENCH_*.json layout; bump on breaking change.
BENCH_SCHEMA_VERSION = 1

#: Repo-root session files: ``BENCH_<seq>.json`` (or a free-form tag
#: such as ``BENCH_smoke.json`` for throwaway runs).
_BENCH_SEQ = re.compile(r"^BENCH_(\d+)\.json$")

#: One bench entry: wall stats plus the registry snapshot.
BenchEntry = Dict[str, Any]

#: A full decoded session document.
BenchSession = Dict[str, Any]


def _git(root: Path, *args: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args], cwd=str(root), capture_output=True,
            text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def environment_fingerprint(root: Optional[Path] = None) -> Dict[str, object]:
    """The comparability context a bench session was recorded under."""
    fingerprint: Dict[str, object] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
    for dep in ("networkx", "numpy", "scipy"):
        try:
            module = __import__(dep)
            fingerprint[dep] = str(module.__version__)
        except ImportError:
            fingerprint[dep] = None
    from repro import __version__  # function-level: avoids a facade cycle

    fingerprint["repro"] = __version__
    root = root if root is not None else repo_root()
    commit = _git(root, "rev-parse", "HEAD")
    fingerprint["git_commit"] = commit
    status = _git(root, "status", "--porcelain")
    fingerprint["git_dirty"] = bool(status) if status is not None else None
    return fingerprint


def repo_root() -> Path:
    """The checkout root (two levels above the ``repro`` package)."""
    return Path(__file__).resolve().parents[3]


def bench_paths(root: Path) -> List[Path]:
    """Existing numbered sessions, oldest first."""
    found = [(int(m.group(1)), path)
             for path in root.glob("BENCH_*.json")
             if (m := _BENCH_SEQ.match(path.name)) is not None]
    return [path for _, path in sorted(found)]


def next_bench_path(root: Path) -> Path:
    """The next free ``BENCH_<seq>.json`` slot under ``root``."""
    taken = [int(m.group(1))
             for path in root.glob("BENCH_*.json")
             if (m := _BENCH_SEQ.match(path.name)) is not None]
    return root / f"BENCH_{max(taken, default=0) + 1}.json"


def normalize_nodeid(nodeid: str) -> str:
    """Canonical bench key: ``test_bench_x.py::test_y``.

    pytest-benchmark's ``fullname`` and the METRICS.json node ids
    disagree on whether the file part carries the ``benchmarks/``
    directory prefix depending on the invocation's rootdir; dropping
    the directory makes the two join keys identical.
    """
    file_part, sep, rest = nodeid.partition("::")
    return posixpath.basename(file_part) + sep + rest


def build_session(
    bench_stats: Mapping[str, Mapping[str, object]],
    metrics: Optional[Mapping[str, Mapping[str, object]]] = None,
    label: str = "bench",
    root: Optional[Path] = None,
) -> BenchSession:
    """Merge per-bench wall stats with registry snapshots.

    ``bench_stats`` maps node ids to ``{"wall_s", "mean_s", "stddev_s",
    "rounds"}`` (see :func:`parse_pytest_benchmark_json`); ``metrics``
    is the decoded ``benchmarks/METRICS.json`` (may be ``None`` when
    the session ran with ``REPRO_TELEMETRY=0``).
    """
    metric_map = {normalize_nodeid(k): v for k, v in (metrics or {}).items()}
    benchmarks: Dict[str, BenchEntry] = {}
    for nodeid, stats in bench_stats.items():
        key = normalize_nodeid(nodeid)
        entry: BenchEntry = dict(stats)
        entry["metrics"] = dict(metric_map.get(key, {}))
        benchmarks[key] = entry
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "label": label,
        # Session metadata by contract: ``ts`` records when the bench
        # ran and is excluded from baseline comparison (see
        # compare_sessions), so wall time here cannot skew replays.
        "ts": time.time(),  # flatlint: disable=FT007
        "environment": environment_fingerprint(root),
        "benchmarks": benchmarks,
    }


def parse_pytest_benchmark_json(
        raw: Mapping[str, object]) -> Dict[str, Dict[str, object]]:
    """Extract per-bench wall stats from ``--benchmark-json`` output."""
    stats: Dict[str, Dict[str, object]] = {}
    benches = raw.get("benchmarks")
    if not isinstance(benches, list):
        raise ReproError("pytest-benchmark JSON has no 'benchmarks' list")
    for bench in benches:
        if not isinstance(bench, dict):
            continue
        fullname = bench.get("fullname")
        bench_stats = bench.get("stats")
        if not isinstance(fullname, str) or not isinstance(bench_stats, dict):
            continue
        stats[fullname] = {
            "wall_s": bench_stats.get("min"),
            "mean_s": bench_stats.get("mean"),
            "stddev_s": bench_stats.get("stddev"),
            "rounds": bench_stats.get("rounds"),
        }
    return stats


def validate_session(session: Mapping[str, object]) -> List[str]:
    """Schema-check a decoded session document (empty = valid)."""
    problems: List[str] = []
    if session.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"'schema' must be {BENCH_SCHEMA_VERSION}, "
            f"got {session.get('schema')!r}")
    env = session.get("environment")
    if not isinstance(env, dict):
        problems.append("missing 'environment' fingerprint object")
    else:
        for key in ("python", "cpu_count", "networkx", "repro"):
            if key not in env:
                problems.append(f"environment missing {key!r}")
    benchmarks = session.get("benchmarks")
    if not isinstance(benchmarks, dict):
        problems.append("missing 'benchmarks' object")
        return problems
    for key, entry in benchmarks.items():
        if not isinstance(entry, dict):
            problems.append(f"bench {key!r} is not an object")
            continue
        wall = entry.get("wall_s")
        if (not isinstance(wall, (int, float)) or isinstance(wall, bool)
                or wall < 0):
            problems.append(f"bench {key!r} missing non-negative 'wall_s'")
        if not isinstance(entry.get("metrics"), dict):
            problems.append(f"bench {key!r} missing 'metrics' object")
    return problems


def write_session(path: Path, session: BenchSession) -> None:
    """Write one session document (sorted keys, trailing newline)."""
    problems = validate_session(session)
    if problems:
        raise ReproError(
            f"refusing to write invalid bench session {path}: "
            + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(session, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_session(path: Path) -> BenchSession:
    """Read and schema-check one ``BENCH_*.json``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            session = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read bench session {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(session, dict):
        raise ReproError(f"{path} is not a JSON object")
    problems = validate_session(session)
    if problems:
        raise ReproError(f"{path} fails the bench schema: "
                         + "; ".join(problems))
    return session
