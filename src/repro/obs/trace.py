"""Telemetry state, span tracing, and the zero-overhead fast path.

Design goals, in order:

1. **Disabled is free.**  Every helper (``incr``, ``observe``,
   ``set_gauge``, ``timer``, ``span``) starts with one attribute check
   against the module-global :data:`_state` and returns immediately —
   no allocation, no dict lookup — so permanently-instrumented hot
   paths cost nothing in normal runs.
2. **Call sites aggregate.**  Instrumentation records *per public call*
   (one ``incr`` with the loop's total, one timer around the whole
   solve), never per inner-loop iteration, so even enabled overhead is
   O(1) per library call.
3. **Events are flat dicts.**  A span exit emits ``{ts, name, kind:
   "span", duration_s, path, depth, ...attrs}``; metric updates (when a
   sink is installed) emit ``{ts, name, kind, value}``.  Sinks are
   pluggable (:mod:`repro.obs.sinks`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import NullSink, Sink

#: The process-global registry all helpers write into.
registry = MetricsRegistry()


class _State:
    """Mutable telemetry switchboard (one per process)."""

    __slots__ = ("enabled", "sink", "emit_metric_events", "span_stack")

    def __init__(self) -> None:
        self.enabled = False
        self.sink: Sink = NullSink()
        self.emit_metric_events = False
        self.span_stack: List[str] = []


_state = _State()


def enabled() -> bool:
    """Is telemetry collection currently on?"""
    return _state.enabled


def enable(sink: Optional[Sink] = None,
           emit_metric_events: bool = False) -> None:
    """Turn telemetry on.

    ``sink`` receives span events (and, with ``emit_metric_events``,
    every metric update) as JSON-ready dicts; ``None`` keeps
    metrics-only collection, the cheapest enabled mode.
    """
    _state.sink = sink if sink is not None else NullSink()
    _state.emit_metric_events = emit_metric_events
    _state.span_stack = []
    _state.enabled = True


def disable() -> None:
    """Turn telemetry off and flush/close the sink."""
    _state.enabled = False
    try:
        _state.sink.flush()
        _state.sink.close()
    finally:
        _state.sink = NullSink()
        _state.emit_metric_events = False
        _state.span_stack = []


def current_sink() -> Sink:
    return _state.sink


def _emit_metric(name: str, kind: str, value: float) -> None:
    _state.sink.emit({
        "ts": time.time(),
        "name": name,
        "kind": kind,
        "value": value,
    })


def incr(name: str, amount: float = 1.0) -> None:
    """Bump counter ``name`` (no-op when telemetry is disabled)."""
    if not _state.enabled:
        return
    registry.counter(name).inc(amount)
    if _state.emit_metric_events:
        _emit_metric(name, "counter", amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when telemetry is disabled)."""
    if not _state.enabled:
        return
    registry.gauge(name).set(value)
    if _state.emit_metric_events:
        _emit_metric(name, "gauge", value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if not _state.enabled:
        return
    registry.histogram(name).observe(value)
    if _state.emit_metric_events:
        _emit_metric(name, "histogram", value)


class _NullCtx:
    """Shared allocation-free context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullCtx":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CTX = _NullCtx()


class _Timer:
    __slots__ = ("_name", "_start")

    def __init__(self, name: str) -> None:
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        if _state.enabled:
            registry.histogram(self._name).observe(elapsed)
            if _state.emit_metric_events:
                _state.sink.emit({
                    "ts": time.time(),
                    "name": self._name,
                    "kind": "timer",
                    "duration_s": elapsed,
                })
        return False


def timer(name: str) -> Union[_NullCtx, _Timer]:
    """``with timer("mcf.exact.solve_s"):`` — seconds into a histogram."""
    if not _state.enabled:
        return _NULL_CTX
    return _Timer(name)


class Span:
    """A named wall-clock phase; nests via the state's span stack.

    On exit it emits one event carrying the span's ``duration_s``, its
    slash-joined ``path`` (ancestry included) and ``depth``, plus any
    keyword attributes given at creation, and records the duration into
    the registry histogram ``span.<name>_s``.
    """

    __slots__ = ("name", "attrs", "path", "depth", "_start")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = _state.span_stack
        self.depth = len(stack)
        self.path = "/".join(stack + [self.name])
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[type], *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        stack = _state.span_stack
        if stack and stack[-1] == self.name:
            stack.pop()
        if _state.enabled:
            registry.histogram(f"span.{self.name}_s").observe(duration)
            event = {
                "ts": time.time(),
                "name": self.name,
                "kind": "span",
                "duration_s": duration,
                "path": self.path,
                "depth": self.depth,
            }
            if exc_type is not None:
                event["error"] = exc_type.__name__
            event.update(self.attrs)
            _state.sink.emit(event)
        return False


def span(name: str, **attrs: object) -> Union[_NullCtx, Span]:
    """``with span("convert", mode="global-random"):`` — trace a phase."""
    if not _state.enabled:
        return _NULL_CTX
    return Span(name, attrs)


def event(name: str, **attrs: object) -> None:
    """Emit a one-off structured event (e.g. a skipped candidate)."""
    if not _state.enabled:
        return
    payload = {"ts": time.time(), "name": name, "kind": "event",
               "value": attrs.pop("value", 1)}
    payload.update(attrs)
    _state.sink.emit(payload)
