"""Telemetry state, span tracing, and the zero-overhead fast path.

Design goals, in order:

1. **Disabled is free.**  Every helper (``incr``, ``observe``,
   ``set_gauge``, ``timer``, ``span``) starts with one attribute check
   against the module-global :data:`_state` and returns immediately —
   no allocation, no dict lookup — so permanently-instrumented hot
   paths cost nothing in normal runs.
2. **Call sites aggregate.**  Instrumentation records *per public call*
   (one ``incr`` with the loop's total, one timer around the whole
   solve), never per inner-loop iteration, so even enabled overhead is
   O(1) per library call.
3. **Events are flat dicts.**  A span exit emits ``{ts, name, kind:
   "span", duration_s, path, depth, ...attrs}``; metric updates (when a
   sink is installed) emit ``{ts, name, kind, value}``.  Sinks are
   pluggable (:mod:`repro.obs.sinks`).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import tracemalloc
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import NullSink, Sink

#: The process-global registry all helpers write into.
registry = MetricsRegistry()

#: Environment switch for per-span memory accounting (see
#: :func:`enable`); any value other than ``""``/``"0"`` turns it on.
TRACEMALLOC_ENV = "REPRO_TRACEMALLOC"

#: The ambient span stack: ``(name, span_id)`` frames, innermost last.
#: A :mod:`contextvars` variable (not a plain list on ``_state``) so
#: parentage stays correct per-thread and per-async-task.
_SPAN_STACK: "contextvars.ContextVar[Tuple[Tuple[str, int], ...]]" = \
    contextvars.ContextVar("repro_obs_span_stack", default=())

#: Mirror of the innermost active span *path* per OS thread.  The
#: contextvar above is invisible from other threads, but the sampling
#: profiler (:mod:`repro.obs.sampler`) runs on its own thread and needs
#: to attribute each captured stack to the span the *target* thread is
#: currently inside.  Entries are plain lists mutated only by their
#: owning thread (append on ``__enter__``, pop on ``__exit__`` — both
#: atomic under the GIL); readers take a best-effort snapshot.
_THREAD_SPAN_PATHS: Dict[int, List[str]] = {}


def _push_thread_span_path(path: str) -> None:
    _THREAD_SPAN_PATHS.setdefault(threading.get_ident(), []).append(path)


def _pop_thread_span_path() -> None:
    tid = threading.get_ident()
    stack = _THREAD_SPAN_PATHS.get(tid)
    if stack:
        stack.pop()
    if not stack:
        _THREAD_SPAN_PATHS.pop(tid, None)


def active_span_path(thread_id: Optional[int] = None) -> str:
    """Slash-joined path of the innermost active span on a thread.

    ``thread_id`` defaults to the calling thread.  Returns ``""`` when
    the thread has no active span (or telemetry is disabled).  Safe to
    call from any thread: the per-thread stacks are only appended/
    popped by their owners, so a cross-thread read sees either the
    previous or the next innermost path, never a torn value.
    """
    if thread_id is None:
        thread_id = threading.get_ident()
    stack = _THREAD_SPAN_PATHS.get(thread_id)
    if not stack:
        return ""
    try:
        return stack[-1]
    except IndexError:  # raced a pop on the owner thread
        return ""


class _State:
    """Mutable telemetry switchboard (one per process)."""

    __slots__ = ("enabled", "sink", "emit_metric_events", "next_span_id",
                 "trace_malloc", "_started_tracemalloc")

    def __init__(self) -> None:
        self.enabled = False
        self.sink: Sink = NullSink()
        self.emit_metric_events = False
        #: Deterministic per-process span-id counter: reset to 1 by
        #: :func:`enable`, so the same instrumented run always yields
        #: the same ids (no wall-clock or randomness in span identity).
        self.next_span_id = 1
        self.trace_malloc = False
        self._started_tracemalloc = False


_state = _State()


def enabled() -> bool:
    """Is telemetry collection currently on?"""
    return _state.enabled


def enable(sink: Optional[Sink] = None,
           emit_metric_events: bool = False,
           trace_malloc: Optional[bool] = None) -> None:
    """Turn telemetry on.

    ``sink`` receives span events (and, with ``emit_metric_events``,
    every metric update) as JSON-ready dicts; ``None`` keeps
    metrics-only collection, the cheapest enabled mode.

    ``trace_malloc`` adds per-span memory accounting: each span event
    grows a ``mem_peak_kb`` attribute, the :mod:`tracemalloc` peak over
    the span body relative to its entry allocation level.  ``None``
    (the default) defers to the :data:`TRACEMALLOC_ENV` environment
    variable.  Peak tracking is process-global, so a nested span that
    resets the peak can make an enclosing span under-report — read
    ``mem_peak_kb`` as per-phase attribution, not an exact bound (see
    ``docs/performance.md``).
    """
    _state.sink = sink if sink is not None else NullSink()
    _state.emit_metric_events = emit_metric_events
    _state.next_span_id = 1
    _SPAN_STACK.set(())
    _THREAD_SPAN_PATHS.clear()
    if trace_malloc is None:
        trace_malloc = os.environ.get(TRACEMALLOC_ENV, "0") not in ("", "0")
    _state.trace_malloc = trace_malloc
    if trace_malloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        _state._started_tracemalloc = True
    _state.enabled = True


def disable() -> None:
    """Turn telemetry off and flush/close the sink."""
    _state.enabled = False
    try:
        _state.sink.flush()
        _state.sink.close()
    finally:
        _state.sink = NullSink()
        _state.emit_metric_events = False
        _SPAN_STACK.set(())
        _THREAD_SPAN_PATHS.clear()
        if _state._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        _state.trace_malloc = False
        _state._started_tracemalloc = False


def current_sink() -> Sink:
    return _state.sink


def install_sink(sink: Sink) -> Sink:
    """Swap the active sink, returning the one it replaces.

    The supported way to interpose on the bus (e.g. the health plane's
    :class:`~repro.health.aggregate.HealthSink` tee wraps the previous
    sink and restores it on detach).  The swap does not flush or close
    either sink — the caller owns both lifecycles.
    """
    previous = _state.sink
    _state.sink = sink
    return previous


def _emit_metric(name: str, kind: str, value: float) -> None:
    _state.sink.emit({
        "ts": time.time(),
        "name": name,
        "kind": kind,
        "value": value,
    })


def publish(kind: str, name: str, **fields: object) -> None:
    """Emit one raw wire event through the telemetry bus.

    The sanctioned emission path for library code that produces
    non-metric event kinds (the monitor's ``link_sample`` family, the
    health plane's rollup exports): everything still funnels through
    the current sink, so a bus tee (:class:`repro.health.HealthSink`)
    observes every event regardless of who produced it.  No-op when
    telemetry is disabled; flatlint FT005 forbids bypassing this by
    calling ``current_sink().emit`` directly outside ``repro.obs`` /
    ``repro.health``.
    """
    if not _state.enabled:
        return
    payload: Dict[str, object] = {"ts": time.time(), "name": name,
                                  "kind": kind}
    payload.update(fields)
    _state.sink.emit(payload)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump counter ``name`` (no-op when telemetry is disabled)."""
    if not _state.enabled:
        return
    registry.counter(name).inc(amount)
    if _state.emit_metric_events:
        _emit_metric(name, "counter", amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when telemetry is disabled)."""
    if not _state.enabled:
        return
    registry.gauge(name).set(value)
    if _state.emit_metric_events:
        _emit_metric(name, "gauge", value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if not _state.enabled:
        return
    registry.histogram(name).observe(value)
    if _state.emit_metric_events:
        _emit_metric(name, "histogram", value)


class _NullCtx:
    """Shared allocation-free context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullCtx":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CTX = _NullCtx()


class _Timer:
    __slots__ = ("_name", "_start")

    def __init__(self, name: str) -> None:
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        if _state.enabled:
            registry.histogram(self._name).observe(elapsed)
            if _state.emit_metric_events:
                _state.sink.emit({
                    "ts": time.time(),
                    "name": self._name,
                    "kind": "timer",
                    "duration_s": elapsed,
                })
        return False


def timer(name: str) -> Union[_NullCtx, _Timer]:
    """``with timer("mcf.exact.solve_s"):`` — seconds into a histogram."""
    if not _state.enabled:
        return _NULL_CTX
    return _Timer(name)


class Span:
    """A named wall-clock phase; nests via the ambient span stack.

    On exit it emits one event carrying the span's ``duration_s``, its
    slash-joined ``path`` (ancestry included), ``depth``, and its trace
    context — a stable ``span_id`` (deterministic per-process counter,
    reset on :func:`enable`) plus the ``parent_id`` of the enclosing
    span (``None`` at the root) — plus any keyword attributes given at
    creation, and records the duration into the registry histogram
    ``span.<name>_s``.  The id links let ``repro.obs.perf`` rebuild the
    exact call tree from a JSONL trace even when sibling spans share a
    name.
    """

    __slots__ = ("name", "attrs", "path", "depth", "span_id", "parent_id",
                 "_start", "_token", "_mem_baseline")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0
        self._token: Optional[
            "contextvars.Token[Tuple[Tuple[str, int], ...]]"] = None
        self._mem_baseline: Optional[int] = None

    def __enter__(self) -> "Span":
        stack = _SPAN_STACK.get()
        self.depth = len(stack)
        self.path = "/".join([frame[0] for frame in stack] + [self.name])
        self.span_id = _state.next_span_id
        _state.next_span_id += 1
        self.parent_id = stack[-1][1] if stack else None
        self._token = _SPAN_STACK.set(stack + ((self.name, self.span_id),))
        _push_thread_span_path(self.path)
        if _state.trace_malloc and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
            self._mem_baseline = tracemalloc.get_traced_memory()[0]
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[type], *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        if self._token is not None:
            _SPAN_STACK.reset(self._token)
            self._token = None
            _pop_thread_span_path()
        if _state.enabled:
            registry.histogram(f"span.{self.name}_s").observe(duration)
            event = {
                "ts": time.time(),
                "name": self.name,
                "kind": "span",
                "duration_s": duration,
                "path": self.path,
                "depth": self.depth,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
            }
            if self._mem_baseline is not None and tracemalloc.is_tracing():
                peak = tracemalloc.get_traced_memory()[1]
                event["mem_peak_kb"] = max(0, peak - self._mem_baseline) / 1024
            if exc_type is not None:
                event["error"] = exc_type.__name__
            event.update(self.attrs)
            _state.sink.emit(event)
        return False


def span(name: str, **attrs: object) -> Union[_NullCtx, Span]:
    """``with span("convert", mode="global-random"):`` — trace a phase."""
    if not _state.enabled:
        return _NULL_CTX
    return Span(name, attrs)


def event(name: str, **attrs: object) -> None:
    """Emit a one-off structured event (e.g. a skipped candidate)."""
    if not _state.enabled:
        return
    payload = {"ts": time.time(), "name": name, "kind": "event",
               "value": attrs.pop("value", 1)}
    payload.update(attrs)
    _state.sink.emit(payload)
