"""Event sinks: where structured telemetry events go.

Every sink accepts plain-dict events (already timestamped by the
tracer) through ``emit`` and is flushed/closed by ``repro.obs.disable``.
The JSONL wire format is one compact JSON object per line; every event
carries ``ts`` (unix seconds), ``name`` and ``kind``, plus either
``value`` (metric updates) or ``duration_s`` (spans/timers).
"""

from __future__ import annotations

import json
import sys
import threading
from typing import IO, Dict, List, Optional

#: One telemetry event on the wire: a flat, JSON-ready mapping.
TelemetryEvent = Dict[str, object]


class Sink:
    """Interface: subclasses override :meth:`emit`."""

    def emit(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return type(self).__name__


class NullSink(Sink):
    """Swallows everything (metrics-only telemetry)."""

    def emit(self, event: TelemetryEvent) -> None:
        pass

    def describe(self) -> str:
        return "null"


class MemorySink(Sink):
    """Buffers events in a list — the test and notebook sink.

    ``emit`` runs on whatever thread hits the bus (the self-heal loop,
    the sampler's stop path, the main thread), so the buffer is
    lock-guarded against a concurrent ``clear``.
    """

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []
        self._lock = threading.Lock()

    def emit(self, event: TelemetryEvent) -> None:
        with self._lock:
            self.events.append(event)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()

    def describe(self) -> str:
        return f"memory({len(self.events)} events)"


class StreamSink(Sink):
    """JSON-lines onto an open text stream (not closed by default)."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: TelemetryEvent) -> None:
        self._stream.write(json.dumps(event, sort_keys=True,
                                      default=str) + "\n")

    def flush(self) -> None:
        self._stream.flush()

    def describe(self) -> str:
        name = getattr(self._stream, "name", None)
        return f"stream({name})" if name else "stream"


class StderrSink(StreamSink):
    """JSON-lines to standard error (the CLI's ``--telemetry`` default)."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    def describe(self) -> str:
        return "stderr"


class FileSink(StreamSink):
    """JSON-lines appended to a file path (``--telemetry=PATH``)."""

    def __init__(self, path: str) -> None:
        self.path = path
        super().__init__(open(path, "a", encoding="utf-8"))

    def close(self) -> None:
        self._stream.close()

    def describe(self) -> str:
        return f"file({self.path})"
