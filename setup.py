"""Setuptools shim: enables `python setup.py develop` in offline
environments that lack the `wheel` package (PEP-517 editable installs
require it). All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
