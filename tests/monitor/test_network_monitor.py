"""Unit tests for the network monitoring plane."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.monitor import (
    LinkSample,
    NetworkMonitor,
    link_label,
    switch_label,
)
from repro.routing.base import Path
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
    PlainSwitch,
)

S0, S1, S2 = PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)


class TestLabels:
    def test_switch_labels(self):
        assert switch_label(CoreSwitch(3)) == "core3"
        assert switch_label(AggSwitch(0, 1)) == "agg0.1"
        assert switch_label(EdgeSwitch(2, 0)) == "edge2.0"
        assert switch_label(PlainSwitch(5)) == "sw5"

    def test_link_label_is_directed(self):
        assert link_label(S0, S1) == "sw0->sw1"
        assert link_label(S1, S0) == "sw1->sw0"


class TestValidation:
    def test_bad_interval_rejected(self, line_net):
        with pytest.raises(ReproError):
            NetworkMonitor(line_net, interval=-0.1)

    def test_bad_retention_rejected(self, line_net):
        with pytest.raises(ReproError):
            NetworkMonitor(line_net, retention=0)

    def test_unknown_link_rejected(self, line_net):
        monitor = NetworkMonitor(line_net)
        with pytest.raises(ReproError):
            monitor.on_allocation(0.0, {(S0, S2): 0.5})


class TestSampling:
    def test_every_event_by_default(self, line_net):
        monitor = NetworkMonitor(line_net)
        for t in (0.0, 0.001, 0.002):
            monitor.on_allocation(t, {(S0, S1): 0.5})
        assert monitor.events_seen == 3
        assert monitor.samples_taken == 3
        series = monitor.link_series(S0, S1)
        assert series.count == 3

    def test_interval_throttles_but_counts_events(self, line_net):
        monitor = NetworkMonitor(line_net, interval=1.0)
        for t in (0.0, 0.2, 0.4, 1.1, 1.2):
            monitor.on_allocation(t, {(S0, S1): 0.5})
        assert monitor.events_seen == 5
        # t=0 sampled, 0.2/0.4 throttled, 1.1 sampled, 1.2 throttled.
        assert monitor.samples_taken == 2
        assert [s.t for s in monitor.link_series(S0, S1).samples] == [0.0, 1.1]

    def test_directions_tracked_separately(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.0, {(S0, S1): 0.25, (S1, S0): 0.75})
        assert monitor.link_series(S0, S1).peak == pytest.approx(0.25)
        assert monitor.link_series(S1, S0).peak == pytest.approx(0.75)

    def test_utilization_normalized_by_capacity(self):
        net = Network("fat-link")
        net.add_switch(S0, 8)
        net.add_switch(S1, 8)
        net.add_cable(S0, S1, capacity=4.0)
        monitor = NetworkMonitor(net)
        monitor.on_allocation(0.0, {(S0, S1): 1.0}, {(S0, S1): 3})
        sample = monitor.link_series(S0, S1).samples[0]
        assert sample == LinkSample(0.0, 1.0, 0.25, 3)


class TestRetention:
    def test_ring_buffer_evicts_but_stats_survive(self, line_net):
        monitor = NetworkMonitor(line_net, retention=4)
        # Peak (0.9) lands early and is evicted from the ring buffer.
        rates = [0.9, 0.1, 0.2, 0.3, 0.4, 0.5]
        for i, rate in enumerate(rates):
            monitor.on_allocation(float(i), {(S0, S1): rate})
        series = monitor.link_series(S0, S1)
        assert len(series.samples) == 4
        assert series.samples[0].t == 2.0
        assert series.count == 6
        assert series.peak == pytest.approx(0.9)
        assert series.mean_utilization == pytest.approx(sum(rates) / 6)
        # Quantiles only see the retained window.
        assert series.utilization_quantile(1.0) == pytest.approx(0.5)


class TestDerivedStats:
    def fill(self, monitor):
        monitor.on_allocation(0.0, {(S0, S1): 1.0, (S1, S2): 0.5})
        monitor.on_allocation(1.0, {(S0, S1): 0.5})

    def test_hotspots_ordering(self, line_net):
        monitor = NetworkMonitor(line_net)
        self.fill(monitor)
        top = monitor.hotspots(2)
        assert [s.key for s in top] == [(S0, S1), (S1, S2)]
        assert monitor.hotspots(1, by="mean")[0].key == (S0, S1)
        with pytest.raises(ReproError):
            monitor.hotspots(by="total")

    def test_peak_and_time_range(self, line_net):
        monitor = NetworkMonitor(line_net)
        self.fill(monitor)
        assert monitor.peak_utilization() == pytest.approx(1.0)
        assert monitor.time_range() == (0.0, 1.0)

    def test_switch_loads_average_over_samples(self, line_net):
        monitor = NetworkMonitor(line_net)
        self.fill(monitor)
        loads = monitor.switch_loads()
        # sw0 carried 1.0 then 0.5 over two samples.
        assert loads[S0] == pytest.approx(0.75)
        assert monitor.switch_peak_loads()[S1] == pytest.approx(1.5)

    def test_gini_counts_idle_links_as_zero(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.0, {(S0, S1): 1.0})
        # One of four directed links loaded: strong inequality.
        assert monitor.gini() == pytest.approx(0.75)

    def test_imbalance_ratio(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.0, {(S0, S1): 1.0, (S1, S2): 1.0})
        # Two of four directed links at 1.0: max/mean = 1 / 0.5.
        assert monitor.max_min_imbalance() == pytest.approx(2.0)
        assert NetworkMonitor(line_net).max_min_imbalance() == 0.0


class TestDowntimeLedger:
    def test_windows_and_totals(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.link_down(1.0, S0, S1)
        assert monitor.open_dark_links() == [(S0, S1)]
        monitor.link_up(1.5, S0, S1)
        monitor.link_down(3.0, S1, S0)  # direction-agnostic
        monitor.link_up(3.25, S0, S1)
        assert monitor.dark_windows(S0, S1) == [(1.0, 1.5), (3.0, 3.25)]
        assert monitor.downtime()[(S0, S1)] == pytest.approx(0.75)
        assert monitor.total_dark_time() == pytest.approx(0.75)
        assert monitor.open_dark_links() == []

    def test_double_down_rejected(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.link_down(0.0, S0, S1)
        with pytest.raises(ReproError):
            monitor.link_down(0.1, S1, S0)

    def test_up_without_down_rejected(self, line_net):
        monitor = NetworkMonitor(line_net)
        with pytest.raises(ReproError):
            monitor.link_up(0.0, S0, S1)

    def test_up_before_down_rejected(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.link_down(5.0, S0, S1)
        with pytest.raises(ReproError):
            monitor.link_up(4.0, S0, S1)

    def test_dark_traffic_overlap(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.link_down(1.0, S0, S1)
        monitor.link_up(2.0, S0, S1)
        path = Path((S0, S1, S2))
        flows = [
            (path, 0.0, 1.5),          # overlaps [1.0, 1.5] -> 0.5
            (path, 1.25, 1.75),        # inside the window     -> 0.5
            (path, 3.0, 4.0),          # after the window      -> 0
            (Path((S1, S2)), 0.0, 9.0),  # avoids the dark link -> 0
        ]
        assert monitor.dark_traffic(flows) == pytest.approx(1.0)
        assert monitor.dark_traffic([]) == 0.0


class TestRebind:
    def test_series_and_ledger_survive_rebind(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.0, {(S0, S1): 1.0})
        monitor.link_down(0.5, S1, S2)
        monitor.link_up(1.0, S1, S2)

        after = Network("after")
        for node in (S0, S1, S2):
            after.add_switch(node, 8)
        after.add_cable(S0, S1)
        after.add_cable(S0, S2)  # new link, not in the old fabric
        monitor.rebind(after)

        monitor.on_allocation(2.0, {(S0, S1): 0.5, (S0, S2): 0.25})
        assert monitor.link_series(S0, S1).count == 2
        assert monitor.link_series(S0, S2).count == 1
        assert monitor.total_dark_time() == pytest.approx(0.5)


class TestExport:
    def test_snapshot_is_json_serializable(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.0, {(S0, S1): 1.0}, {(S0, S1): 2})
        monitor.link_down(0.5, S0, S1)
        monitor.link_up(1.0, S0, S1)
        snap = json.loads(json.dumps(monitor.snapshot()))
        assert snap["links_tracked"] == 1
        assert snap["peak_utilization"] == pytest.approx(1.0)
        assert snap["downtime"]["sw0->sw1"] == pytest.approx(0.5)
        assert "sw0->sw1" in {entry["link"] for entry in snap["links"]}

    def test_describe_mentions_throttle(self, line_net):
        monitor = NetworkMonitor(line_net, interval=0.5, retention=16)
        text = monitor.describe()
        assert "interval 0.5s" in text and "retention 16" in text

    def test_events_exported_when_telemetry_on(self, line_net, memory_sink):
        from tools.check_telemetry import check_line

        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.25, {(S0, S1): 0.5}, {(S0, S1): 1})
        monitor.link_down(0.5, S0, S1)
        monitor.link_up(0.75, S0, S1)

        by_kind = {}
        for event in memory_sink.events:
            by_kind.setdefault(event["kind"], []).append(event)
        sample = by_kind["link_sample"][0]
        assert sample["link"] == "sw0->sw1"
        assert sample["t"] == pytest.approx(0.25)
        assert sample["utilization"] == pytest.approx(0.5)
        assert sample["capacity"] == pytest.approx(1.0)
        assert sample["active_flows"] == 1
        assert by_kind["link_up"][0]["dark_s"] == pytest.approx(0.25)
        # Every exported event satisfies the wire contract checker.
        for kind in ("link_sample", "link_down", "link_up"):
            for event in by_kind[kind]:
                assert check_line(json.dumps(event), 1) == []

    def test_no_export_when_telemetry_off(self, line_net, clean_obs):
        monitor = NetworkMonitor(line_net)
        monitor.on_allocation(0.0, {(S0, S1): 0.5})
        # Nothing raised, series still recorded.
        assert monitor.samples_taken == 1
