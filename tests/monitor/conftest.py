"""Monitor test fixtures: small fabrics and isolated telemetry."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.sinks import MemorySink
from repro.topology.elements import Network, PlainSwitch


@pytest.fixture()
def clean_obs():
    """Guarantee telemetry is off and the registry empty around a test."""
    obs.disable()
    obs.registry.reset()
    yield
    obs.disable()
    obs.registry.reset()


@pytest.fixture()
def memory_sink(clean_obs) -> MemorySink:
    """Telemetry enabled onto an in-memory sink (metric events on)."""
    sink = MemorySink()
    obs.enable(sink, emit_metric_events=True)
    return sink


@pytest.fixture()
def line_net():
    """sw0 - sw1 - sw2, unit capacities, servers 0/1 at the ends."""
    net = Network("line")
    nodes = [PlainSwitch(i) for i in range(3)]
    for node in nodes:
        net.add_switch(node, 8)
    net.add_cable(nodes[0], nodes[1])
    net.add_cable(nodes[1], nodes[2])
    net.add_server(0, nodes[0])
    net.add_server(1, nodes[2])
    return net
