"""Unit tests for the monitor's text report rendering."""

from __future__ import annotations

import pytest

from repro.monitor import NetworkMonitor, heatmap_table, hotspot_report
from repro.topology.elements import PlainSwitch

S0, S1, S2 = PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)


@pytest.fixture()
def busy_monitor(line_net):
    monitor = NetworkMonitor(line_net)
    monitor.on_allocation(0.0, {(S0, S1): 1.0, (S1, S2): 0.25},
                          {(S0, S1): 2, (S1, S2): 1})
    monitor.on_allocation(1.0, {(S0, S1): 0.5}, {(S0, S1): 1})
    return monitor


class TestHeatmap:
    def test_bins_and_cells(self, busy_monitor):
        table = heatmap_table(busy_monitor, bins=2, top=5)
        lines = table.splitlines()
        assert lines[0].startswith("utilization % over t=[0, 1]")
        row = next(l for l in lines if l.startswith("sw0->sw1"))
        # Bin 0 holds the 100% sample, bin 1 the 50% sample.
        assert "100" in row and " 50" in row
        row = next(l for l in lines if l.startswith("sw1->sw2"))
        # No sample landed in sw1->sw2's second bin.
        assert " 25" in row and " - " in row + " "

    def test_empty_monitor(self, line_net):
        assert "(no link samples" in heatmap_table(NetworkMonitor(line_net))


class TestHotspotReport:
    def test_sections_present(self, busy_monitor):
        busy_monitor.link_down(0.2, S0, S1)
        busy_monitor.link_up(0.3, S0, S1)
        text = hotspot_report(busy_monitor, top=5)
        assert "top 2 links by peak utilization:" in text
        assert "sw0->sw1" in text
        assert "busiest switches" in text
        assert "imbalance: gini" in text
        assert "coverage: 2/2 allocation events" in text
        assert "downtime ledger" in text
        assert "dark  100.000 ms" in text
        assert "total: 1 links dark for 100.000 link-ms" in text

    def test_no_ledger_section_without_downtime(self, busy_monitor):
        assert "downtime ledger" not in hotspot_report(busy_monitor)

    def test_empty_monitor_with_ledger_only(self, line_net):
        monitor = NetworkMonitor(line_net)
        monitor.link_down(0.0, S0, S1)
        monitor.link_up(0.5, S0, S1)
        text = hotspot_report(monitor)
        assert "(no link samples recorded)" in text
        assert "downtime ledger" in text
