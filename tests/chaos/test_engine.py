"""Unit tests for the chaos engine: events, clock, schedules."""

from __future__ import annotations

import pytest

from repro.chaos import ChaosClock, ChaosEvent, ChaosSchedule, CommandFault
from repro.core.design import FlatTreeDesign
from repro.core.failures import Leg
from repro.core.flattree import FlatTree
from repro.errors import ConfigurationError
from repro.topology.elements import CoreSwitch


@pytest.fixture()
def ft():
    return FlatTree(FlatTreeDesign.for_fat_tree(4))


def first_cid(ft):
    return sorted(ft.converters)[0]


class TestChaosEvent:
    def test_constructors(self, ft):
        cid = first_cid(ft)
        event = ChaosEvent.leg_fail(0.5, cid, Leg.CORE)
        assert event.t == 0.5
        assert event.kind == "leg"
        assert event.action == "fail"
        assert event.target == (cid, Leg.CORE)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent.switch_fail(-1.0, CoreSwitch(0))

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(0.0, "explode", "leg", ())


class TestChaosClock:
    def test_advance_and_seek(self):
        clock = ChaosClock(1.0)
        assert clock.advance(0.5) == 1.5
        assert clock.seek(2.0) == 2.0

    def test_monotonic(self):
        clock = ChaosClock()
        clock.seek(1.0)
        with pytest.raises(ConfigurationError):
            clock.advance(-0.1)
        with pytest.raises(ConfigurationError):
            clock.seek(0.5)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosClock(-1.0)


class TestCommandFaults:
    def test_null_schedule(self, ft):
        chaos = ChaosSchedule()
        assert chaos.is_null()
        assert chaos.command_fault(first_cid(ft), 1) is None

    def test_scripted_wins(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(
            scripted_faults={(cid, 2): CommandFault.NACK}
        )
        assert not chaos.is_null()
        assert chaos.command_fault(cid, 1) is None
        assert chaos.command_fault(cid, 2) is CommandFault.NACK

    def test_draw_is_stateless_and_deterministic(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(command_fault_rate=0.5, seed=3)
        draws = [chaos.command_fault(cid, a) for a in range(1, 20)]
        again = [chaos.command_fault(cid, a) for a in range(1, 20)]
        assert draws == again
        assert any(d is not None for d in draws)
        assert any(d is None for d in draws)

    def test_rate_one_always_faults(self, ft):
        chaos = ChaosSchedule(command_fault_rate=1.0)
        for attempt in range(1, 6):
            assert chaos.command_fault(first_cid(ft), attempt) is not None

    def test_attempts_one_based(self, ft):
        chaos = ChaosSchedule(command_fault_rate=1.0)
        with pytest.raises(ConfigurationError):
            chaos.command_fault(first_cid(ft), 0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSchedule(command_fault_rate=1.5)


class TestFailuresAt:
    def test_fold_fail_and_recover(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_fail(1.0, cid, Leg.CORE),
            ChaosEvent.leg_recover(2.0, cid, Leg.CORE),
            ChaosEvent.switch_fail(1.5, CoreSwitch(0)),
        ))
        assert chaos.failures_at(0.5).is_empty()
        assert chaos.failures_at(1.2).dead_legs(cid) == {Leg.CORE}
        late = chaos.failures_at(3.0)
        assert late.dead_legs(cid) == frozenset()
        assert CoreSwitch(0) in late.switches
        assert chaos.last_event_time() == 2.0

    def test_events_sorted_on_construction(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_fail(2.0, cid, Leg.AGG),
            ChaosEvent.leg_fail(1.0, cid, Leg.CORE),
        ))
        assert [e.t for e in chaos.events] == [1.0, 2.0]


class TestRecoverAudit:
    """Recover for a healthy component: silent no-op, audited once."""

    def test_never_failed_recover_flagged(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_recover(1.0, cid, Leg.CORE),
        ))
        assert chaos.failures_at(2.0).is_empty()
        assert len(chaos.redundant_recoveries) == 1
        assert chaos.redundant_recoveries[0].t == 1.0

    def test_double_recover_second_flagged(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_fail(1.0, cid, Leg.CORE),
            ChaosEvent.leg_recover(2.0, cid, Leg.CORE),
            ChaosEvent.leg_recover(3.0, cid, Leg.CORE),
        ))
        assert [e.t for e in chaos.redundant_recoveries] == [3.0]
        assert chaos.failures_at(4.0).is_empty()

    def test_matched_recover_not_flagged(self, ft):
        cid = first_cid(ft)
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_fail(1.0, cid, Leg.CORE),
            ChaosEvent.leg_recover(2.0, cid, Leg.CORE),
        ))
        assert chaos.redundant_recoveries == ()

    def test_cable_recover_matches_either_orientation(self):
        chaos = ChaosSchedule(events=(
            ChaosEvent.cable_fail(1.0, 3, 7),
            ChaosEvent.cable_recover(2.0, 7, 3),
        ))
        assert chaos.redundant_recoveries == ()

    def test_audit_event_emitted_and_valid(self, ft):
        import json

        from repro import obs
        from repro.obs.sinks import MemorySink
        from tools.check_telemetry import check_line

        sink = MemorySink()
        obs.enable(sink)
        try:
            ChaosSchedule(events=(
                ChaosEvent.switch_recover(1.5, CoreSwitch(0)),
            ))
        finally:
            obs.disable()
        noops = [e for e in sink.events
                 if e.get("name") == "chaos.recover_noop"]
        assert len(noops) == 1
        assert noops[0]["component"] == "switch"
        assert noops[0]["t"] == 1.5
        assert check_line(json.dumps(noops[0]), 1) == []


class TestRandomSchedules:
    def test_deterministic_for_seed(self, ft):
        a = ChaosSchedule.random(ft, seed=11, leg_fault_rate=0.5,
                                 switch_fault_rate=0.5,
                                 command_fault_rate=0.1)
        b = ChaosSchedule.random(ft, seed=11, leg_fault_rate=0.5,
                                 switch_fault_rate=0.5,
                                 command_fault_rate=0.1)
        assert a.events == b.events
        assert a.describe() == b.describe()

    def test_rates_zero_is_null(self, ft):
        chaos = ChaosSchedule.random(ft, seed=1)
        assert chaos.is_null()

    def test_events_within_duration(self, ft):
        chaos = ChaosSchedule.random(ft, seed=5, duration=2.0,
                                     leg_fault_rate=1.0)
        assert chaos.events
        assert all(0.0 <= e.t < 2.0 for e in chaos.events)

    def test_bad_duration_rejected(self, ft):
        with pytest.raises(ConfigurationError):
            ChaosSchedule.random(ft, duration=0.0)
