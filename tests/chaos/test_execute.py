"""Resilient execution: clean-path identity, retry, rollback, heal."""

from __future__ import annotations

import json

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule, CommandFault
from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.failures import Leg
from repro.core.flattree import FlatTree
from repro.core.reconfigure import (
    MEMS_OPTICAL,
    RetryPolicy,
    execute,
    schedule,
)
from repro.topology.stats import is_connected
from repro.topology.validate import assert_valid


@pytest.fixture()
def controller():
    return Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))


def reference_plan(k=8):
    """The plan + before-network of a Clos -> global conversion."""
    ref = Controller(FlatTree(FlatTreeDesign.for_fat_tree(k)))
    before = ref.network
    plan = ref.apply_mode(Mode.GLOBAL_RANDOM)
    return ref, before, plan


class TestCleanPath:
    def test_timeline_byte_identical_to_schedule(self, controller):
        """With chaos off, execute() IS schedule(): same instants."""
        ref, before, plan = reference_plan()
        sched = schedule(plan, before, pairs=ref.flattree.pairs)
        report = controller.execute_mode(Mode.GLOBAL_RANDOM, start=3.0)
        assert report.success
        assert report.timeline() == sched.batch_windows(3.0)
        assert report.finish == sched.batch_windows(3.0)[-1][1]
        assert report.retries == 0
        assert report.rolled_back_fraction == 0.0
        assert report.heal is None
        assert report.failures.is_empty()

    def test_final_configs_match_atomic_apply(self, controller):
        ref, _before, _plan = reference_plan()
        controller.execute_mode(Mode.GLOBAL_RANDOM)
        assert controller.flattree.configs() == ref.flattree.configs()
        assert not controller.degraded

    def test_null_chaos_same_as_none(self, controller):
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=ChaosSchedule()
        )
        assert report.success
        assert report.problems == []

    def test_noop_plan(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        report = controller.execute_mode(Mode.GLOBAL_RANDOM, start=1.0)
        assert report.success
        assert report.batches == []
        assert report.finish == 1.0


class TestRetry:
    def test_transient_faults_retried_to_completion(self, controller):
        """Two timeouts then success: conversion completes, slower."""
        victim = sorted(
            Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))
            .apply_mode(Mode.GLOBAL_RANDOM).config_changes
        )[0]
        chaos = ChaosSchedule(scripted_faults={
            (victim, 1): CommandFault.TIMEOUT,
            (victim, 2): CommandFault.NACK,
        })
        policy = RetryPolicy(max_attempts=4, command_timeout=1e-3,
                             base_backoff=1e-3)
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=chaos, policy=policy
        )
        assert report.success
        assert report.retries == 2
        assert report.total_time > report.schedule.total_time
        assert_valid(report.network)
        assert is_connected(report.network)

    def test_retry_events_validate(self, controller):
        from repro import obs
        from repro.obs.sinks import MemorySink
        from tools.check_telemetry import check_line

        victim = sorted(
            Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))
            .apply_mode(Mode.GLOBAL_RANDOM).config_changes
        )[0]
        chaos = ChaosSchedule(scripted_faults={
            (victim, 1): CommandFault.TIMEOUT,
        })
        sink = MemorySink()
        obs.enable(sink)
        try:
            controller.execute_mode(Mode.GLOBAL_RANDOM, chaos=chaos)
        finally:
            obs.disable()
        retries = [e for e in sink.events
                   if e.get("name") == "core.reconfigure.converter_retry"]
        assert len(retries) == 1
        assert retries[0]["fault"] == "timeout"
        assert retries[0]["attempt"] == 1
        for event in retries:
            assert check_line(json.dumps(event), 1) == []


class TestRollback:
    def _exhaust(self, victim, attempts=4):
        return ChaosSchedule(scripted_faults={
            (victim, a): CommandFault.TIMEOUT
            for a in range(1, attempts + 1)
        })

    def test_exhausted_converter_rolls_batch_back(self, controller):
        ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        pre = dict(controller.flattree.configs())
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=self._exhaust(victim),
            policy=RetryPolicy(max_attempts=4),
        )
        assert not report.success
        assert report.aborted_at == 0
        rolled = report.batches[-1]
        assert not rolled.committed
        assert "exhausted" in rolled.rollback_reason
        # The rolled-back batch's converters keep their pre-batch state.
        for cid in rolled.converters:
            assert controller.flattree.configs()[cid] is pre[cid]
        # The resulting network is consistent, valid, and connected.
        assert_valid(report.network)
        assert is_connected(report.network)
        assert report.connected
        assert report.problems == []

    def test_rollback_in_later_batch_keeps_prefix(self, controller):
        """Batches before the rollback stay committed (partial state)."""
        ref, before, plan = reference_plan()
        sched = schedule(plan, before, pairs=ref.flattree.pairs,
                         max_batch=16)
        assert sched.num_batches >= 2
        victim = sorted(sched.batches[1])[0]
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=self._exhaust(victim), max_batch=16
        )
        assert not report.success
        assert report.aborted_at == 1
        committed = report.batches[0]
        assert committed.committed
        for cid in committed.converters:
            assert (controller.flattree.configs()[cid]
                    is plan.config_changes[cid][1])
        assert controller.degraded  # partially converted
        assert_valid(report.network)
        assert is_connected(report.network)
        # Routing still works on the partial network via ksp fallback.
        servers = sorted(report.network.servers())
        path = controller.route(servers[0], servers[-1])
        path.validate_on(report.network)

    def test_rollback_event_validates(self, controller):
        from repro import obs
        from repro.obs.sinks import MemorySink
        from tools.check_telemetry import check_line

        _ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        sink = MemorySink()
        obs.enable(sink)
        try:
            controller.execute_mode(
                Mode.GLOBAL_RANDOM, chaos=self._exhaust(victim)
            )
        finally:
            obs.disable()
        rollbacks = [e for e in sink.events
                     if e.get("name") == "core.reconfigure.batch_rollback"]
        assert len(rollbacks) == 1
        assert check_line(json.dumps(rollbacks[0]), 1) == []

    def test_batch_timeout_rolls_back(self, controller):
        _ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        chaos = ChaosSchedule(scripted_faults={
            (victim, a): CommandFault.TIMEOUT for a in range(1, 3)
        })
        policy = RetryPolicy(max_attempts=10, command_timeout=5e-3,
                             batch_timeout=6e-3)
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=chaos, policy=policy
        )
        assert not report.success
        assert "timeout" in report.batches[-1].rollback_reason


class TestDoubleFaultRollback:
    """A command fault *during rollback* must not corrupt the abort."""

    def _double_fault(self, victim, restore_faults=1):
        # Attempts 1-4 exhaust the forward path; attempts 5+ hit the
        # restore commands the rollback issues on the same channel.
        return ChaosSchedule(scripted_faults={
            (victim, a): CommandFault.TIMEOUT
            for a in range(1, 4 + restore_faults + 1)
        })

    def test_rollback_absorbs_restore_fault(self, controller):
        _ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        pre = dict(controller.flattree.configs())
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=self._double_fault(victim),
        )
        assert not report.success
        rolled = report.batches[-1]
        assert not rolled.committed
        assert "rollback absorbed 1 command fault(s)" in \
            rolled.rollback_reason
        # The abort still lands on the consistent pre-batch prefix.
        for cid in rolled.converters:
            assert controller.flattree.configs()[cid] is pre[cid]
        assert_valid(report.network)
        assert is_connected(report.network)
        assert report.problems == []

    def test_restore_fault_stretches_rollback_window(self, controller):
        _ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        policy = RetryPolicy(max_attempts=4, command_timeout=10e-3)
        clean = controller.execute_mode(
            Mode.GLOBAL_RANDOM,
            chaos=ChaosSchedule(scripted_faults={
                (victim, a): CommandFault.TIMEOUT for a in range(1, 5)
            }),
            policy=policy,
        )
        faulty = Controller(
            FlatTree(FlatTreeDesign.for_fat_tree(8))).execute_mode(
            Mode.GLOBAL_RANDOM, chaos=self._double_fault(victim),
            policy=policy,
        )
        # One absorbed restore timeout = one more command_timeout.
        assert faulty.finish == pytest.approx(
            clean.finish + policy.command_timeout)

    def test_unacknowledged_restore_reported(self, controller):
        _ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        # Faults through attempt 8 = 2 * max_attempts: the restore is
        # never ACKed and the report says so instead of lying.
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, chaos=self._double_fault(
                victim, restore_faults=4),
        )
        assert not report.success
        reason = report.batches[-1].rollback_reason
        assert "restore unacknowledged on" in reason
        assert str(victim) in reason
        assert_valid(report.network)

    def test_restore_retry_events_validate(self, controller):
        from repro import obs
        from repro.obs.sinks import MemorySink
        from tools.check_telemetry import check_line

        _ref, _before, plan = reference_plan()
        victim = sorted(plan.config_changes)[0]
        sink = MemorySink()
        obs.enable(sink)
        try:
            controller.execute_mode(
                Mode.GLOBAL_RANDOM, chaos=self._double_fault(victim),
            )
        finally:
            obs.disable()
        retries = [e for e in sink.events
                   if e.get("name") == "core.reconfigure.converter_retry"]
        # Forward attempts 1-4 emit 4 retry events, the restore fault
        # at attempt 5 emits one more.
        assert [e["attempt"] for e in retries] == [1, 2, 3, 4, 5]
        for event in retries:
            assert check_line(json.dumps(event), 1) == []


class TestPlantFaultsAndHeal:
    def test_dead_leg_triggers_heal(self, controller):
        cid = sorted(controller.flattree.converters)[0]
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_fail(0.0, cid, Leg.EDGE),
        ))
        report = controller.execute_mode(Mode.GLOBAL_RANDOM, chaos=chaos)
        assert report.success
        assert not report.failures.is_empty()
        assert report.heal is not None
        assert_valid(report.network, require_connected=False)
        assert report.connected

    def test_recovered_fault_leaves_no_trace(self, controller):
        cid = sorted(controller.flattree.converters)[0]
        chaos = ChaosSchedule(events=(
            ChaosEvent.leg_fail(0.0, cid, Leg.EDGE),
            ChaosEvent.leg_recover(1e-6, cid, Leg.EDGE),
        ))
        report = controller.execute_mode(Mode.GLOBAL_RANDOM, chaos=chaos)
        assert report.success
        assert report.failures.is_empty()
        assert report.heal is None

    def test_monitor_receives_committed_blinks(self, controller):
        from repro.monitor import NetworkMonitor

        monitor = NetworkMonitor(controller.network)
        report = controller.execute_mode(
            Mode.GLOBAL_RANDOM, monitor=monitor
        )
        assert report.success
        downtime = monitor.downtime()
        assert downtime
        for dark in downtime.values():
            assert dark == pytest.approx(report.schedule.blink_window)
        assert monitor.open_dark_links() == []
