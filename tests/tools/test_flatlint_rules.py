"""Every flatlint rule must *fire* on a bad fixture and stay silent on
the fixed version — rules proven to detect, not just proven quiet."""

from __future__ import annotations

import textwrap
from pathlib import Path

from tools.flatlint import all_rules
from tools.flatlint.engine import PARSE_ERROR_CODE, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_snippet(tmp_path, relpath, source):
    """Write *source* at *relpath* under tmp_path and lint it.

    The relative path controls the module name the rules see:
    ``src/repro/flowsim/bad.py`` lints as ``repro.flowsim.bad``, so
    scope-sensitive rules behave exactly as they would in-tree.
    """
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = lint_paths([str(path)], all_rules())
    return findings


def codes(findings):
    return sorted({f.code for f in findings})


class TestFT001Determinism:
    def test_global_random_call_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            def pick(xs):
                return random.choice(xs)
            """)
        assert codes(findings) == ["FT001"]
        assert "seeded random.Random" in findings[0].message

    def test_seeded_rng_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            def pick(xs, seed):
                rng = random.Random(seed)
                return rng.choice(xs)
            """)
        assert findings == []

    def test_from_import_alias_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            from random import shuffle as mix

            def scramble(xs):
                mix(xs)
            """)
        assert codes(findings) == ["FT001"]

    def test_numpy_global_rng_fires_but_default_rng_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            import numpy as np

            def draw():
                return np.random.rand(3)

            def seeded(seed):
                return np.random.default_rng(seed)
            """)
        assert codes(findings) == ["FT001"]
        assert len(findings) == 1
        assert "default_rng" in findings[0].message

    def test_local_variable_named_random_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def pick(random, xs):
                return random.choice(xs)
            """)
        assert findings == []

    def test_wall_clock_fires_only_in_simulation_scope(self, tmp_path):
        bad = """\
            import time

            def stamp():
                return time.time()
            """
        in_scope = lint_snippet(tmp_path, "src/repro/flowsim/bad.py", bad)
        assert codes(in_scope) == ["FT001"]
        assert "wall-clock" in in_scope[0].message
        out_of_scope = lint_snippet(tmp_path, "src/repro/topology/ok.py", bad)
        assert out_of_scope == []

    def test_datetime_now_fires_in_experiments(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/experiments/bad.py", """\
            from datetime import datetime

            def stamp():
                return datetime.now().isoformat()
            """)
        assert codes(findings) == ["FT001"]

    def test_set_iteration_fires_and_sorted_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def out(a, b):
                for x in set(a) | set(b):
                    print(x)
            """)
        assert codes(findings) == ["FT001"]
        assert "PYTHONHASHSEED" in findings[0].message
        fixed = lint_snippet(tmp_path, "ok.py", """\
            def out(a, b):
                for x in sorted(set(a) | set(b)):
                    print(x)
            """)
        assert fixed == []

    def test_list_of_set_and_rng_choice_of_set_fire(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def f(xs, rng):
                a = list(set(xs))
                b = rng.choice(frozenset(xs))
                return a, b
            """)
        assert [f.code for f in findings] == ["FT001", "FT001"]


class TestFT002TelemetryContract:
    def test_unregistered_name_fires_in_library(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/fake.py", """\
            from repro import obs

            def f():
                obs.event("totally.unregistered", x=1)
            """)
        assert codes(findings) == ["FT002"]
        assert "not registered" in findings[0].message

    def test_unregistered_scratch_name_allowed_in_tests(self, tmp_path):
        findings = lint_snippet(tmp_path, "tests/fake_test.py", """\
            from repro import obs

            def test_plumbing():
                obs.event("scratch.name", x=1)
            """)
        assert findings == []

    def test_missing_required_field_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/fake.py", """\
            from repro import obs

            def f():
                obs.event("core.failures.heal", reconfigured=1,
                          unrecoverable=0)
            """)
        assert codes(findings) == ["FT002"]
        assert "'t'" in findings[0].message or " t" in findings[0].message

    def test_complete_emit_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/fake.py", """\
            from repro import obs

            def f(t):
                obs.event("core.failures.heal", reconfigured=1,
                          unrecoverable=0, t=t)
            """)
        assert findings == []

    def test_kwargs_forwarding_skips_field_check(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/fake.py", """\
            from repro import obs

            def f(**attrs):
                obs.event("core.failures.heal", **attrs)
            """)
        assert findings == []

    def test_dynamic_name_fires_in_library(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/fake.py", """\
            from repro import obs

            def f(name):
                obs.event(name, x=1)
            """)
        assert codes(findings) == ["FT002"]
        assert "literal" in findings[0].message

    def test_registered_name_without_emit_site_fires(self, tmp_path):
        # A lone copy of the real contract module has no emit sites in
        # scope, so *every* registered name must be reported as dead.
        from repro.obs import contract

        source = (REPO_ROOT / "src/repro/obs/contract.py").read_text(
            encoding="utf-8")
        findings = lint_snippet(
            tmp_path, "src/repro/obs/contract.py", source)
        assert codes(findings) == ["FT002"]
        assert len(findings) == len(contract.KNOWN_EVENT_NAMES)
        assert all("no emit site" in f.message for f in findings)
        # ... and each finding points at the registration line itself.
        assert all(f.line > 1 for f in findings)


class TestFT003Hygiene:
    def test_mutable_default_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def f(xs=[]):
                return xs
            """)
        assert codes(findings) == ["FT003"]
        assert "mutable default" in findings[0].message

    def test_none_default_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def f(xs=None):
                return xs or []
            """)
        assert findings == []

    def test_silent_broad_except_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def f():
                try:
                    risky()
                except Exception:
                    pass
            """)
        assert codes(findings) == ["FT003"]
        assert "swallows" in findings[0].message

    def test_bare_except_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            def f():
                try:
                    risky()
                except:
                    return None
            """)
        assert codes(findings) == ["FT003"]

    def test_narrow_except_and_recorded_broad_except_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            from repro import obs

            def f():
                try:
                    risky()
                except ValueError:
                    pass

            def g():
                try:
                    risky()
                except Exception as exc:
                    obs.incr("failures")

            def h():
                try:
                    risky()
                except Exception:
                    raise
            """)
        assert findings == []

    def test_float_equality_fires_in_library_only(self, tmp_path):
        bad = """\
            def f(capacity, other):
                return capacity == other.capacity
            """
        in_library = lint_snippet(tmp_path, "src/repro/core/cap.py", bad)
        assert codes(in_library) == ["FT003"]
        assert "isclose" in in_library[0].message
        in_tests = lint_snippet(tmp_path, "tests/test_cap.py", bad)
        assert in_tests == []

    def test_zero_sentinel_comparison_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/cap.py", """\
            def f(rate):
                return rate == 0.0
            """)
        assert findings == []


class TestFT004Layering:
    def test_forbidden_module_scope_import_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/topology/bad.py", """\
            from repro.monitor import NetworkMonitor
            """)
        assert codes(findings) == ["FT004"]
        assert "repro.monitor" in findings[0].message

    def test_lazy_function_level_import_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/topology/ok.py", """\
            def late():
                from repro.monitor import NetworkMonitor
                return NetworkMonitor
            """)
        assert findings == []

    def test_obs_internals_fire_even_lazily(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/bad.py", """\
            def peek():
                from repro.obs.trace import _state
                return _state
            """)
        assert codes(findings) == ["FT004"]
        assert "internal" in findings[0].message

    def test_obs_facade_and_public_submodules_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/ok.py", """\
            from repro import obs
            from repro.obs.stats import gini
            from repro.obs.contract import KNOWN_EVENT_NAMES
            """)
        assert findings == []

    def test_unknown_package_must_be_declared(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/newpkg/mod.py", """\
            from repro.core import controller
            """)
        assert codes(findings) == ["FT004"]
        assert "layering DAG" in findings[0].message

    def test_declared_dag_is_acyclic(self):
        from tools.flatlint.rules.layering import ALLOWED

        state = {}

        def visit(pkg):
            if state.get(pkg) == "done":
                return
            assert state.get(pkg) != "visiting", f"cycle through {pkg}"
            state[pkg] = "visiting"
            for dep in ALLOWED.get(pkg, ()):
                visit(dep)
            state[pkg] = "done"

        for pkg in ALLOWED:
            visit(pkg)


class TestFT005BusEmission:
    BAD = """\
        from repro import obs

        def leak(payload):
            obs.current_sink().emit(payload)
        """

    def test_direct_chain_fires_in_library_code(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/traffic/bad.py", self.BAD)
        assert codes(findings) == ["FT005"]
        assert "obs.publish" in findings[0].message

    def test_aliased_sink_variable_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/traffic/bad.py", """\
            from repro import obs

            def leak(payload):
                sink = obs.current_sink()
                sink.emit(payload)
            """)
        assert codes(findings) == ["FT005"]

    def test_install_sink_fires_outside_health(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/core/bad.py", """\
            from repro import obs

            def hijack(sink):
                obs.install_sink(sink)
            """)
        assert codes(findings) == ["FT005"]
        assert "install_sink" in findings[0].message

    def test_obs_and_health_packages_exempt(self, tmp_path):
        for relpath in ("src/repro/obs/tee.py", "src/repro/health/tee.py"):
            assert lint_snippet(tmp_path, relpath, self.BAD) == []

    def test_tests_and_tools_exempt(self, tmp_path):
        assert lint_snippet(tmp_path, "tests/poke.py", self.BAD) == []

    def test_publish_is_the_sanctioned_path(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/traffic/ok.py", """\
            from repro import obs

            def emit_sample(t, link, utilization):
                obs.publish("link_sample", "traffic.sample", t=t,
                            link=link, value=utilization,
                            utilization=utilization, rate=utilization,
                            capacity=1.0, active_flows=1)
            """)
        assert [f for f in findings if f.code == "FT005"] == []

    def test_inline_suppression(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/traffic/bad.py", """\
            from repro import obs

            def leak(payload):
                obs.current_sink().emit(payload)  # flatlint: disable=FT005
            """)
        assert findings == []


class TestFT006ConcurrencySafety:
    """Interprocedural shared-state analysis over the call graph."""

    # Thread entry -> two call frames -> mutation: the finding must
    # carry the full route, proving the analysis walks the graph
    # rather than pattern-matching the mutation site.
    RACY = """\
        import threading


        class Shared:
            def __init__(self):
                self.items = []
                self._thread = threading.Thread(target=self.worker)

            def start(self):
                self._thread.start()

            def stop(self):
                self._thread.join()

            def worker(self):
                self.step()

            def step(self):
                self.bump()

            def bump(self):
                self.items.append(1)

            def main_side(self):
                self.bump()
        """

    def test_unlocked_shared_mutation_fires_three_frames_deep(
            self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", self.RACY)
        assert codes(findings) == ["FT006"]
        message = findings[0].message
        assert "Shared.items" in message
        assert ("Shared.worker -> repro.zz.Shared.step -> "
                "repro.zz.Shared.bump") in message

    def test_lock_at_the_boundary_protects_the_whole_cone(self, tmp_path):
        # One `with self._lock:` at each entry into the shared helper
        # silences the rule — no locks needed inside step/bump.
        findings = lint_snippet(tmp_path, "src/repro/zz.py", """\
            import threading


            class Shared:
                def __init__(self):
                    self.items = []
                    self._lock = threading.Lock()
                    self._thread = threading.Thread(target=self.worker)

                def start(self):
                    self._thread.start()

                def stop(self):
                    self._thread.join()

                def worker(self):
                    with self._lock:
                        self.step()

                def step(self):
                    self.bump()

                def bump(self):
                    self.items.append(1)

                def main_side(self):
                    with self._lock:
                        self.bump()
            """)
        assert findings == []

    def test_fires_only_inside_repro(self, tmp_path):
        assert lint_snippet(tmp_path, "tools/zz.py", self.RACY) == []

    def test_bare_acquire_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", """\
            def touch(lock):
                lock.acquire()
                try:
                    pass
                finally:
                    lock.release()
            """)
        assert codes(findings) == ["FT006"]
        assert "with" in findings[0].message

    def test_thread_without_teardown_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", """\
            import threading


            def fire_and_forget(fn):
                threading.Thread(target=fn).start()
            """)
        assert codes(findings) == ["FT006"]
        assert "join" in findings[0].message

    def test_inline_suppression(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", """\
            import threading


            def fire_and_forget(fn):
                threading.Thread(target=fn).start()  # flatlint: disable=FT006
            """)
        assert findings == []


class TestFT007DeterminismTaint:
    """Nondeterminism sources flowing into replay-critical sinks."""

    # Source three frames above the sink: record -> stamp -> write ->
    # ledger.add.  The receiver in `write` is untyped, so dispatch is
    # unknown — the rule must widen (pseudo-sink `<unknown>.add`), not
    # drop the taint.
    TAINTED = """\
        import time


        class RemediationLedger:
            def __init__(self):
                self.entries = []

            def add(self, entry):
                self.entries.append(entry)


        def record(ledger: RemediationLedger):
            stamp(ledger)


        def stamp(ledger):
            write(ledger, time.time())


        def write(ledger, ts):
            ledger.add({"ts": ts})
        """

    def test_wall_clock_reaching_ledger_fires_with_route(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", self.TAINTED)
        assert codes(findings) == ["FT007"]
        message = findings[0].message
        assert "time.time()" in message
        # The diagnostic names the source->sink route, and unknown
        # dispatch widened into the pseudo-sink instead of dropping.
        assert "repro.zz.stamp -> repro.zz.write" in message
        assert "add" in message

    def test_trace_clocked_value_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", """\
            class RemediationLedger:
                def __init__(self):
                    self.entries = []

                def add(self, entry):
                    self.entries.append(entry)


            def record(ledger, t):
                ledger.add({"t": t})
            """)
        assert findings == []

    def test_fires_only_inside_repro(self, tmp_path):
        assert lint_snippet(tmp_path, "tools/zz.py", self.TAINTED) == []

    def test_inline_suppression(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/zz.py", """\
            import time


            class RemediationLedger:
                def __init__(self):
                    self.entries = []

                def add(self, entry):
                    self.entries.append(entry)


            def record(ledger: RemediationLedger):
                ledger.add({"ts": time.time()})  # flatlint: disable=FT007
            """)
        assert findings == []

    # The diff/trend report writers are replay-critical sinks like the
    # BENCH_*/HOTSPOTS_* writers: their reports must be byte-identical
    # across replays, so a wall clock flowing in must fire.
    DIFF_TAINTED = """\
        import time


        def render_report(stamp):
            return {"ts": stamp}


        def publish():
            return render_report(time.time())
        """

    def test_wall_clock_reaching_the_diff_writer_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/obs/diffprof.py",
                                self.DIFF_TAINTED)
        assert codes(findings) == ["FT007"]
        assert "time.time()" in findings[0].message

    def test_wall_clock_reaching_the_trend_writer_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/obs/trend.py",
                                self.DIFF_TAINTED)
        assert codes(findings) == ["FT007"]

    def test_clean_diff_writer_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/obs/diffprof.py", """\
            def render_report(deltas):
                return {"deltas": sorted(deltas)}
            """)
        assert findings == []


class TestSuppressionsAndParseErrors:
    def test_inline_suppression_silences_only_that_code(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            def pick(xs):
                return random.choice(xs)  # flatlint: disable=FT001
            """)
        assert findings == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            def pick(xs):
                return random.choice(xs)  # flatlint: disable=FT003
            """)
        assert codes(findings) == ["FT001"]

    def test_disable_all_suppresses_everything(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", """\
            import random

            def pick(xs=[]):  # flatlint: disable=all
                return xs
            """)
        assert findings == []

    def test_syntax_error_reported_as_ft000(self, tmp_path):
        findings = lint_snippet(tmp_path, "mod.py", "def broken(:\n")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]

    def test_every_rule_has_stable_code_and_summary(self):
        rules = all_rules()
        assert [r.code for r in rules] == ["FT001", "FT002", "FT003",
                                           "FT004", "FT005", "FT006",
                                           "FT007"]
        assert all(r.name and r.summary for r in rules)
