"""End-to-end tests for the benchmarks/ conftest snapshot plumbing.

The real ``benchmarks/conftest.py`` is copied into a scratch directory
with two tiny stand-in benches and driven through a subprocess pytest
run (fixtures cannot be called directly), checking the three promises
``flattree bench`` depends on: the ``REPRO_TELEMETRY=0`` fast path
writes no METRICS.json, each bench's registry snapshot is isolated,
and METRICS.json is sorted JSON consumable by
:func:`repro.obs.bench.build_session`.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DUMMY_BENCHES = '''\
"""Tiny stand-in benches for the conftest plumbing tests."""

from repro import obs


def test_bench_alpha(once):
    def work():
        obs.incr("dummy.alpha.calls", 3)
        return sum(range(1000))

    once(work)


def test_bench_beta(once):
    def work():
        obs.incr("dummy.beta.calls", 1)
        obs.observe("dummy.beta.lat_s", 0.5)
        return 1

    once(work)
'''


def run_bench_dir(tmp: Path, telemetry: str):
    bench_dir = tmp / "benchmarks"
    bench_dir.mkdir()
    shutil.copy(REPO_ROOT / "benchmarks" / "conftest.py",
                bench_dir / "conftest.py")
    (bench_dir / "test_bench_dummy.py").write_text(DUMMY_BENCHES,
                                                   encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env["REPRO_TELEMETRY"] = telemetry
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         "--benchmark-only", str(bench_dir)],
        cwd=str(tmp), env=env, capture_output=True, text=True, timeout=180)
    return bench_dir, proc


@pytest.fixture(scope="module")
def bench_session(tmp_path_factory):
    """One shared telemetry-on run of the scratch bench directory."""
    tmp = tmp_path_factory.mktemp("benchrun")
    bench_dir, proc = run_bench_dir(tmp, telemetry="1")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return bench_dir


class TestSnapshotPlumbing:
    def test_metrics_json_is_valid_sorted_json(self, bench_session):
        raw = (bench_session / "METRICS.json").read_text(encoding="utf-8")
        data = json.loads(raw)
        assert list(data) == sorted(data)
        # Written with sort_keys + indent, byte-for-byte reproducible.
        assert raw == json.dumps(data, indent=1, sort_keys=True) + "\n"

    def test_per_test_registry_isolation(self, bench_session):
        data = json.loads(
            (bench_session / "METRICS.json").read_text(encoding="utf-8"))
        alpha_key = next(k for k in data if "alpha" in k)
        beta_key = next(k for k in data if "beta" in k)
        assert data[alpha_key]["dummy.alpha.calls"]["value"] == 3
        assert "dummy.beta.calls" not in data[alpha_key]
        assert "dummy.alpha.calls" not in data[beta_key]
        assert data[beta_key]["dummy.beta.lat_s"]["count"] == 1

    def test_results_txt_accumulates(self, bench_session):
        text = (bench_session / "RESULTS.txt").read_text(encoding="utf-8")
        assert text.startswith("# reproduced tables")

    def test_metrics_consumable_by_bench_session_builder(
            self, bench_session):
        from repro.obs.bench import build_session, validate_session

        metrics = json.loads(
            (bench_session / "METRICS.json").read_text(encoding="utf-8"))
        stats = {key: {"wall_s": 0.01, "mean_s": 0.01, "stddev_s": 0.0,
                       "rounds": 1}
                 for key in metrics}
        session = build_session(stats, metrics, label="test")
        assert validate_session(session) == []
        entry = session["benchmarks"][
            "test_bench_dummy.py::test_bench_alpha"]
        assert entry["metrics"]["dummy.alpha.calls"]["value"] == 3


def test_telemetry_zero_fast_path_writes_no_metrics(tmp_path):
    bench_dir, proc = run_bench_dir(tmp_path, telemetry="0")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert not (bench_dir / "METRICS.json").exists()
    assert (bench_dir / "RESULTS.txt").exists()
