"""Edge cases for the runtime JSONL validator (tools/check_telemetry.py)."""

from __future__ import annotations

import json

from tools import check_telemetry


def write_events(tmp_path, events):
    path = tmp_path / "run.jsonl"
    path.write_text(
        "".join(json.dumps(e) + "\n" for e in events), encoding="utf-8")
    return str(path)


def counter(name, value=1.0):
    return {"ts": 0.5, "name": name, "kind": "counter", "value": value}


GOOD_HEAL = {
    "ts": 1.0, "name": "core.failures.heal", "kind": "event", "value": 1,
    "reconfigured": 2, "unrecoverable": 0, "t": 3.5,
}


def test_valid_stream_passes(tmp_path, capsys):
    path = write_events(tmp_path, [counter("a"), GOOD_HEAL])
    assert check_telemetry.main([path]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "2 events" in out


def test_unknown_kind_fails(tmp_path, capsys):
    bad = {"ts": 0.1, "name": "a", "kind": "metric", "value": 1}
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    err = capsys.readouterr().err
    assert "unknown 'kind'" in err
    assert ":1:" in err


def test_unregistered_event_name_fails(tmp_path, capsys):
    bad = {"ts": 0.1, "name": "made.up", "kind": "event", "value": 1}
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "unknown event type 'made.up'" in capsys.readouterr().err


def test_missing_per_name_field_fails(tmp_path, capsys):
    heal = dict(GOOD_HEAL)
    del heal["t"]
    path = write_events(tmp_path, [heal])
    assert check_telemetry.main([path]) == 1
    assert "'t'" in capsys.readouterr().err


def test_link_sample_missing_utilization_fails(tmp_path, capsys):
    sample = {
        "ts": 0.2, "name": "monitor.link", "kind": "link_sample", "value": 1,
        "link": "core0-agg0", "t": 0.2, "rate": 5.0, "capacity": 10.0,
        "active_flows": 3,
    }
    path = write_events(tmp_path, [sample])
    assert check_telemetry.main([path]) == 1
    assert "utilization" in capsys.readouterr().err


def test_empty_file_fails(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("", encoding="utf-8")
    assert check_telemetry.main([str(path)]) == 1
    assert "no events" in capsys.readouterr().err


def test_whitespace_only_file_fails(tmp_path, capsys):
    path = tmp_path / "blank.jsonl"
    path.write_text("\n\n  \n", encoding="utf-8")
    assert check_telemetry.main([str(path)]) == 1
    assert "no events" in capsys.readouterr().err


def test_missing_file_fails(tmp_path, capsys):
    assert check_telemetry.main([str(tmp_path / "nope.jsonl")]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_min_names_coverage_gate(tmp_path, capsys):
    path = write_events(tmp_path, [counter("a"), counter("b")])
    assert check_telemetry.main([path, "--min-names", "2"]) == 0
    capsys.readouterr()
    assert check_telemetry.main([path, "--min-names", "3"]) == 1
    err = capsys.readouterr().err
    assert "only 2 distinct names" in err and "need 3" in err


def test_reexports_come_from_contract():
    from repro.obs import contract

    assert check_telemetry.KINDS is contract.KINDS
    assert check_telemetry.KNOWN_EVENT_NAMES is contract.KNOWN_EVENT_NAMES
    assert check_telemetry.check_line is contract.check_line


GOOD_SAMPLER_STREAM = [
    {"ts": 1.0, "name": "sampler.start", "kind": "event", "value": 1,
     "hz": 97.0},
    {"ts": 2.0, "name": "sampler.flush", "kind": "event", "value": 1,
     "samples": 42, "label": "build"},
    {"ts": 3.0, "name": "sampler.stop", "kind": "event", "value": 1,
     "samples": 99, "elapsed_s": 2.0},
]

GOOD_HEARTBEAT = {
    "ts": 1.5, "name": "progress.heartbeat", "kind": "event", "value": 1,
    "phase": "topology.build_clos", "done": 3, "total": 8,
    "elapsed_s": 0.4, "eta_s": 0.6, "rss_kb": 51200.0,
    "rss_peak_kb": 51200.0,
}

GOOD_HOTSPOT_SESSION = {
    "ts": 9.0, "name": "perf.hotspot_session", "kind": "event", "value": 1,
    "out": "HOTSPOTS_1.json", "functions": 40, "samples": 1234,
}

GOOD_DIFF_SESSION = {
    "ts": 10.0, "name": "perf.diff_session", "kind": "event", "value": 1,
    "base": "BENCH_3.json", "new": "BENCH_4.json", "grown": 1, "shrunk": 2,
}

GOOD_TREND_SESSION = {
    "ts": 11.0, "name": "perf.trend_session", "kind": "event", "value": 1,
    "sessions": 4, "metrics": 20, "steps": 1,
}


def test_sampler_and_progress_stream_passes(tmp_path, capsys):
    events = GOOD_SAMPLER_STREAM + [GOOD_HEARTBEAT, GOOD_HOTSPOT_SESSION]
    path = write_events(tmp_path, events)
    assert check_telemetry.main([path]) == 0
    assert "5 events" in capsys.readouterr().out


def test_sampler_start_rejects_non_positive_hz(tmp_path, capsys):
    bad = dict(GOOD_SAMPLER_STREAM[0], hz=0)
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "'hz' must be positive" in capsys.readouterr().err


def test_sampler_stop_requires_sample_count(tmp_path, capsys):
    bad = dict(GOOD_SAMPLER_STREAM[2])
    del bad["samples"]
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "'samples'" in capsys.readouterr().err


def test_heartbeat_requires_phase_and_counts(tmp_path, capsys):
    for missing in ("phase", "done", "total", "elapsed_s"):
        bad = dict(GOOD_HEARTBEAT)
        del bad[missing]
        path = write_events(tmp_path, [bad])
        assert check_telemetry.main([path]) == 1, missing
        assert f"'{missing}'" in capsys.readouterr().err


def test_heartbeat_rejects_negative_eta(tmp_path, capsys):
    bad = dict(GOOD_HEARTBEAT, eta_s=-1.0)
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "'eta_s'" in capsys.readouterr().err


def test_hotspot_session_requires_out(tmp_path, capsys):
    bad = dict(GOOD_HOTSPOT_SESSION, out="")
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "'out'" in capsys.readouterr().err


def test_diff_and_trend_sessions_pass(tmp_path, capsys):
    path = write_events(tmp_path, [GOOD_DIFF_SESSION, GOOD_TREND_SESSION])
    assert check_telemetry.main([path]) == 0
    assert "2 events" in capsys.readouterr().out


def test_diff_session_requires_labels_and_counts(tmp_path, capsys):
    for missing in ("base", "new", "grown", "shrunk"):
        bad = dict(GOOD_DIFF_SESSION)
        del bad[missing]
        path = write_events(tmp_path, [bad])
        assert check_telemetry.main([path]) == 1, missing
        assert f"'{missing}'" in capsys.readouterr().err


def test_trend_session_rejects_negative_counts(tmp_path, capsys):
    bad = dict(GOOD_TREND_SESSION, steps=-2)
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "'steps'" in capsys.readouterr().err


GOOD_SELFHEAL_ACTION = {
    "ts": 2.0, "name": "selfheal.action_succeeded", "kind": "event",
    "value": 1, "action": "reconvert", "rule": "link_hotspot",
    "latency_s": 0.09, "t": 2.4,
}


def test_selfheal_action_stream_passes(tmp_path, capsys):
    path = write_events(tmp_path, [GOOD_SELFHEAL_ACTION])
    assert check_telemetry.main([path]) == 0
    assert "OK" in capsys.readouterr().out


def test_selfheal_action_requires_rule(tmp_path, capsys):
    bad = dict(GOOD_SELFHEAL_ACTION)
    del bad["rule"]
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "'rule'" in capsys.readouterr().err


def test_recover_noop_component_vocabulary(tmp_path, capsys):
    good = {"ts": 0.2, "name": "chaos.recover_noop", "kind": "event",
            "value": 1, "component": "cable", "target": "3-7", "t": 1.0}
    assert check_telemetry.main([write_events(tmp_path, [good])]) == 0
    bad = dict(good, component="gpu")
    path = write_events(tmp_path, [bad])
    assert check_telemetry.main([path]) == 1
    assert "component" in capsys.readouterr().err
