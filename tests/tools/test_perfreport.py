"""Tests for the bench regression gate and perfreport CLI.

The comparator is the thing that keeps BENCH_*.json honest, so it is
proven here against fixture sessions: a self-compare must pass, an
injected 10x slowdown must fail with exit code 1, and schema garbage
must exit 2 — the flatlint exit-code convention.
"""

from __future__ import annotations

import json

import pytest

from tools.perfreport import (
    DEFAULT_MIN_RUNTIME_S,
    DEFAULT_TOLERANCE,
    compare_sessions,
    render_json,
    render_text,
)
from tools.perfreport.__main__ import main


def make_session(walls, label="bench", **env_overrides):
    """A minimal schema-valid BENCH session with the given wall times."""
    environment = {
        "python": "3.11.7", "implementation": "CPython",
        "platform": "Linux-test", "machine": "x86_64", "cpu_count": 8,
        "networkx": "3.6.1", "numpy": None, "scipy": None,
        "repro": "1.0.0", "git_commit": None, "git_dirty": None,
    }
    environment.update(env_overrides)
    return {
        "schema": 1,
        "label": label,
        "ts": 1754500000.0,
        "environment": environment,
        "benchmarks": {
            key: {"wall_s": wall, "mean_s": wall, "stddev_s": 0.0,
                  "rounds": 1, "metrics": {}}
            for key, wall in walls.items()
        },
    }


class TestCompareSessions:
    def test_self_compare_is_clean(self):
        session = make_session({"a.py::t1": 0.5, "a.py::t2": 1.25})
        comparison = compare_sessions(session, session)
        assert comparison.exit_code == 0
        assert {d.status for d in comparison.deltas} == {"ok"}
        assert comparison.environment_drift == []

    def test_injected_10x_slowdown_is_a_regression(self):
        base = make_session({"a.py::t": 0.5})
        slow = make_session({"a.py::t": 5.0})
        comparison = compare_sessions(base, slow)
        assert [d.status for d in comparison.deltas] == ["regression"]
        assert comparison.deltas[0].ratio == pytest.approx(10.0)
        assert comparison.exit_code == 1

    def test_below_floor_never_judged(self):
        base = make_session({"a.py::t": 0.0001})
        new = make_session({"a.py::t": 0.004})  # 40x, but both < 5 ms
        comparison = compare_sessions(base, new)
        assert [d.status for d in comparison.deltas] == ["below-floor"]
        assert comparison.exit_code == 0

    def test_floor_applies_only_when_both_sides_are_under(self):
        base = make_session({"a.py::t": 0.001})
        new = make_session({"a.py::t": 0.5})  # new side is well over
        comparison = compare_sessions(base, new)
        assert [d.status for d in comparison.deltas] == ["regression"]

    def test_added_and_removed(self):
        base = make_session({"old.py::t": 0.5})
        new = make_session({"new.py::t": 0.5})
        statuses = {d.key: d.status
                    for d in compare_sessions(base, new).deltas}
        assert statuses == {"new.py::t": "added", "old.py::t": "removed"}

    def test_improvement_does_not_fail_the_gate(self):
        comparison = compare_sessions(make_session({"a.py::t": 1.0}),
                                      make_session({"a.py::t": 0.5}))
        assert [d.status for d in comparison.deltas] == ["improvement"]
        assert comparison.exit_code == 0

    def test_within_default_tolerance_is_ok(self):
        comparison = compare_sessions(make_session({"a.py::t": 1.0}),
                                      make_session({"a.py::t": 1.2}))
        assert [d.status for d in comparison.deltas] == ["ok"]

    def test_custom_tolerance_tightens_the_gate(self):
        comparison = compare_sessions(
            make_session({"a.py::t": 1.0}), make_session({"a.py::t": 1.2}),
            tolerance=0.10)
        assert [d.status for d in comparison.deltas] == ["regression"]

    def test_environment_drift_reported(self):
        base = make_session({"a.py::t": 1.0})
        new = make_session({"a.py::t": 1.0}, python="3.12.1", cpu_count=4)
        drift = "\n".join(compare_sessions(base, new).environment_drift)
        assert "python" in drift and "cpu_count" in drift
        assert "3.12.1" in drift

    def test_defaults_are_documented_values(self):
        assert DEFAULT_TOLERANCE == 0.25
        assert DEFAULT_MIN_RUNTIME_S == 0.005


class TestRenderers:
    def test_text_orders_regressions_first_and_summarizes(self):
        base = make_session({"a.py::fast": 0.5, "b.py::slow": 0.5})
        new = make_session({"a.py::fast": 0.5, "b.py::slow": 5.0},
                           python="3.12.0")
        comparison = compare_sessions(base, new)
        text = render_text(comparison)
        lines = text.splitlines()
        assert "environment drift" in text
        first_status_line = next(l for l in lines if l.startswith(
            ("regression", "ok")))
        assert first_status_line.startswith("regression")
        assert "1 regression(s) across 2 judged bench(es)" in lines[-1]

    def test_json_shape(self):
        comparison = compare_sessions(make_session({"a.py::t": 0.5}),
                                      make_session({"a.py::t": 5.0}))
        document = render_json(comparison)
        assert document["regressions"] == 1
        (delta,) = document["deltas"]
        assert delta["status"] == "regression"
        assert delta["ratio"] == pytest.approx(10.0)
        json.dumps(document)  # must be JSON-serializable as-is


def write_session(tmp_path, name, session):
    path = tmp_path / name
    path.write_text(json.dumps(session) + "\n", encoding="utf-8")
    return str(path)


class TestCompareCli:
    def test_self_compare_exits_zero(self, tmp_path, capsys):
        path = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        assert main(["compare", path, path]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        slow = write_session(tmp_path, "BENCH_2.json",
                             make_session({"a.py::t": 5.0}))
        assert main(["compare", base, slow]) == 1
        assert "regression" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        path = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        assert main(["compare", str(tmp_path / "nope.json"), path]) == 2
        assert "perfreport:" in capsys.readouterr().err

    def test_schema_violation_exits_two(self, tmp_path, capsys):
        good = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"schema": 99}\n', encoding="utf-8")
        assert main(["compare", good, str(bad)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_json_format_parses(self, tmp_path, capsys):
        path = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        assert main(["compare", path, path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["regressions"] == 0

    def test_no_subcommand_exits_two(self, capsys):
        assert main([]) == 2
        assert "compare" in capsys.readouterr().out


def write_trace(tmp_path):
    events = [
        {"ts": 1.0, "name": "convert", "kind": "span", "duration_s": 0.25,
         "path": "cli/convert", "depth": 1, "span_id": 2, "parent_id": 1},
        {"ts": 1.0, "name": "cli", "kind": "span", "duration_s": 1.0,
         "path": "cli", "depth": 0, "span_id": 1, "parent_id": None},
    ]
    path = tmp_path / "run.jsonl"
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n",
                    encoding="utf-8")
    return str(path)


class TestProfileCli:
    def test_profile_text_report(self, tmp_path, capsys):
        assert main(["profile", write_trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 spans, 1 roots" in out
        assert "critical path:" in out

    def test_profile_json_report(self, tmp_path, capsys):
        assert main(["profile", write_trace(tmp_path),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"] == 2
        assert [n["name"] for n in document["critical_path"]] == [
            "cli", "convert"]

    def test_flamegraph_stdout(self, tmp_path, capsys):
        assert main(["flamegraph", write_trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cli 750000" in out
        assert "cli;convert 250000" in out

    def test_flamegraph_out_file(self, tmp_path, capsys):
        folded = tmp_path / "run.folded"
        assert main(["flamegraph", write_trace(tmp_path),
                     "--out", str(folded)]) == 0
        assert "cli;convert 250000" in folded.read_text()

    def test_empty_trace_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["profile", str(empty)]) == 2
        assert "no span events" in capsys.readouterr().err

    def test_garbage_trace_exits_two(self, tmp_path, capsys):
        garbage = tmp_path / "bad.jsonl"
        garbage.write_text("{not json\n", encoding="utf-8")
        assert main(["flamegraph", str(garbage)]) == 2
        assert "not valid JSONL" in capsys.readouterr().err


class TestCompareAutoSelect:
    def test_picks_two_newest_numbered_sessions(self, tmp_path, capsys):
        write_session(tmp_path, "BENCH_1.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_2.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_10.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_smoke.json",
                      make_session({"a.py::t": 99.0}))
        assert main(["compare", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "auto-selected BENCH_2.json (base) vs BENCH_10.json" in out
        assert "0 regression(s)" in out

    def test_fewer_than_two_sessions_exits_zero_with_message(
            self, tmp_path, capsys):
        write_session(tmp_path, "BENCH_1.json",
                      make_session({"a.py::t": 0.5}))
        assert main(["compare", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "found 1 BENCH_<seq>.json" in out
        assert "flattree bench" in out

    def test_empty_root_exits_zero(self, tmp_path, capsys):
        assert main(["compare", "--root", str(tmp_path)]) == 0
        assert "found 0" in capsys.readouterr().out

    def test_single_positional_is_a_usage_error(self, tmp_path, capsys):
        path = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        assert main(["compare", path]) == 2
        assert "both BASE and NEW" in capsys.readouterr().err

    def test_auto_selected_regression_still_gates(self, tmp_path, capsys):
        write_session(tmp_path, "BENCH_1.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_2.json",
                      make_session({"a.py::t": 5.0}))
        assert main(["compare", "--root", str(tmp_path)]) == 1
        assert "regression" in capsys.readouterr().out


def write_hotspots(tmp_path):
    from repro.obs import hotspots
    from repro.obs.sampler import SampleProfile

    counts = {
        ("hotspots.campaign/hotspots.mcf", ("mod.solve", "mod.dijkstra")): 8,
        ("hotspots.campaign/hotspots.build", ("mod.build",)): 2,
    }
    profile = SampleProfile(counts, samples=10, duration_s=2.0, hz=97.0)
    stages = [
        {"name": "build", "span": "hotspots.campaign/hotspots.build",
         "wall_s": 0.5},
        {"name": "mcf", "span": "hotspots.campaign/hotspots.mcf",
         "wall_s": 1.5},
    ]
    document = hotspots.build_document(profile, stages, k=8, label="test")
    path = tmp_path / "HOTSPOTS_1.json"
    hotspots.write_document(path, document)
    return str(path)


class TestHotspotsCli:
    def test_renders_valid_artifact(self, tmp_path, capsys):
        assert main(["hotspots", write_hotspots(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mod.dijkstra" in out
        assert "mcf" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        assert main(["hotspots", write_hotspots(tmp_path),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["samples"] == 10

    def test_folded_re_export(self, tmp_path, capsys):
        folded = tmp_path / "campaign.folded"
        assert main(["hotspots", write_hotspots(tmp_path),
                     "--folded", str(folded)]) == 0
        lines = folded.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) > 0

    def test_bad_artifact_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "HOTSPOTS_1.json"
        bad.write_text('{"schema": "nope"}\n', encoding="utf-8")
        assert main(["hotspots", str(bad)]) == 2
        assert "perfreport:" in capsys.readouterr().err


class TestAutoSelectNotices:
    def test_single_session_message_names_the_session(self, tmp_path,
                                                      capsys):
        write_session(tmp_path, "BENCH_7.json",
                      make_session({"a.py::t": 0.5}))
        assert main(["compare", "--root", str(tmp_path)]) == 0
        assert "existing: BENCH_7.json" in capsys.readouterr().out

    def test_empty_root_message_says_none(self, tmp_path, capsys):
        assert main(["compare", "--root", str(tmp_path)]) == 0
        assert "existing: none" in capsys.readouterr().out

    def test_gapped_sequence_is_flagged_with_ids(self, tmp_path, capsys):
        write_session(tmp_path, "BENCH_1.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_2.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_5.json",
                      make_session({"a.py::t": 0.5}))
        assert main(["compare", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "auto-selected BENCH_2.json (base) vs BENCH_5.json" in out
        assert "missing seq 3, 4" in out
        assert "BENCH_1.json, BENCH_2.json, BENCH_5.json" in out

    def test_contiguous_sequence_has_no_gap_note(self, tmp_path, capsys):
        write_session(tmp_path, "BENCH_1.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_2.json",
                      make_session({"a.py::t": 0.5}))
        assert main(["compare", "--root", str(tmp_path)]) == 0
        assert "missing seq" not in capsys.readouterr().out


class TestDiffCli:
    def test_bench_diff_attributes_injected_slowdown(self, tmp_path,
                                                     capsys):
        base = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::slow": 0.5,
                                           "a.py::ok": 1.0}))
        new = write_session(tmp_path, "BENCH_2.json",
                            make_session({"a.py::slow": 5.0,
                                          "a.py::ok": 1.0}))
        assert main(["diff", base, new]) == 1
        out = capsys.readouterr().out
        grown_rows = [l for l in out.splitlines() if l.startswith("grown")]
        assert len(grown_rows) == 1
        assert "a.py::slow" in grown_rows[0]
        assert "10.00x" in grown_rows[0]

    def test_trace_diff_via_jsonl_inputs(self, tmp_path, capsys):
        base = write_trace(tmp_path)
        assert main(["diff", base, base]) == 0
        out = capsys.readouterr().out
        assert "perfreport diff (trace)" in out
        assert "critical path" in out

    def test_hotspot_diff_and_folded_export(self, tmp_path, capsys):
        artifact = write_hotspots(tmp_path)
        folded = tmp_path / "diff.folded"
        assert main(["diff", artifact, artifact,
                     "--folded", str(folded)]) == 0
        lines = folded.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, base_us, new_us = line.rsplit(" ", 2)
            assert stack
            assert base_us == new_us  # self-diff: both columns equal

    def test_folded_refused_for_bench_sessions(self, tmp_path, capsys):
        base = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        assert main(["diff", base, base,
                     "--folded", str(tmp_path / "x.folded")]) == 2
        assert "no stacks" in capsys.readouterr().err

    def test_mixed_kinds_exit_two(self, tmp_path, capsys):
        bench = write_session(tmp_path, "BENCH_1.json",
                              make_session({"a.py::t": 0.5}))
        trace = write_trace(tmp_path)
        assert main(["diff", bench, trace]) == 2
        assert "same kind" in capsys.readouterr().err

    def test_auto_select_diffs_two_newest_sessions(self, tmp_path, capsys):
        write_session(tmp_path, "BENCH_1.json",
                      make_session({"a.py::t": 0.5}))
        write_session(tmp_path, "BENCH_2.json",
                      make_session({"a.py::t": 5.0}))
        assert main(["diff", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "auto-selected BENCH_1.json (base) vs BENCH_2.json" in out

    def test_json_format_parses(self, tmp_path, capsys):
        base = write_session(tmp_path, "BENCH_1.json",
                             make_session({"a.py::t": 0.5}))
        assert main(["diff", base, base, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "bench"
        assert document["grown"] == 0

    def test_unrecognized_input_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "mystery.json"
        bad.write_text('{"what": "is this"}\n', encoding="utf-8")
        assert main(["diff", str(bad), str(bad)]) == 2
        assert "neither" in capsys.readouterr().err


class TestTrendCli:
    def fill_root(self, tmp_path, last_wall):
        for seq, wall in enumerate((0.50, 0.52, 0.48), start=1):
            write_session(tmp_path, f"BENCH_{seq}.json",
                          make_session({"a.py::t": wall}))
        write_session(tmp_path, "BENCH_4.json",
                      make_session({"a.py::t": last_wall}))

    def test_step_up_exits_one(self, tmp_path, capsys):
        self.fill_root(tmp_path, last_wall=5.0)
        assert main(["trend", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "step-up" in out
        assert "1 regression(s)" in out

    def test_flat_noisy_trajectory_exits_zero(self, tmp_path, capsys):
        self.fill_root(tmp_path, last_wall=0.55)
        assert main(["trend", "--root", str(tmp_path)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_out_writes_the_json_artifact(self, tmp_path, capsys):
        self.fill_root(tmp_path, last_wall=0.55)
        report = tmp_path / "TREND_REPORT.json"
        assert main(["trend", "--root", str(tmp_path),
                     "--out", str(report)]) == 0
        document = json.loads(report.read_text(encoding="utf-8"))
        assert document["schema"] == "flattree.trend/1"
        assert document["regressions"] == 0

    def test_markdown_format(self, tmp_path, capsys):
        self.fill_root(tmp_path, last_wall=5.0)
        assert main(["trend", "--root", str(tmp_path),
                     "--format", "markdown"]) == 1
        out = capsys.readouterr().out
        assert "## Performance trajectory" in out
        assert "| **step-up** |" in out

    def test_empty_root_exits_zero(self, tmp_path, capsys):
        assert main(["trend", "--root", str(tmp_path)]) == 0
        assert "0 session(s)" in capsys.readouterr().out
