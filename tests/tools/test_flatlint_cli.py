"""flatlint CLI behavior, the repo-lints-clean self-check, and the
flatlint <-> pyproject mypy-gate sync."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.flatlint import MYPY_STRICT_PACKAGES, all_rules, capability_line
from tools.flatlint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = """\
import random


def pick(xs):
    return random.choice(xs)
"""


def write_bad(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return path


def test_repo_lints_clean():
    """The acceptance criterion: src/ and tests/ carry zero findings."""
    code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    assert code == 0


def test_findings_exit_1_and_text_report(tmp_path, capsys):
    path = write_bad(tmp_path)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "FT001" in out
    assert f"{path}:5:" in out
    assert "1 finding" in out


def test_clean_file_exits_0(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n", encoding="utf-8")
    assert main([str(path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_report_shape(tmp_path, capsys):
    path = write_bad(tmp_path)
    assert main([str(path), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_checked"] == 1
    assert report["counts"] == {"FT001": 1}
    (finding,) = report["findings"]
    assert finding["code"] == "FT001"
    assert finding["line"] == 5
    assert finding["path"].endswith("bad.py")
    assert finding["message"]


def test_select_limits_rules(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("def f(xs=[]):\n    return xs\n", encoding="utf-8")
    assert main([str(path), "--select", "FT001"]) == 0
    capsys.readouterr()
    assert main([str(path), "--select", "FT003"]) == 1


def test_unknown_select_code_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path), "--select", "FT999"]) == 2
    err = capsys.readouterr().err
    assert "FT999" in err and "known" in err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "flatlint:" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out
        assert rule.summary in out


def test_capability_line_names_rules_and_strict_packages():
    line = capability_line()
    assert f"{len(all_rules())} rules" in line
    for rule in all_rules():
        assert rule.code in line
    for package in MYPY_STRICT_PACKAGES:
        assert package in line


def test_mypy_strict_packages_match_pyproject():
    """flattree info and pyproject must advertise the same strict set."""
    tomllib = pytest.importorskip("tomllib")
    config = tomllib.loads(
        (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8"))
    overrides = config["tool"]["mypy"]["overrides"]
    strict = {module
              for entry in overrides
              if entry.get("disallow_untyped_defs")
              for module in entry["module"]}
    assert strict == {f"{package}.*" for package in MYPY_STRICT_PACKAGES}
