"""flatlint CLI behavior, the repo-lints-clean self-check, and the
flatlint <-> pyproject mypy-gate sync."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.flatlint import MYPY_STRICT_PACKAGES, all_rules, capability_line
from tools.flatlint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = """\
import random


def pick(xs):
    return random.choice(xs)
"""


def write_bad(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return path


def test_repo_lints_clean():
    """The acceptance criterion: the whole repo carries zero findings
    across FT001-FT007 (every suppression in-tree is justified)."""
    code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"),
                 str(REPO_ROOT / "tools"), str(REPO_ROOT / "benchmarks")])
    assert code == 0


def test_findings_exit_1_and_text_report(tmp_path, capsys):
    path = write_bad(tmp_path)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "FT001" in out
    assert f"{path}:5:" in out
    assert "1 finding" in out


def test_clean_file_exits_0(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n", encoding="utf-8")
    assert main([str(path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_report_shape(tmp_path, capsys):
    path = write_bad(tmp_path)
    assert main([str(path), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_checked"] == 1
    assert report["counts"] == {"FT001": 1}
    (finding,) = report["findings"]
    assert finding["code"] == "FT001"
    assert finding["line"] == 5
    assert finding["path"].endswith("bad.py")
    assert finding["message"]


def test_select_limits_rules(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("def f(xs=[]):\n    return xs\n", encoding="utf-8")
    assert main([str(path), "--select", "FT001"]) == 0
    capsys.readouterr()
    assert main([str(path), "--select", "FT003"]) == 1


def test_unknown_select_code_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path), "--select", "FT999"]) == 2
    err = capsys.readouterr().err
    assert "FT999" in err and "known" in err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "flatlint:" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out
        assert rule.summary in out


def test_capability_line_names_rules_and_strict_packages():
    line = capability_line()
    assert f"{len(all_rules())} rules" in line
    for rule in all_rules():
        assert rule.code in line
    for package in MYPY_STRICT_PACKAGES:
        assert package in line


def test_parse_error_is_engine_error_exit_3(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(path)]) == 3
    assert "FT000" in capsys.readouterr().out


def test_out_writes_json_report_alongside_text(tmp_path, capsys):
    path = write_bad(tmp_path)
    report_path = tmp_path / "report.json"
    assert main([str(path), "--out", str(report_path)]) == 1
    assert "FT001" in capsys.readouterr().out  # text still on stdout
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["counts"] == {"FT001": 1}
    assert report["files_checked"] == 1


def test_graph_subcommand_prints_schema_and_edges(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text("def a():\n    b()\n\n\ndef b():\n    pass\n",
                    encoding="utf-8")
    assert main(["graph", str(path)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["schema"] == "flatlint.callgraph/1"
    (edge,) = data["edges"]
    assert edge["caller"].endswith("mod.a")
    assert edge["callee"].endswith("mod.b")
    assert edge["kind"] == "direct"
    quals = {fn["qualname"] for fn in data["functions"]}
    assert any(q.endswith("mod.a") for q in quals)
    assert any(q.endswith("mod.b") for q in quals)


def test_graph_out_writes_file(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text("def a():\n    pass\n", encoding="utf-8")
    out = tmp_path / "graph.json"
    assert main(["graph", str(path), "--out", str(out)]) == 0
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["schema"] == "flatlint.callgraph/1"
    assert "wrote call graph" in capsys.readouterr().out


def _git(tmp_path, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=tmp_path, check=True, capture_output=True)


def test_changed_only_lints_only_the_diff(tmp_path, capsys, monkeypatch):
    """--changed-only scopes findings to git-changed files while the
    context paths keep the whole-program graph available."""
    _git(tmp_path, "init", "-q")
    clean = tmp_path / "clean.py"
    clean.write_text("import random\n\n\ndef pick(xs):\n"
                     "    return random.choice(xs)\n", encoding="utf-8")
    _git(tmp_path, "add", "clean.py")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    # Only the untracked bad.py is linted: one file, one finding —
    # clean.py's (committed) finding is out of scope.
    assert main(["--changed-only", ".", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_checked"] == 1
    assert [f["path"] for f in report["findings"]] == ["bad.py"]


def test_changed_only_with_no_changes_is_clean(tmp_path, capsys,
                                               monkeypatch):
    _git(tmp_path, "init", "-q")
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n", encoding="utf-8")
    _git(tmp_path, "add", "ok.py")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed-only", "."]) == 0
    assert "nothing to lint" in capsys.readouterr().out


def test_mypy_strict_packages_match_pyproject():
    """flattree info and pyproject must advertise the same strict set."""
    tomllib = pytest.importorskip("tomllib")
    config = tomllib.loads(
        (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8"))
    overrides = config["tool"]["mypy"]["overrides"]
    strict = {module
              for entry in overrides
              if entry.get("disallow_untyped_defs")
              for module in entry["module"]}
    assert strict == {f"{package}.*" for package in MYPY_STRICT_PACKAGES}
