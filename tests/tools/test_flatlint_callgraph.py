"""The whole-program call-graph builder behind FT006/FT007.

Each test builds a tiny project from source snippets and asserts on
the edges: method-call resolution through inferred receiver types,
cycle tolerance, dynamic-dispatch fallback to the ``<unknown>`` node
(which must *widen* downstream taint, never drop it), lock-bounded
reachability, and the JSON round-trip behind
``python -m tools.flatlint graph``.
"""

from __future__ import annotations

import textwrap

from tools.flatlint.callgraph import CallGraph, UNKNOWN_PREFIX
from tools.flatlint.engine import Project, SourceFile
from tools.flatlint.symbols import SymbolTable


def build_graph(tmp_path, files):
    """files: {relpath: source} -> (SymbolTable, CallGraph)."""
    loaded = []
    for relpath, source in sorted(files.items()):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        loaded.append(SourceFile.load(path))
    project = Project(files=loaded)
    return project.symbols(), project.callgraph()


def edges_from(graph, caller):
    return {(e.callee, e.kind) for e in graph.out.get(caller, ())}


class TestResolution:
    def test_plain_call_and_method_call_resolve_direct(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            class Engine:
                def poll(self):
                    return self.step()

                def step(self):
                    return 0


            def drive(engine: Engine):
                helper()
                engine.poll()


            def helper():
                pass
            """})
        assert ("repro.zz.helper", "direct") in edges_from(
            graph, "repro.zz.drive")
        # Attribute call through the annotated receiver type.
        assert ("repro.zz.Engine.poll", "direct") in edges_from(
            graph, "repro.zz.drive")
        # self-dispatch inside the class.
        assert ("repro.zz.Engine.step", "direct") in edges_from(
            graph, "repro.zz.Engine.poll")

    def test_constructor_call_edges_to_init(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            class Engine:
                def __init__(self):
                    self.n = 0


            def make():
                return Engine()
            """})
        assert ("repro.zz.Engine.__init__", "direct") in edges_from(
            graph, "repro.zz.make")

    def test_cross_module_call_through_imports(self, tmp_path):
        _, graph = build_graph(tmp_path, {
            "src/repro/aa.py": """\
                def shared():
                    pass
                """,
            "src/repro/bb.py": """\
                from repro.aa import shared


                def caller():
                    shared()
                """,
        })
        assert ("repro.aa.shared", "direct") in edges_from(
            graph, "repro.bb.caller")

    def test_external_call_kept_as_external_edge(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            import time


            def stamp():
                return time.time()
            """})
        assert ("time.time", "external") in edges_from(
            graph, "repro.zz.stamp")


class TestCycles:
    def test_mutual_recursion_terminates_and_keeps_both_edges(
            self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            def ping(n):
                if n:
                    pong(n - 1)


            def pong(n):
                if n:
                    ping(n - 1)
            """})
        assert ("repro.zz.pong", "direct") in edges_from(
            graph, "repro.zz.ping")
        assert ("repro.zz.ping", "direct") in edges_from(
            graph, "repro.zz.pong")
        # Reachability over the cycle terminates and covers both nodes.
        parents = graph.reachable(["repro.zz.ping"])
        assert {"repro.zz.ping", "repro.zz.pong"} <= set(parents)
        # path_to never loops even though the graph does.
        assert graph.path_to(parents, "repro.zz.pong") == [
            "repro.zz.ping", "repro.zz.pong"]


class TestDynamicDispatch:
    def test_untyped_receiver_widens_by_name(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            class Ledger:
                def flush(self):
                    pass


            def drain(thing):
                thing.flush()
            """})
        calls = edges_from(graph, "repro.zz.drain")
        # Name widening reaches the project method of that name AND
        # keeps the unknown pseudo-edge: analyses must widen through
        # unresolvable dispatch, never drop it.
        assert ("repro.zz.Ledger.flush", "widened") in calls
        assert (f"{UNKNOWN_PREFIX}.flush", "unknown") in calls

    def test_unknown_node_has_no_project_name_collision(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            def drain(thing):
                thing.frobnicate()
            """})
        assert (f"{UNKNOWN_PREFIX}.frobnicate", "unknown") in edges_from(
            graph, "repro.zz.drain")

    def test_builtin_container_receiver_does_not_widen(self, tmp_path):
        # `seen.add(...)` on a local set() must NOT produce an edge to
        # a project method named `add` — stdlib receivers never
        # dispatch into the project.
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            class Ledger:
                def add(self, entry):
                    pass


            def dedupe(items):
                seen = set()
                for item in items:
                    seen.add(item)
            """})
        assert ("repro.zz.Ledger.add", "widened") not in edges_from(
            graph, "repro.zz.dedupe")


class TestLockBoundedReachability:
    def test_under_lock_edges_are_skipped_when_asked(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def locked_entry(self):
                    with self._lock:
                        self.helper()

                def bare_entry(self):
                    self.helper()

                def helper(self):
                    pass
            """})
        everything = graph.reachable(["repro.zz.Box.locked_entry"])
        assert "repro.zz.Box.helper" in everything
        unlocked = graph.reachable(["repro.zz.Box.locked_entry"],
                                   unlocked_only=True)
        assert "repro.zz.Box.helper" not in unlocked
        via_bare = graph.reachable(["repro.zz.Box.bare_entry"],
                                   unlocked_only=True)
        assert "repro.zz.Box.helper" in via_bare


class TestJsonRoundTrip:
    def test_graph_survives_to_json_from_json(self, tmp_path):
        _, graph = build_graph(tmp_path, {"src/repro/zz.py": """\
            import time


            def a():
                b()
                time.time()


            def b(thing=None):
                if thing is not None:
                    thing.emit()
            """})
        clone = CallGraph.from_json(graph.to_json())
        assert clone.edges == graph.edges
        # Adjacency is rebuilt, so reachability works on the clone.
        assert graph.reachable(["repro.zz.a"]) == clone.reachable(
            ["repro.zz.a"])
        # Round-tripping again is a fixed point.
        assert CallGraph.from_json(clone.to_json()).edges == clone.edges

    def test_from_json_rejects_wrong_schema(self, tmp_path):
        import json

        import pytest

        payload = json.dumps({"schema": "bogus/9", "edges": []})
        with pytest.raises(ValueError):
            CallGraph.from_json(payload)


class TestSymbolTable:
    def test_methods_and_subclasses_indexed(self, tmp_path):
        symtab, _ = build_graph(tmp_path, {"src/repro/zz.py": """\
            class Base:
                def emit(self, payload):
                    pass


            class Child(Base):
                def emit(self, payload):
                    pass
            """})
        assert isinstance(symtab, SymbolTable)
        emits = {fn.qualname for fn in symtab.methods_by_name["emit"]}
        assert emits == {"repro.zz.Base.emit", "repro.zz.Child.emit"}
        assert "repro.zz.Child" in symtab.subclasses["repro.zz.Base"]
        # MRO-lite lookup: Child inherits nothing here, but lookup
        # through the base still lands on the override.
        assert symtab.lookup_method("repro.zz.Child", "emit") == \
            "repro.zz.Child.emit"
