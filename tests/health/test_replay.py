"""Deterministic replay: byte-identical reports, exact alert pairs."""

from __future__ import annotations

import json

import pytest

from repro import health
from repro.health.report import HealthReport, prometheus_text


def judged(lines):
    agg = health.new_aggregator()
    agg.replay_lines(lines)
    return agg


class TestHotspotAcceptance:
    def test_sustained_hotspot_fires_exactly_one_pair(self, hotspot_lines):
        agg = judged(hotspot_lines)
        pairs = [(e["event"], e["rule"]) for e in agg.log]
        assert pairs == [("alert_firing", "link_hotspot"),
                         ("alert_resolved", "link_hotspot")]
        firing, resolved = agg.log
        # fires only after the 0.5 s sustained-for gate...
        assert firing["t"] >= 0.5
        assert firing["value"] > 0.9
        # ...and resolves once the EWMA decays through the clear level.
        assert resolved["t"] > 6.0
        assert resolved["fired_for"] > 0
        assert HealthReport(agg).healthy, "resolved => healthy again"

    def test_balanced_fabric_stays_quiet(self, hotspot_lines):
        quiet = [line for line in hotspot_lines
                 if '"s1->s2"' not in line]
        agg = judged(quiet)
        assert agg.log == []
        assert HealthReport(agg).healthy

    def test_report_counts_the_streamed_state(self, hotspot_lines):
        agg = judged(hotspot_lines)
        body = HealthReport(agg).to_dict()
        assert body["trace"]["events"] == 400
        assert body["trace"]["t_end"] == pytest.approx(9.95)
        assert body["downtime"]["dark_seconds"] == 0.0
        assert [r["link"] for r in body["links"]["hottest"]][0] == "s2->s3"


class TestDeterminism:
    def test_replays_are_byte_identical(self, hotspot_lines):
        first = HealthReport(judged(hotspot_lines)).to_json()
        second = HealthReport(judged(hotspot_lines)).to_json()
        assert first == second
        assert json.loads(first)["schema"] == "flattree.health/1"

    def test_no_wall_clock_material_in_the_report(self, hotspot_lines):
        body = HealthReport(judged(hotspot_lines)).to_json()
        assert '"ts"' not in body

    def test_json_is_nan_free(self, hotspot_lines):
        body = HealthReport(judged(hotspot_lines)).to_json()
        assert "NaN" not in body
        json.loads(body)  # strict: would reject non-standard tokens


class TestRenderings:
    def test_text_report_sections(self, hotspot_lines):
        text = HealthReport(judged(hotspot_lines)).render_text()
        assert "status: HEALTHY" in text
        assert "slos:" in text
        assert "conversion_downtime" in text
        assert "hottest links" in text

    def test_prometheus_exposition(self, hotspot_lines):
        agg = judged(hotspot_lines)
        prom = prometheus_text(agg)
        assert "# TYPE flattree_link_utilization_ewma gauge" in prom
        assert 'flattree_link_utilization_ewma{link="s2->s3"}' in prom
        assert "flattree_health_events_total 400" in prom
        assert 'flattree_alert_firing{rule="link_hotspot"} 0' in prom
        assert 'flattree_slo_budget_remaining{slo="flow_loss"}' in prom
        # exposition format: every sample line is `name{labels} value`
        for line in prom.splitlines():
            if line.startswith("#") or not line:
                continue
            assert len(line.rsplit(" ", 1)) == 2
            float(line.rsplit(" ", 1)[1])

    def test_dashboard_frame_is_pure_and_deterministic(self, hotspot_lines):
        frame1 = health.render_frame(judged(hotspot_lines))
        frame2 = health.render_frame(judged(hotspot_lines))
        assert frame1 == frame2
        assert "hot links" in frame1
        assert "slo budgets:" in frame1
        assert "alerts: 0 firing" in frame1
