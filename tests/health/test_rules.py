"""Alert rule lifecycle: hysteresis, sustained-for, probes, defaults."""

from __future__ import annotations

import math

import pytest

from repro import health
from repro.errors import ReproError
from repro.health.aggregate import HealthAggregator
from repro.health.rules import AlertRule, RulesEngine, probe_value
from repro.obs import contract


def gauge(name, value, t):
    return {"ts": 0.0, "name": name, "kind": "gauge", "value": value,
            "t": t}


def engine_with(rule):
    return RulesEngine((rule,))


def feed(agg, value, t):
    agg.consume(gauge("m", value, t))


class TestLifecycle:
    def rule(self, **over):
        base = dict(name="hot", probe="rollup:m:last", threshold=0.9,
                    clear_threshold=0.75)
        base.update(over)
        return AlertRule(**base)

    def test_firing_then_resolved_with_hysteresis(self):
        engine = engine_with(self.rule())
        agg = HealthAggregator(rules=engine)
        feed(agg, 0.95, t=1.0)
        engine.evaluate(agg)
        assert [s.rule.name for s in engine.active()] == ["hot"]
        # inside the hysteresis band: below threshold, above clear
        feed(agg, 0.80, t=2.0)
        engine.evaluate(agg)
        assert engine.active(), "0.80 > clear 0.75 must keep it firing"
        feed(agg, 0.70, t=3.0)
        engine.evaluate(agg)
        assert engine.active() == []
        events = [entry["event"] for entry in agg.log]
        assert events == ["alert_firing", "alert_resolved"]
        resolved = agg.log[1]
        assert resolved["fired_for"] == pytest.approx(2.0)

    def test_sustained_for_duration_gates_firing(self):
        engine = engine_with(self.rule(for_duration=1.0))
        agg = HealthAggregator(rules=engine)
        feed(agg, 0.95, t=1.0)
        engine.evaluate(agg)
        assert engine.active() == [], "breach must be sustained first"
        feed(agg, 0.95, t=1.5)
        engine.evaluate(agg)
        assert engine.active() == []
        feed(agg, 0.95, t=2.1)
        engine.evaluate(agg)
        assert [s.rule.name for s in engine.active()] == ["hot"]
        assert agg.log[0]["t"] == 2.1

    def test_recovery_during_pending_resets_the_clock(self):
        engine = engine_with(self.rule(for_duration=1.0))
        agg = HealthAggregator(rules=engine)
        feed(agg, 0.95, t=1.0)
        engine.evaluate(agg)
        feed(agg, 0.10, t=1.5)     # recovered before sustained-for
        engine.evaluate(agg)
        feed(agg, 0.95, t=2.5)     # breach again: clock restarts
        engine.evaluate(agg)
        assert engine.active() == []
        assert agg.log == []

    def test_nan_probe_never_breaches(self):
        engine = engine_with(self.rule(probe="rollup:absent:last"))
        agg = HealthAggregator(rules=engine)
        feed(agg, 0.95, t=1.0)
        engine.evaluate(agg)
        assert engine.active() == []

    def test_less_than_comparison(self):
        rule = AlertRule(name="starved", probe="rollup:m:last",
                         threshold=0.1, clear_threshold=0.2,
                         comparison="<")
        engine = engine_with(rule)
        agg = HealthAggregator(rules=engine)
        feed(agg, 0.05, t=1.0)
        engine.evaluate(agg)
        assert engine.active()
        feed(agg, 0.15, t=2.0)     # above threshold but below clear
        engine.evaluate(agg)
        assert engine.active()
        feed(agg, 0.25, t=3.0)
        engine.evaluate(agg)
        assert engine.active() == []


class TestEmittedEvents:
    def test_firing_and_resolved_pass_the_wire_contract(self, memory_sink):
        engine = engine_with(AlertRule(
            name="hot", probe="rollup:m:last", threshold=0.9,
            clear_threshold=0.75))
        agg = HealthAggregator(rules=engine)
        feed(agg, 0.95, t=1.0)
        engine.evaluate(agg)
        feed(agg, 0.10, t=2.0)
        engine.evaluate(agg)
        health_events = [e for e in memory_sink.events
                         if str(e["name"]).startswith("health.")
                         and e["kind"] == "event"]
        assert [e["name"] for e in health_events] == \
            ["health.alert_firing", "health.alert_resolved"]
        for event in health_events:
            assert contract.check_event(event) == [], event


class TestValidation:
    def test_bad_comparison(self):
        with pytest.raises(ReproError):
            AlertRule(name="r", probe="link.gini", threshold=1,
                      comparison="!=")

    def test_negative_for_duration(self):
        with pytest.raises(ReproError):
            AlertRule(name="r", probe="link.gini", threshold=1,
                      for_duration=-1)

    def test_clear_threshold_must_be_inside_the_band(self):
        with pytest.raises(ReproError):
            AlertRule(name="r", probe="link.gini", threshold=0.9,
                      clear_threshold=0.95)
        with pytest.raises(ReproError):
            AlertRule(name="r", probe="link.gini", threshold=0.1,
                      clear_threshold=0.05, comparison="<")

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="r", probe="link.gini", threshold=1)
        with pytest.raises(ReproError):
            RulesEngine((rule, rule))


class TestProbes:
    def test_named_probes(self):
        agg = HealthAggregator()
        assert probe_value(agg, "link.hottest_ewma") == 0.0
        assert probe_value(agg, "link.gini") == 0.0
        assert probe_value(agg, "conversion.dark_s") == 0.0
        assert probe_value(agg, "event_count:x") == 0.0
        assert probe_value(agg, "event_rate:x") == 0.0
        assert math.isnan(probe_value(agg, "ratio:x"))

    def test_unknown_probe_and_malformed_rollup(self):
        agg = HealthAggregator()
        with pytest.raises(ReproError, match="unknown probe"):
            probe_value(agg, "nope")
        with pytest.raises(ReproError, match="malformed probe"):
            probe_value(agg, "rollup:only-two")

    def test_ratio_probe_against_frozen_baseline(self):
        agg = HealthAggregator()
        for i in range(health.BASELINE_SAMPLES):
            feed(agg, 1.0, t=float(i))
        baseline = agg.metrics["m"].baseline
        assert baseline == pytest.approx(1.0)
        for i in range(20):
            feed(agg, 3.0, t=100.0 + i)
        assert probe_value(agg, "ratio:m") == pytest.approx(3.0)


class TestDefaultCatalog:
    def test_names_are_unique_and_documented_fields_set(self):
        rules = health.default_rules()
        names = [r.name for r in rules]
        assert len(set(names)) == len(names)
        assert {"link_hotspot", "link_imbalance", "conversion_downtime",
                "retry_storm", "fct_regression"} == set(names)
        for rule in rules:
            assert rule.description
            assert rule.severity in ("warning", "critical")
            # every default probe resolves against an empty aggregator
            probe_value(HealthAggregator(), rule.probe)

    def test_default_engine_quiet_on_empty_stream(self):
        agg = health.new_aggregator()
        agg.finish()
        assert agg.log == []
