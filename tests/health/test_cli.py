"""CLI surfaces: flattree health / flattree top, end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def trace_path(tmp_path, hotspot_lines):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(hotspot_lines) + "\n", encoding="utf-8")
    return path


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestHealthCommand:
    def test_healthy_trace_exits_zero(self, capsys, trace_path):
        code, out = run_cli(capsys, "health", str(trace_path))
        assert code == 0
        assert "status: HEALTHY" in out

    def test_json_output_is_deterministic(self, capsys, trace_path):
        code, out1 = run_cli(capsys, "health", str(trace_path), "--json")
        assert code == 0
        _, out2 = run_cli(capsys, "health", str(trace_path), "--json")
        assert out1 == out2
        assert json.loads(out1)["healthy"] is True

    def test_expect_matching_fired_alerts(self, capsys, trace_path):
        # link_hotspot fired (and resolved): expecting it exactly = 0
        code, _ = run_cli(capsys, "health", str(trace_path),
                          "--expect", "link_hotspot")
        assert code == 0

    def test_expect_mismatch_exits_one(self, capsys, trace_path):
        code, _ = run_cli(capsys, "health", str(trace_path),
                          "--expect", "")
        assert code == 1

    def test_missing_trace_exits_two(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "health", str(tmp_path / "nope.jsonl"))
        assert code == 2

    def test_corrupt_trace_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n", encoding="utf-8")
        code, _ = run_cli(capsys, "health", str(bad))
        assert code == 2

    def test_out_and_prom_artifacts(self, capsys, trace_path, tmp_path):
        report = tmp_path / "HEALTH_REPORT.json"
        prom = tmp_path / "health.prom"
        code, _ = run_cli(capsys, "health", str(trace_path),
                          "--out", str(report), "--prom", str(prom))
        assert code == 0
        body = json.loads(report.read_text(encoding="utf-8"))
        assert body["schema"] == "flattree.health/1"
        assert "flattree_link_gini" in prom.read_text(encoding="utf-8")


class TestTopCommand:
    def test_once_prints_single_frame(self, capsys, trace_path):
        code, out = run_cli(capsys, "top", "--trace", str(trace_path),
                            "--once")
        assert code == 0
        assert out.count("flattree top") == 1
        assert "\x1b[" not in out, "--once must not emit ANSI"
        assert "s2->s3" in out
        assert "slo budgets:" in out

    def test_live_replay_repaints(self, capsys, trace_path):
        code, out = run_cli(capsys, "top", "--trace", str(trace_path),
                            "--every", "100")
        assert code == 0
        assert out.count("flattree top") > 1
        assert "\x1b[H\x1b[J" in out

    def test_missing_trace_exits_two(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "top", "--trace",
                          str(tmp_path / "nope.jsonl"), "--once")
        assert code == 2


class TestRecordedRunRoundTrip:
    """Record real telemetry through the CLI, then judge the recording."""

    def test_monitored_run_replays_deterministically(
            self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _ = run_cli(capsys, f"--telemetry={trace}", "monitor",
                          "--k", "4", "--pattern", "hotspot",
                          "--flows", "12")
        assert code == 0 and trace.is_file()
        code1, out1 = run_cli(capsys, "health", str(trace), "--json")
        code2, out2 = run_cli(capsys, "health", str(trace), "--json")
        assert (code1, out1) == (code2, out2)
        assert json.loads(out1)["trace"]["events"] > 0

    def test_info_mentions_the_health_plane(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "health:" in out
        assert "alert rules" in out
