"""Unit tests for the streaming health aggregator and the bus tee."""

from __future__ import annotations

import json
import math

import pytest

from repro import health, obs
from repro.errors import ReproError
from repro.health.aggregate import HealthAggregator, HealthSink
from repro.obs.sinks import MemorySink

from tests.health.conftest import link_sample


def wire(name, kind, **fields):
    base = {"ts": 0.0, "name": name, "kind": kind}
    base.update(fields)
    return base


class TestLinkRollups:
    def test_link_ewma_peak_and_freshness(self):
        agg = HealthAggregator(alpha=0.5)
        agg.consume(json.loads(link_sample(0.0, "a->b", 0.4)))
        agg.consume(json.loads(link_sample(1.0, "a->b", 0.8)))
        rollup = agg.links["a->b"]
        # first sample seeds exactly, then value += alpha * (v - value)
        assert rollup.ewma.value == pytest.approx(0.6)
        assert rollup.peak == 0.8
        assert rollup.last_t == 1.0
        assert agg.t == 1.0

    def test_stale_links_drop_out_of_hotspot_probe(self):
        agg = HealthAggregator(stale_after=1.0)
        agg.consume(json.loads(link_sample(0.0, "hot->x", 0.95)))
        agg.consume(json.loads(link_sample(5.0, "cool->y", 0.2)))
        fresh = [r.link for r in agg.fresh_links()]
        assert fresh == ["cool->y"]
        assert agg.hottest_utilization() == pytest.approx(0.2)
        # ... but stale links still count toward fabric-wide imbalance.
        assert agg.link_gini() > 0.0

    def test_hottest_links_orders_by_ewma_then_name(self):
        agg = HealthAggregator()
        for link, value in (("b->c", 0.5), ("a->b", 0.5), ("c->d", 0.9)):
            agg.consume(json.loads(link_sample(0.0, link, value)))
        assert [r.link for r in agg.hottest_links(3)] == \
            ["c->d", "a->b", "b->c"]


class TestDowntimeLedger:
    def test_down_up_accumulates_dark_seconds(self):
        agg = HealthAggregator()
        agg.consume(wire("monitor.link_down", "link_down", link="a-b",
                         value=1, t=1.0))
        assert agg.open_dark_links() == ["a-b"]
        agg.consume(wire("monitor.link_up", "link_up", link="a-b",
                         value=1, dark_s=0.5, t=1.5))
        assert agg.dark_seconds == pytest.approx(0.5)
        assert agg.blink_windows == 1
        assert agg.open_dark_links() == []

    def test_unmatched_up_is_ignored(self):
        agg = HealthAggregator()
        agg.consume(wire("monitor.link_up", "link_up", link="a-b",
                         value=1, t=1.0))
        assert agg.dark_seconds == 0.0
        assert agg.blink_windows == 0


class TestMetricAndEventRollups:
    def test_metric_stats(self):
        agg = HealthAggregator(window=8)
        for v in (1.0, 2.0, 3.0, 4.0):
            agg.consume(wire("m", "gauge", value=v))
        assert agg.metric_stat("m", "last") == 4.0
        assert agg.metric_stat("m", "p50") == 2.0
        assert agg.metric_stat("m", "mean") == pytest.approx(2.5)
        assert agg.metric_stat("m", "total") == pytest.approx(10.0)
        assert agg.metric_stat("m", "rate_of_change") == pytest.approx(1.0)
        assert math.isnan(agg.metric_stat("absent", "p99"))
        with pytest.raises(ReproError):
            agg.metric_stat("m", "p75")

    def test_timer_events_roll_up_duration(self):
        agg = HealthAggregator()
        agg.consume(wire("solve_s", "timer", duration_s=0.25))
        assert agg.metric_stat("solve_s", "last") == 0.25

    def test_event_count_and_windowed_rate(self):
        agg = HealthAggregator()
        for t in (0.0, 1.0, 2.0):
            agg.consume(wire("flowsim.flow_rerouted", "event", value=1,
                             flow_id=1, outcome="rerouted", t=t))
        assert agg.event_count("flowsim.flow_rerouted") == 3
        assert agg.event_rate("flowsim.flow_rerouted") == pytest.approx(1.0)

    def test_health_events_never_aggregated(self):
        agg = HealthAggregator()
        agg.consume(wire("health.alert_firing", "event", value=1,
                         rule="r", metric="m", threshold=1.0, t=1.0))
        assert agg.events == 0
        assert agg.event_counts == {}

    def test_baseline_freezes_at_sample_threshold(self):
        agg = HealthAggregator()
        for i in range(health.BASELINE_SAMPLES):
            agg.consume(wire("fct", "histogram", value=1.0 + 0.001 * i))
        frozen = agg.metrics["fct"].baseline
        assert not math.isnan(frozen)
        for _ in range(10):
            agg.consume(wire("fct", "histogram", value=50.0))
        assert agg.metrics["fct"].baseline == frozen


class TestReplayValidation:
    def test_bad_json_line_raises(self):
        with pytest.raises(ReproError, match="bad telemetry line"):
            HealthAggregator().replay_lines(["{nope"])

    def test_blank_lines_and_non_objects_skipped(self):
        agg = HealthAggregator()
        agg.replay_lines(["", "   ", "[1, 2]"])
        assert agg.events == 0

    def test_constructor_validation(self):
        with pytest.raises(ReproError):
            HealthAggregator(window=0)
        with pytest.raises(ReproError):
            HealthAggregator(eval_every=0)
        with pytest.raises(ReproError):
            HealthAggregator(stale_after=0.0)


class TestHealthSinkTee:
    def test_tee_forwards_and_aggregates(self, clean_obs):
        inner = MemorySink()
        agg = HealthAggregator()
        obs.enable(HealthSink(inner, agg), emit_metric_events=True)
        obs.set_gauge("g", 2.0)
        obs.disable()
        assert [e["name"] for e in inner.events] == ["g"]
        assert agg.metric_stat("g", "last") == 2.0

    def test_attach_detach_lifecycle(self, memory_sink):
        agg = health.attach()
        obs.observe("fct", 0.5)
        assert health.detach() is agg
        # the original sink saw the event, and was restored afterwards
        assert [e["name"] for e in memory_sink.events] == ["fct"]
        assert obs.current_sink() is memory_sink
        assert agg.metric_stat("fct", "last") == 0.5

    def test_attach_requires_enabled_telemetry(self, clean_obs):
        with pytest.raises(ReproError, match="disabled"):
            health.attach()

    def test_double_attach_refused(self, memory_sink):
        health.attach()
        try:
            with pytest.raises(ReproError, match="already attached"):
                health.attach()
        finally:
            health.detach()

    def test_detach_without_attach_refused(self, memory_sink):
        with pytest.raises(ReproError, match="not attached"):
            health.detach()

    def test_no_feedback_loop_when_rules_fire_live(self, memory_sink):
        # A firing alert emits health.* events through the tee itself;
        # consume() must ignore them rather than recurse or re-count.
        agg = health.HealthAggregator(
            rules=health.RulesEngine((health.AlertRule(
                name="hot", probe="rollup:g:last", threshold=0.5),)),
            eval_every=1,
        )
        health.attach(agg)
        obs.set_gauge("g", 0.9)
        health.detach()
        fired = [e for e in memory_sink.events
                 if e["name"] == "health.alert_firing"]
        assert len(fired) == 1
        assert agg.events == 1


class TestProgressHeartbeats:
    def beat(self, **fields):
        base = {"ts": 1.0, "name": "progress.heartbeat", "kind": "event",
                "value": 1, "phase": "routing.build_ksp_table",
                "done": 3, "total": 12, "elapsed_s": 0.5, "eta_s": 1.5,
                "rss_kb": 40960.0}
        base.update(fields)
        return base

    def test_latest_heartbeat_kept_per_phase(self):
        agg = HealthAggregator()
        agg.consume(self.beat(done=3))
        agg.consume(self.beat(done=7, eta_s=0.8))
        agg.consume(self.beat(phase="mcf.approx", done=1, total=0))
        assert set(agg.progress) == {"routing.build_ksp_table", "mcf.approx"}
        ksp = agg.progress["routing.build_ksp_table"]
        assert ksp["done"] == 7
        assert ksp["eta_s"] == 0.8
        assert agg.progress["mcf.approx"]["total"] == 0

    def test_heartbeat_without_phase_ignored(self):
        agg = HealthAggregator()
        agg.consume(self.beat(phase=""))
        assert agg.progress == {}

    def test_progress_panel_rendered_in_top_frame(self):
        from repro.health.top import render_frame

        agg = HealthAggregator()
        agg.consume(self.beat(done=9))
        frame = render_frame(agg)
        assert "progress" in frame
        assert "routing.build_ksp_table" in frame
        assert "9/12" in frame
        assert "eta 1.5s" in frame
        assert "rss 40M" in frame

    def test_frame_omits_panel_without_heartbeats(self):
        from repro.health.top import render_frame

        frame = render_frame(HealthAggregator())
        assert "progress" not in frame
