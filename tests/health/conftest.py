"""Health-plane test fixtures: isolated telemetry + trace builders."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.sinks import MemorySink


@pytest.fixture()
def clean_obs():
    """Guarantee telemetry is off and the registry empty around a test."""
    obs.disable()
    obs.registry.reset()
    yield
    obs.disable()
    obs.registry.reset()


@pytest.fixture()
def memory_sink(clean_obs) -> MemorySink:
    """Telemetry enabled onto an in-memory sink (metric events on)."""
    sink = MemorySink()
    obs.enable(sink, emit_metric_events=True)
    return sink


def link_sample(t, link, utilization):
    """One monitor link_sample wire event, JSON-encoded."""
    return json.dumps({
        "ts": 0.0, "name": "monitor.link_sample", "kind": "link_sample",
        "t": t, "link": link, "value": utilization,
        "utilization": utilization, "rate": utilization, "capacity": 1.0,
        "active_flows": 1,
    })


@pytest.fixture()
def hotspot_lines():
    """A synthetic trace: one link sustained >90% hot, then cooling off.

    200 ticks at 0.05 s: ``s1->s2`` runs at 0.97 for the first 120
    ticks (6 trace seconds) then drops to 0.10; ``s2->s3`` idles at
    0.20 throughout.  Long enough past both the 0.5 s sustained-for
    gate and the EWMA decay through the 0.75 clear threshold that the
    default ``link_hotspot`` rule fires exactly once and resolves
    exactly once.
    """
    lines = []
    for i in range(200):
        t = i * 0.05
        hot = 0.97 if i < 120 else 0.10
        lines.append(link_sample(t, "s1->s2", hot))
        lines.append(link_sample(t, "s2->s3", 0.20))
    return lines
