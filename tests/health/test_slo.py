"""SLO burn-rate math against hand-computed budgets."""

from __future__ import annotations

import pytest

from repro import health
from repro.errors import ReproError
from repro.health.aggregate import HealthAggregator
from repro.health.slo import Slo, SloTracker
from repro.obs import contract


class FakeAggregator:
    """The minimal surface SloTracker touches: clock, probe, log."""

    def __init__(self):
        self.t = 0.0
        self.dark_seconds = 0.0
        self.log = []

    def at(self, t, dark):
        self.t = t
        self.dark_seconds = dark
        return self


def tracker(budget=10.0, slo_window=10.0, short=1.0, long_=5.0):
    return SloTracker(Slo(
        name="downtime", probe="conversion.dark_s", budget=budget,
        slo_window=slo_window, short_window=short, long_window=long_,
    ))


class TestBurnRateMath:
    def test_hand_computed_multi_window_trajectory(self):
        """budget 10 per 10 s, short 1 s, long 5 s, threshold 1.0.

        t=0 dark=0   -> rates 0
        t=1 dark=2   -> short: 2 consumed / (10*1/10) = 2.0
                        long:  2 / (10*5/10) = 0.4      -> not burning
        t=5 dark=8   -> short: (8-2)/1 = 6.0
                        long:  (8-0)/5 = 1.6            -> BURNING
        t=6 dark=8   -> short: (8-8)/1 = 0.0            -> re-armed
        t=7 dark=9   -> short: (9-8)/1 = 1.0
                        long:  (9-2)/5 = 1.4            -> burning again
        """
        agg = FakeAggregator()
        trk = tracker()
        trk.observe(agg.at(0.0, 0.0))
        assert trk.burn_rate(1.0, 0.0) == 0.0
        assert not trk.burning

        trk.observe(agg.at(1.0, 2.0))
        assert trk.burn_rate(1.0, 1.0) == pytest.approx(2.0)
        assert trk.burn_rate(5.0, 1.0) == pytest.approx(0.4)
        assert not trk.burning and trk.burns == 0

        trk.observe(agg.at(5.0, 8.0))
        assert trk.burn_rate(1.0, 5.0) == pytest.approx(6.0)
        assert trk.burn_rate(5.0, 5.0) == pytest.approx(1.6)
        assert trk.burning and trk.burns == 1
        episode = agg.log[0]
        assert episode["event"] == "slo_burn"
        assert episode["burn_rate"] == pytest.approx(6.0)
        assert episode["budget_remaining"] == pytest.approx(2.0)

        trk.observe(agg.at(6.0, 8.0))
        assert not trk.burning, "short window recovered"

        trk.observe(agg.at(7.0, 9.0))
        assert trk.burn_rate(1.0, 7.0) == pytest.approx(1.0)
        assert trk.burn_rate(5.0, 7.0) == pytest.approx(1.4)
        assert trk.burning and trk.burns == 2
        assert len(agg.log) == 2

    def test_budget_remaining_over_trailing_slo_window(self):
        agg = FakeAggregator()
        trk = tracker(budget=4.0, slo_window=10.0)
        trk.observe(agg.at(0.0, 0.0))
        trk.observe(agg.at(5.0, 3.0))
        assert trk.budget_remaining == pytest.approx(1.0)
        trk.observe(agg.at(8.0, 5.0))
        assert trk.budget_remaining == pytest.approx(-1.0)

    def test_consumption_is_monotone_clamped(self):
        agg = FakeAggregator()
        trk = tracker()
        trk.observe(agg.at(1.0, 3.0))
        trk.observe(agg.at(2.0, 1.0))   # probe regressed: no refund
        assert trk.consumed == 3.0

    def test_history_pruned_to_retention(self):
        agg = FakeAggregator()
        trk = tracker()
        for i in range(100):
            trk.observe(agg.at(float(i), 0.0))
        # 10 s retention + the one boundary entry kept for reference
        assert len(trk.history) <= 12

    def test_emitted_burn_event_passes_the_wire_contract(
            self, memory_sink):
        agg = FakeAggregator()
        trk = tracker()
        trk.observe(agg.at(0.0, 0.0))
        trk.observe(agg.at(5.0, 50.0))
        burn = [e for e in memory_sink.events
                if e["name"] == "health.slo_burn"]
        assert len(burn) == 1
        assert contract.check_event(burn[0]) == [], burn[0]


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ReproError):
            Slo(name="s", probe="conversion.dark_s", budget=0,
                slo_window=10, short_window=1, long_window=5)

    def test_window_ordering_enforced(self):
        with pytest.raises(ReproError):
            Slo(name="s", probe="conversion.dark_s", budget=1,
                slo_window=10, short_window=6, long_window=5)
        with pytest.raises(ReproError):
            Slo(name="s", probe="conversion.dark_s", budget=1,
                slo_window=4, short_window=1, long_window=5)

    def test_burn_threshold_positive(self):
        with pytest.raises(ReproError):
            Slo(name="s", probe="conversion.dark_s", budget=1,
                slo_window=10, short_window=1, long_window=5,
                burn_threshold=0)


class TestDefaultSlos:
    def test_catalog_shape(self):
        slos = health.default_slos()
        assert [t.slo.name for t in slos] == \
            ["conversion_downtime", "flow_loss"]
        for trk in slos:
            assert trk.slo.description
            snap = trk.snapshot()
            assert snap["budget_remaining"] == trk.slo.budget

    def test_downtime_slo_burns_on_a_dark_fabric(self):
        agg = HealthAggregator(slos=(health.default_slos()[0],),
                               eval_every=1)
        agg.consume({"name": "monitor.link_down", "kind": "link_down",
                     "ts": 0.0, "link": "a-b", "value": 1, "t": 0.5})
        agg.consume({"name": "monitor.link_up", "kind": "link_up",
                     "ts": 0.0, "link": "a-b", "value": 1, "t": 1.5})
        agg.finish()
        assert any(entry["event"] == "slo_burn" for entry in agg.log)
