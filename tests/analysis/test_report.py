"""Unit tests for topology comparison reports."""

from __future__ import annotations

import random

from repro.analysis.report import compare_networks, summarize
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree


class TestSummarize:
    def test_fat_tree_summary(self, fat8):
        summary = summarize(fat8, bisection_trials=2)
        assert summary.switches == 80
        assert summary.servers == 128
        assert summary.cables == 256
        assert summary.diameter == 4
        assert 5.0 < summary.average_path_length < 6.0
        assert summary.servers_by_kind == {"edge": 128}
        assert summary.bisection > 0


class TestCompare:
    def test_table_contains_all_networks_and_metrics(self):
        ft = build_fat_tree(4)
        jf = build_jellyfish_like_fat_tree(4, random.Random(0))
        table = compare_networks([ft, jf], bisection_trials=2)
        assert "fat-tree(k=4)" in table
        assert "jellyfish(k=4)" in table
        for metric in ("avg path length", "diameter", "bisection",
                       "servers by layer"):
            assert metric in table

    def test_columns_align(self):
        ft = build_fat_tree(4)
        table = compare_networks([ft], bisection_trials=1)
        lengths = {len(line) for line in table.splitlines()
                   if not set(line) <= {"-"}}
        assert len(lengths) == 1
