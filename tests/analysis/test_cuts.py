"""Unit tests for cut metrics."""

from __future__ import annotations

import random

import pytest

from repro.analysis.cuts import (
    flow_between_sets,
    random_bisection_bandwidth,
    sparsest_pair_cut,
)
from repro.errors import SolverError
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree


def dumbbell():
    """Two triangles joined by a single cable."""
    net = Network("dumbbell")
    nodes = [PlainSwitch(i) for i in range(6)]
    for node in nodes:
        net.add_switch(node, 6)
    for a, b in ((0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)):
        net.add_cable(nodes[a], nodes[b])
    net.add_cable(nodes[2], nodes[3])
    for i, node in enumerate(nodes):
        net.add_server(i, node)
    return net


class TestFlowBetweenSets:
    def test_dumbbell_cut_is_one(self):
        net = dumbbell()
        left = [PlainSwitch(i) for i in range(3)]
        right = [PlainSwitch(i) for i in range(3, 6)]
        assert flow_between_sets(net, left, right) == pytest.approx(1.0)

    def test_single_pair_reduces_to_max_flow(self):
        net = dumbbell()
        value = flow_between_sets(net, [PlainSwitch(0)], [PlainSwitch(1)])
        assert value == pytest.approx(2.0)  # direct + detour

    def test_overlap_rejected(self):
        net = dumbbell()
        with pytest.raises(SolverError):
            flow_between_sets(net, [PlainSwitch(0)], [PlainSwitch(0)])

    def test_empty_side_rejected(self):
        net = dumbbell()
        with pytest.raises(SolverError):
            flow_between_sets(net, [], [PlainSwitch(0)])


class TestBisection:
    def test_dumbbell_bottleneck_found(self):
        net = dumbbell()
        value = random_bisection_bandwidth(net, trials=16,
                                           rng=random.Random(0))
        assert value == pytest.approx(1.0)

    def test_random_graph_beats_fat_tree(self):
        """The paper's premise: richer bandwidth in the random graph."""
        ft = build_fat_tree(4)
        jf = build_jellyfish_like_fat_tree(4, random.Random(0))
        rng = random.Random(1)
        assert random_bisection_bandwidth(
            jf, trials=6, rng=rng
        ) >= random_bisection_bandwidth(ft, trials=6, rng=rng)

    def test_needs_servers(self):
        net = Network("empty")
        net.add_switch(PlainSwitch(0), 2)
        with pytest.raises(SolverError):
            random_bisection_bandwidth(net)


class TestSparsestPair:
    def test_dumbbell_floor(self):
        net = dumbbell()
        value = sparsest_pair_cut(net, samples=40, rng=random.Random(0))
        assert value == pytest.approx(1.0)

    def test_needs_two_switches(self):
        net = Network("one")
        net.add_switch(PlainSwitch(0), 2)
        with pytest.raises(SolverError):
            sparsest_pair_cut(net)
