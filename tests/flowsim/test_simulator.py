"""Unit tests for the fluid flow-level simulator."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.flowsim.simulator import FlowSimulator, FlowSpec
from repro.routing.base import Path
from repro.topology.elements import Network, PlainSwitch


@pytest.fixture()
def line_net():
    net = Network("line")
    nodes = [PlainSwitch(i) for i in range(3)]
    for node in nodes:
        net.add_switch(node, 8)
    net.add_cable(nodes[0], nodes[1])
    net.add_cable(nodes[1], nodes[2])
    net.add_server(0, nodes[0])
    net.add_server(1, nodes[0])
    net.add_server(2, nodes[2])
    return net


def line_router(net):
    def router(src_server, dst_server, _flow_id):
        a = net.server_switch(src_server)
        b = net.server_switch(dst_server)
        if a == b:
            return Path((a,))
        return Path((PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)))

    return router


class TestSingleFlow:
    def test_fct_is_size_over_rate(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([FlowSpec(1, 0, 2, size=3.0)])
        assert result.completed[0].duration == pytest.approx(3.0)
        assert result.makespan == pytest.approx(3.0)

    def test_same_switch_flow_instant(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([FlowSpec(1, 0, 1, size=5.0)])
        assert result.completed[0].duration == pytest.approx(0.0)
        assert result.completed[0].path_hops == 0


class TestSharing:
    def test_two_flows_serialize_then_speed_up(self, line_net):
        """Two unit flows sharing a link: first phase at rate 1/2 until
        both have 0.5 left... they tie, so both finish at t = 2."""
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([
            FlowSpec(1, 0, 2, size=1.0),
            FlowSpec(2, 0, 2, size=1.0),
        ])
        finishes = sorted(c.finish for c in result.completed)
        assert finishes == pytest.approx([2.0, 2.0])

    def test_short_flow_finishes_then_long_accelerates(self, line_net):
        """Sizes 1 and 3: share 0.5 until t=2 (short done), then the
        long flow runs alone: 2 remaining at rate 1 -> t=4."""
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([
            FlowSpec(1, 0, 2, size=1.0),
            FlowSpec(2, 0, 2, size=3.0),
        ])
        by_id = {c.spec.flow_id: c for c in result.completed}
        assert by_id[1].finish == pytest.approx(2.0)
        assert by_id[2].finish == pytest.approx(4.0)


class TestArrivals:
    def test_late_arrival_shares_from_then_on(self, line_net):
        """Flow B arrives at t=1 while A (size 2) is half done; they
        share: A's remaining 1 at rate 0.5 -> A ends at t=3; B sent 1 of
        its 2 by then and runs alone -> t=4."""
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([
            FlowSpec(1, 0, 2, size=2.0, arrival=0.0),
            FlowSpec(2, 0, 2, size=2.0, arrival=1.0),
        ])
        by_id = {c.spec.flow_id: c for c in result.completed}
        assert by_id[1].finish == pytest.approx(3.0)
        assert by_id[2].finish == pytest.approx(4.0)

    def test_idle_gap_jumps_to_next_arrival(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([
            FlowSpec(1, 0, 2, size=1.0, arrival=0.0),
            FlowSpec(2, 0, 2, size=1.0, arrival=10.0),
        ])
        by_id = {c.spec.flow_id: c for c in result.completed}
        assert by_id[1].finish == pytest.approx(1.0)
        assert by_id[2].finish == pytest.approx(11.0)
        assert by_id[2].duration == pytest.approx(1.0)


class TestStatistics:
    def test_mean_and_p99(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([
            FlowSpec(1, 0, 2, size=1.0),
            FlowSpec(2, 0, 2, size=1.0),
        ])
        assert result.mean_fct == pytest.approx(2.0)
        assert result.p99_fct == pytest.approx(2.0)

    def test_empty_statistics_raise(self):
        from repro.flowsim.simulator import SimulationResult

        empty = SimulationResult()
        with pytest.raises(ReproError):
            _ = empty.mean_fct
        with pytest.raises(ReproError):
            _ = empty.p99_fct


class TestMonitorIntegration:
    def test_completed_flows_carry_their_path(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        result = sim.run([FlowSpec(1, 0, 2, size=1.0)])
        assert result.completed[0].path.hops == 2

    def test_monitor_sees_every_allocation(self, line_net):
        from repro.monitor import NetworkMonitor

        monitor = NetworkMonitor(line_net)
        sim = FlowSimulator(line_net, line_router(line_net),
                            monitor=monitor)
        sim.run([
            FlowSpec(1, 0, 2, size=1.0),
            FlowSpec(2, 0, 2, size=3.0),
        ])
        # Allocations recompute at t=0 (both arrive) and t=2 (flow 1
        # completes); the final recompute with no flows publishes too.
        assert monitor.samples_taken >= 2
        series = monitor.link_series(
            PlainSwitch(0), PlainSwitch(1)
        )
        # Two flows share the unit link fully, then one runs alone.
        assert series.peak == pytest.approx(1.0)
        assert series.samples[0].active_flows == 2

    def test_monitor_rates_match_allocator(self, line_net):
        """Sum of monitored link rates == sum(rate * hops) per sample."""
        from repro.flowsim.fairshare import (
            RoutedFlow,
            link_allocation,
            max_min_fair_rates,
        )
        from repro.monitor import NetworkMonitor

        monitor = NetworkMonitor(line_net)
        sim = FlowSimulator(line_net, line_router(line_net),
                            monitor=monitor)
        sim.run([
            FlowSpec(1, 0, 2, size=1.0),
            FlowSpec(2, 0, 2, size=2.0, arrival=0.5),
        ])
        # Replay the first allocation independently through fairshare.
        flows = [RoutedFlow(1, Path((PlainSwitch(0), PlainSwitch(1),
                                     PlainSwitch(2))))]
        rates = max_min_fair_rates(line_net, flows).rates
        link_rates, _ = link_allocation(flows, rates)
        first = {
            key: series.samples[0].rate
            for key in link_rates
            if (series := monitor.link_series(*key)) is not None
        }
        assert first == {k: pytest.approx(v)
                         for k, v in link_rates.items()}


class TestValidation:
    def test_bad_size_rejected(self):
        with pytest.raises(ReproError):
            FlowSpec(1, 0, 2, size=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ReproError):
            FlowSpec(1, 0, 2, size=1.0, arrival=-1.0)

    def test_duplicate_ids_rejected(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        with pytest.raises(ReproError):
            sim.run([
                FlowSpec(1, 0, 2, size=1.0),
                FlowSpec(1, 0, 2, size=1.0),
            ])

    def test_empty_rejected(self, line_net):
        sim = FlowSimulator(line_net, line_router(line_net))
        with pytest.raises(ReproError):
            sim.run([])


@pytest.fixture()
def diamond_net():
    """sw0 -> {sw1, sw2} -> sw3; servers 0 @ sw0, 1 @ sw3."""
    net = Network("diamond")
    nodes = [PlainSwitch(i) for i in range(4)]
    for node in nodes:
        net.add_switch(node, 8)
    net.add_cable(nodes[0], nodes[1])
    net.add_cable(nodes[1], nodes[3])
    net.add_cable(nodes[0], nodes[2])
    net.add_cable(nodes[2], nodes[3])
    net.add_server(0, nodes[0])
    net.add_server(1, nodes[3])
    return net


def _via(middle):
    def router(_src, _dst, _fid):
        return Path((PlainSwitch(0), PlainSwitch(middle), PlainSwitch(3)))

    return router


class TestTopologyEvents:
    def test_flow_rerouted_over_surviving_path(self, diamond_net):
        from repro.flowsim.simulator import TopologyEvent

        degraded = diamond_net.copy()
        degraded.remove_cable(PlainSwitch(1), PlainSwitch(3))
        sim = FlowSimulator(diamond_net, _via(1))
        result = sim.run(
            [FlowSpec(1, 0, 1, size=2.0)],
            events=[TopologyEvent(t=1.0, net=degraded, router=_via(2))],
        )
        assert result.rerouted == 1
        assert result.failed == []
        # Half done at t=1, other half at unit rate on the new path.
        assert result.completed[0].duration == pytest.approx(2.0)
        assert result.completed[0].path.edges()[0] == (
            PlainSwitch(0), PlainSwitch(2)
        )

    def test_flow_failed_when_no_surviving_path(self, diamond_net):
        from repro.flowsim.simulator import TopologyEvent

        stranded = diamond_net.copy()
        stranded.remove_cable(PlainSwitch(1), PlainSwitch(3))
        stranded.remove_cable(PlainSwitch(2), PlainSwitch(3))

        def dead_router(_src, _dst, fid):
            raise ReproError(f"no route for flow {fid}")

        sim = FlowSimulator(diamond_net, _via(1))
        result = sim.run(
            [FlowSpec(1, 0, 1, size=2.0)],
            events=[TopologyEvent(t=0.5, net=stranded,
                                  router=dead_router)],
        )
        assert result.completed == []
        assert len(result.failed) == 1
        failed = result.failed[0]
        assert failed.failed_at == pytest.approx(0.5)
        assert failed.remaining == pytest.approx(1.5)
        assert "no route" in failed.reason

    def test_unaffected_flows_keep_their_path(self, diamond_net):
        from repro.flowsim.simulator import TopologyEvent

        degraded = diamond_net.copy()
        degraded.remove_cable(PlainSwitch(2), PlainSwitch(3))
        sim = FlowSimulator(diamond_net, _via(1))
        result = sim.run(
            [FlowSpec(1, 0, 1, size=2.0)],
            events=[TopologyEvent(t=1.0, net=degraded)],
        )
        assert result.rerouted == 0
        assert result.completed[0].duration == pytest.approx(2.0)

    def test_arrivals_after_event_use_new_router(self, diamond_net):
        from repro.flowsim.simulator import TopologyEvent

        degraded = diamond_net.copy()
        degraded.remove_cable(PlainSwitch(1), PlainSwitch(3))
        sim = FlowSimulator(diamond_net, _via(1))
        result = sim.run(
            [
                FlowSpec(1, 0, 1, size=0.5),
                FlowSpec(2, 0, 1, size=1.0, arrival=2.0),
            ],
            events=[TopologyEvent(t=1.0, net=degraded, router=_via(2))],
        )
        late = [c for c in result.completed if c.spec.flow_id == 2][0]
        assert late.path.edges()[0] == (PlainSwitch(0), PlainSwitch(2))

    def test_reroute_events_validate(self, diamond_net):
        import json

        from repro import obs
        from repro.flowsim.simulator import TopologyEvent
        from repro.obs.sinks import MemorySink
        from tools.check_telemetry import check_line

        degraded = diamond_net.copy()
        degraded.remove_cable(PlainSwitch(1), PlainSwitch(3))
        sim = FlowSimulator(diamond_net, _via(1))
        sink = MemorySink()
        obs.enable(sink)
        try:
            sim.run(
                [FlowSpec(1, 0, 1, size=2.0)],
                events=[TopologyEvent(t=1.0, net=degraded,
                                      router=_via(2))],
            )
        finally:
            obs.disable()
        rerouted = [e for e in sink.events
                    if e.get("name") == "flowsim.flow_rerouted"]
        assert len(rerouted) == 1
        assert rerouted[0]["outcome"] == "rerouted"
        assert check_line(json.dumps(rerouted[0]), 1) == []

    def test_negative_event_time_rejected(self, diamond_net):
        from repro.flowsim.simulator import TopologyEvent

        with pytest.raises(ReproError):
            TopologyEvent(t=-1.0, net=diamond_net)
