"""Unit and property tests for max-min fair allocation."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.flowsim.fairshare import (
    RoutedFlow,
    link_allocation,
    max_min_fair_rates,
)
from repro.routing.base import Path
from repro.routing.ksp import k_shortest_paths
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree


def p(*indices):
    return Path(tuple(PlainSwitch(i) for i in indices))


def line(n=3, ports=8):
    net = Network("line")
    nodes = [PlainSwitch(i) for i in range(n)]
    for node in nodes:
        net.add_switch(node, ports)
    for a, b in zip(nodes, nodes[1:]):
        net.add_cable(a, b)
    return net


class TestKnownAllocations:
    def test_single_flow_gets_full_link(self):
        net = line()
        result = max_min_fair_rates(net, [RoutedFlow(1, p(0, 1))])
        assert result.rates[1] == pytest.approx(1.0)

    def test_two_flows_share_bottleneck(self):
        net = line()
        flows = [RoutedFlow(1, p(0, 1, 2)), RoutedFlow(2, p(0, 1))]
        result = max_min_fair_rates(net, flows)
        assert result.rates[1] == pytest.approx(0.5)
        assert result.rates[2] == pytest.approx(0.5)

    def test_opposite_directions_do_not_contend(self):
        net = line()
        flows = [RoutedFlow(1, p(0, 1)), RoutedFlow(2, p(1, 0))]
        result = max_min_fair_rates(net, flows)
        assert result.rates[1] == pytest.approx(1.0)
        assert result.rates[2] == pytest.approx(1.0)

    def test_waterfilling_releases_slack(self):
        """Classic: flows A(0-1-2), B(0-1), C(1-2).

        Link (0,1) carries A,B; link (1,2) carries A,C -> everyone 0.5.
        Add D(0,1) -> link (0,1) has 3 flows: A,B,D = 1/3; C then gets
        the slack on (1,2): 2/3.
        """
        net = line()
        flows = [
            RoutedFlow(1, p(0, 1, 2)),
            RoutedFlow(2, p(0, 1)),
            RoutedFlow(3, p(1, 2)),
            RoutedFlow(4, p(0, 1)),
        ]
        rates = max_min_fair_rates(net, flows).rates
        assert rates[1] == pytest.approx(1 / 3)
        assert rates[2] == pytest.approx(1 / 3)
        assert rates[4] == pytest.approx(1 / 3)
        assert rates[3] == pytest.approx(2 / 3)

    def test_demand_caps_respected(self):
        net = line()
        flows = [
            RoutedFlow(1, p(0, 1), demand=0.2),
            RoutedFlow(2, p(0, 1)),
        ]
        rates = max_min_fair_rates(net, flows).rates
        assert rates[1] == pytest.approx(0.2)
        assert rates[2] == pytest.approx(0.8)

    def test_zero_hop_flow_unbounded(self):
        net = line()
        flows = [RoutedFlow(1, p(0)), RoutedFlow(2, p(0, 1))]
        rates = max_min_fair_rates(net, flows).rates
        assert math.isinf(rates[1])
        assert rates[2] == pytest.approx(1.0)

    def test_zero_hop_with_demand(self):
        net = line()
        rates = max_min_fair_rates(
            net, [RoutedFlow(1, p(0), demand=3.0)]
        ).rates
        assert rates[1] == pytest.approx(3.0)

    def test_duplicate_ids_rejected(self):
        net = line()
        with pytest.raises(Exception):
            max_min_fair_rates(net, [RoutedFlow(1, p(0, 1)),
                                     RoutedFlow(1, p(1, 2))])

    def test_result_statistics(self):
        net = line()
        result = max_min_fair_rates(
            net, [RoutedFlow(1, p(0, 1)), RoutedFlow(2, p(1, 2))]
        )
        assert result.total == pytest.approx(2.0)
        assert result.min_rate == pytest.approx(1.0)
        assert set(result.bounded_rates()) == {1, 2}


class TestEdgeCases:
    def test_zero_capacity_link_rejected(self):
        net = line()
        net.add_cable(PlainSwitch(0), PlainSwitch(2), capacity=0.0)
        with pytest.raises(ReproError, match="non-positive capacity"):
            max_min_fair_rates(net, [RoutedFlow(1, p(0, 1))])

    def test_single_flow_bounded_rates(self):
        net = line()
        result = max_min_fair_rates(net, [RoutedFlow(7, p(0, 1, 2))])
        assert result.bounded_rates() == {7: pytest.approx(1.0)}
        assert result.total == pytest.approx(1.0)
        assert result.min_rate == pytest.approx(1.0)

    def test_zero_hop_flow_excluded_from_bounded_rates(self):
        net = line()
        result = max_min_fair_rates(
            net, [RoutedFlow(1, p(0)), RoutedFlow(2, p(0, 1))]
        )
        assert set(result.bounded_rates()) == {2}

    def test_deterministic_across_flow_orderings(self):
        """Same flow set, any presentation order: identical rates."""
        net = line()
        flows = [
            RoutedFlow(1, p(0, 1, 2)),
            RoutedFlow(2, p(0, 1)),
            RoutedFlow(3, p(1, 2)),
            RoutedFlow(4, p(0, 1), demand=0.1),
        ]
        baseline = max_min_fair_rates(net, flows).rates
        rng = random.Random(42)
        for _ in range(6):
            shuffled = list(flows)
            rng.shuffle(shuffled)
            assert max_min_fair_rates(net, shuffled).rates == baseline


class TestLinkAllocation:
    def test_folds_rates_per_directed_link(self):
        flows = [RoutedFlow(1, p(0, 1, 2)), RoutedFlow(2, p(0, 1))]
        rates = {1: 0.5, 2: 0.5}
        link_rates, link_flows = link_allocation(flows, rates)
        key01 = (PlainSwitch(0), PlainSwitch(1))
        key12 = (PlainSwitch(1), PlainSwitch(2))
        assert link_rates == {key01: pytest.approx(1.0),
                              key12: pytest.approx(0.5)}
        assert link_flows == {key01: 2, key12: 1}
        # Total over links equals sum(rate * hops).
        assert sum(link_rates.values()) == pytest.approx(
            sum(rates[f.flow_id] * f.path.hops for f in flows)
        )

    def test_infinite_rate_flows_touch_no_link(self):
        flows = [RoutedFlow(1, p(0))]
        link_rates, link_flows = link_allocation(flows, {1: math.inf})
        assert link_rates == {} and link_flows == {}


class TestMonitorHook:
    def test_allocation_published_to_monitor(self):
        class Probe:
            def __init__(self):
                self.calls = []

            def on_allocation(self, t, link_rates, link_flows):
                self.calls.append((t, link_rates, link_flows))

        net = line()
        probe = Probe()
        rates = max_min_fair_rates(
            net, [RoutedFlow(1, p(0, 1, 2))], monitor=probe, now=2.5
        ).rates
        (t, link_rates, link_flows), = probe.calls
        assert t == 2.5
        assert link_rates[(PlainSwitch(0), PlainSwitch(1))] == (
            pytest.approx(rates[1])
        )
        assert link_flows[(PlainSwitch(1), PlainSwitch(2))] == 1

    def test_no_monitor_is_default(self):
        net = line()
        result = max_min_fair_rates(net, [RoutedFlow(1, p(0, 1))])
        assert result.rates[1] == pytest.approx(1.0)


@given(st.integers(min_value=0, max_value=60), st.integers(min_value=2, max_value=24))
def test_property_allocation_feasible_and_positive(seed, nflows):
    """Random flows over fat-tree(4): capacities respected, no starvation."""
    net = build_fat_tree(4)
    rng = random.Random(seed)
    switches = [s for s in net.switches()]
    flows = []
    for fid in range(nflows):
        src, dst = rng.sample(switches, 2)
        paths = k_shortest_paths(net, src, dst, k=4)
        flows.append(RoutedFlow(fid, rng.choice(paths)))
    rates = max_min_fair_rates(net, flows).rates
    assert all(r > 0 for r in rates.values())
    load = {}
    for flow in flows:
        for u, v in flow.path.edges():
            load[(u, v)] = load.get((u, v), 0.0) + rates[flow.flow_id]
    for (u, v), total in load.items():
        assert total <= net.capacity(u, v) + 1e-6
