"""SamplingProfiler: capture, span attribution, folded export, events."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.contract import check_event
from repro.obs.sampler import SampleProfile, SamplingProfiler


def spin(seconds):
    """Burn CPU in this frame so the sampler has something to catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestCapture:
    def test_samples_the_calling_thread(self, clean_obs):
        with SamplingProfiler(hz=400) as profiler:
            spin(0.25)
        profile = profiler.profile
        assert profile is not None
        assert profile.samples > 10
        assert profile.duration_s == pytest.approx(0.25, abs=0.2)
        keys = [stat.key for stat in profile.aggregate()]
        assert any(key.endswith(".spin") for key in keys)

    def test_span_attribution(self, memory_sink):
        with SamplingProfiler(hz=400) as profiler:
            with obs.span("outer"):
                with obs.span("inner"):
                    spin(0.25)
        profile = profiler.profile
        spin_stat = next(stat for stat in profile.aggregate()
                         if stat.key.endswith(".spin"))
        assert "outer/inner" in spin_stat.spans

    def test_cannot_restart(self, clean_obs):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        profiler.stop()
        with pytest.raises(RuntimeError, match="restart"):
            profiler.start()
        with pytest.raises(RuntimeError, match="never started"):
            SamplingProfiler().stop()

    def test_rejects_bad_rate(self, clean_obs):
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(hz=0)


class TestProfileMath:
    def profile(self):
        counts = {
            ("a/b", ("mod.outer", "mod.leaf")): 6,
            ("", ("mod.outer",)): 4,
        }
        return SampleProfile(counts, samples=10, duration_s=1.0, hz=10.0)

    def test_period_and_rate(self):
        profile = self.profile()
        assert profile.period_s == pytest.approx(0.1)
        assert profile.effective_hz == pytest.approx(10.0)
        assert SampleProfile({}, 0, 0.0, 10.0).period_s == 0.0
        assert SampleProfile({}, 0, 0.0, 10.0).effective_hz == 0.0

    def test_self_and_cum_attribution(self):
        stats = {s.key: s for s in self.profile().aggregate()}
        assert stats["mod.leaf"].self_samples == 6
        assert stats["mod.leaf"].cum_samples == 6
        assert stats["mod.outer"].self_samples == 4
        assert stats["mod.outer"].cum_samples == 10
        assert stats["mod.leaf"].self_s == pytest.approx(0.6)
        assert stats["mod.outer"].cum_s == pytest.approx(1.0)
        assert stats["mod.leaf"].spans == {"a/b": 6}

    def test_recursion_not_double_counted(self):
        counts = {("", ("mod.f", "mod.f", "mod.f")): 5}
        profile = SampleProfile(counts, 5, 1.0, 10.0)
        stats = profile.aggregate()
        assert len(stats) == 1
        assert stats[0].cum_samples == 5

    def test_sorted_by_self_time_then_name(self):
        stats = self.profile().aggregate()
        assert [s.key for s in stats] == ["mod.leaf", "mod.outer"]

    def test_folded_format_and_span_prefix(self):
        lines = self.profile().folded()
        assert "a;b;mod.outer;mod.leaf 600000" in lines
        assert "mod.outer 400000" in lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack
            assert int(weight) > 0

    def test_render_table_mentions_top_function(self):
        table = self.profile().render_table(top=1)
        assert "mod.leaf" in table
        assert "[a/b]" in table


class TestThreadHygiene:
    def no_sampler_threads(self):
        import threading
        return not any(t.name == "repro-obs-sampler" and t.is_alive()
                       for t in threading.enumerate())

    def test_stop_is_idempotent(self, clean_obs):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        first = profiler.stop()
        assert profiler.stop() is first  # cached, not an error

    def test_exit_skips_stop_after_midbody_stop(self, clean_obs):
        with SamplingProfiler(hz=400) as profiler:
            spin(0.05)
            profile = profiler.stop()
        assert profiler.profile is profile
        assert self.no_sampler_threads()

    def test_exit_tears_down_on_body_exception(self, clean_obs):
        profiler = SamplingProfiler(hz=400)
        with pytest.raises(RuntimeError, match="boom"):
            with profiler:
                spin(0.02)
                raise RuntimeError("boom")
        # The sampler thread is gone and the profile was still taken:
        # teardown never masks the body's exception.
        assert self.no_sampler_threads()
        assert profiler.profile is not None

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_crashed_sampler_still_stops_cleanly(self, clean_obs,
                                                 monkeypatch):
        def explode(frame):
            raise RuntimeError("capture failed")

        monkeypatch.setattr("repro.obs.sampler._stack_of", explode)
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        spin(0.05)
        profile = profiler.stop()  # joins the dead thread, no hang
        assert profile.samples == 0
        assert profile.duration_s > 0.0
        assert self.no_sampler_threads()


class TestWireEvents:
    def test_start_stop_flush_schema_valid(self, memory_sink):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        profiler.flush(label="stage-1")
        spin(0.05)
        profiler.stop()
        names = [e["name"] for e in memory_sink.events
                 if e.get("kind") == "event"]
        assert names == ["sampler.start", "sampler.flush", "sampler.stop"]
        for event in memory_sink.events:
            assert check_event(event) == []

    def test_silent_when_disabled(self, clean_obs):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        spin(0.05)
        profile = profiler.stop()
        assert profile.samples > 0  # sampling works without telemetry
