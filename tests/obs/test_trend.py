"""Unit tests for the trajectory engine (repro.obs.trend)."""

from __future__ import annotations

import json

import pytest

from repro.obs import trend


def points(values, prefix="BENCH"):
    return [trend.SeriesPoint(seq=i + 1, label=f"{prefix}_{i + 1}.json",
                              value=v)
            for i, v in enumerate(values)]


def write_bench(root, seq, walls):
    session = {
        "schema": 1,
        "ts": 1700000000.0 + seq,
        "label": "t",
        "environment": {"python": "3.12.0", "implementation": "CPython",
                        "platform": "Linux-test", "machine": "x86_64",
                        "cpu_count": 8, "networkx": "3.3", "numpy": "2.0",
                        "scipy": "1.13", "repro": "1.0.0",
                        "git_commit": None, "git_dirty": None},
        "benchmarks": {
            key: {"wall_s": wall, "mean_s": wall, "stddev_s": 0.0,
                  "rounds": 1, "metrics": {}}
            for key, wall in walls.items()
        },
    }
    path = root / f"BENCH_{seq}.json"
    path.write_text(json.dumps(session), encoding="utf-8")
    return path


class TestNoiseModel:
    def test_injected_10x_step_is_flagged(self):
        series = points([0.50, 0.52, 0.48, 0.51, 5.0])
        result = trend.analyze_series("bench:x", series)
        assert result.status == "step-up"
        assert result.ratio == pytest.approx(5.0 / result.median)
        assert result.steps[-1].direction == "step-up"

    def test_noisy_but_flat_series_stays_green(self):
        # +/- ~10% jitter — inside the 25% relative floor by design.
        series = points([0.50, 0.55, 0.46, 0.53, 0.49, 0.56])
        result = trend.analyze_series("bench:x", series)
        assert result.status == "ok"
        assert result.steps == []

    def test_step_down_reported_but_not_a_regression(self):
        series = points([0.50, 0.52, 0.48, 0.51, 0.05])
        result = trend.analyze_series("bench:x", series)
        assert result.status == "step-down"

    def test_mad_band_matches_the_formula(self):
        history = [0.4, 0.5, 0.6, 0.9]
        series = points(history + [0.55])
        result = trend.analyze_series("bench:x", series)
        median = 0.55  # median of the 4-point history
        mad = 0.075  # |0.4-.55|=.15 |0.5|=.05 |0.6|=.05 |0.9|=.35 -> .1? no:
        # deviations sorted: .05 .05 .15 .35 -> median (0.05+0.15)/2 = 0.10
        mad = 0.10
        half = max(trend.DEFAULT_SIGMAS * trend.MAD_SCALE * mad,
                   trend.DEFAULT_REL_FLOOR * median,
                   trend.DEFAULT_MIN_RUNTIME_S)
        assert result.median == pytest.approx(median)
        assert result.mad == pytest.approx(mad)
        assert result.band_high == pytest.approx(median + half)
        # the lower band is clamped at zero — wall times can't go negative
        assert result.band_low == pytest.approx(max(0.0, median - half))

    def test_one_historical_outlier_cannot_stretch_the_band(self):
        # A stddev-based band would be blown open by the 10.0 spike;
        # the MAD band must still flag the new 5.0 step.
        series = points([0.50, 0.52, 10.0, 0.48, 0.51, 0.49, 5.0])
        result = trend.analyze_series("bench:x", series)
        assert result.status == "step-up"

    def test_insufficient_history(self):
        result = trend.analyze_series("bench:x", points([0.5, 0.6]))
        assert result.status == "insufficient-history"
        assert result.delta is None

    def test_below_floor_micro_metrics_never_judged(self):
        series = points([0.0001, 0.0002, 0.0001, 0.0040])
        result = trend.analyze_series("bench:x", series)
        assert result.status == "below-floor"

    def test_historical_steps_recorded_alongside_newest(self):
        series = points([0.50, 0.51, 5.0, 5.1, 5.0, 5.05])
        result = trend.analyze_series("bench:x", series)
        assert result.status == "ok"  # the step is old news now
        # seq 3 breaks out; seq 4 is still above its window's median
        # (the window is majority-old until the new epoch dominates)
        assert [s.seq for s in result.steps] == [3, 4]
        assert all(s.direction == "step-up" for s in result.steps)

    def test_window_limits_the_history(self):
        # With window=3 the early slow epoch ages out and the newest
        # value is judged only against the recent fast epoch.
        series = points([5.0, 5.1, 4.9, 0.50, 0.51, 0.49, 5.0])
        result = trend.analyze_series("bench:x", series, window=3)
        assert result.status == "step-up"


class TestTrajectory:
    def test_flags_the_bench_that_stepped(self, tmp_path):
        for seq in (1, 2, 3):
            write_bench(tmp_path, seq, {"a.py::slow": 0.5, "a.py::ok": 1.0})
        write_bench(tmp_path, 4, {"a.py::slow": 5.0, "a.py::ok": 1.02})
        report = trend.analyze_trajectory(tmp_path)
        assert report.exit_code == 1
        assert [m.metric for m in report.regressions] == ["bench:a.py::slow"]
        ok = next(m for m in report.metrics if m.metric == "bench:a.py::ok")
        assert ok.status == "ok"
        assert report.sessions == [f"BENCH_{n}.json" for n in (1, 2, 3, 4)]

    def test_flat_trajectory_exits_zero(self, tmp_path):
        for seq, wall in enumerate((0.50, 0.55, 0.46, 0.53), start=1):
            write_bench(tmp_path, seq, {"a.py::x": wall})
        report = trend.analyze_trajectory(tmp_path)
        assert report.exit_code == 0

    def test_environment_drift_noted(self, tmp_path):
        write_bench(tmp_path, 1, {"a.py::x": 0.5})
        path = write_bench(tmp_path, 2, {"a.py::x": 0.5})
        session = json.loads(path.read_text())
        session["environment"]["numpy"] = "2.1"
        path.write_text(json.dumps(session), encoding="utf-8")
        report = trend.analyze_trajectory(tmp_path)
        assert any("numpy" in note and "'2.0' -> '2.1'" in note
                   for note in report.environment_drift)

    def test_unreadable_session_is_skipped_not_fatal(self, tmp_path):
        for seq in (1, 2, 3):
            write_bench(tmp_path, seq, {"a.py::x": 0.5})
        (tmp_path / "BENCH_4.json").write_text("{not json", encoding="utf-8")
        report = trend.analyze_trajectory(tmp_path)
        assert report.exit_code == 0
        assert any("BENCH_4.json" in note
                   for note in report.environment_drift)
        assert "BENCH_4.json" not in report.sessions

    def test_hotspot_stages_become_metrics(self, tmp_path):
        documents = []
        for seq, mcf in enumerate((1.0, 1.1, 0.9, 9.0), start=1):
            doc = {"schema": "flattree.hotspots/1", "ts": 1.0, "label": "t",
                   "k": 8, "hz": 97.0, "duration_s": 2.0 + mcf,
                   "samples": 100, "environment": {},
                   "stages": [{"name": "mcf", "span": "campaign/mcf",
                               "wall_s": mcf, "samples": 50},
                              {"name": "build", "span": "campaign/build",
                               "wall_s": 1.0, "samples": 50}],
                   "functions": [], "folded": []}
            documents.append((tmp_path / f"HOTSPOTS_{seq}.json", doc))
        series = trend.hotspot_series(documents)
        assert set(series) == {"hotspots:stage.mcf.wall_s",
                               "hotspots:stage.build.wall_s"}
        result = trend.analyze_series("hotspots:stage.mcf.wall_s",
                                      series["hotspots:stage.mcf.wall_s"])
        assert result.status == "step-up"


class TestRenderingAndEvent:
    def report(self, tmp_path):
        for seq in (1, 2, 3):
            write_bench(tmp_path, seq, {"a.py::slow": 0.5, "a.py::ok": 1.0})
        write_bench(tmp_path, 4, {"a.py::slow": 5.0, "a.py::ok": 1.02})
        return trend.analyze_trajectory(tmp_path)

    def test_text_orders_regressions_first(self, tmp_path):
        text = trend.render_text(self.report(tmp_path))
        lines = text.splitlines()
        first_metric_row = next(l for l in lines if l.startswith("step"))
        assert "bench:a.py::slow" in first_metric_row
        assert "1 regression(s)" in text

    def test_json_document_shape(self, tmp_path):
        document = trend.render_json(self.report(tmp_path))
        assert document["schema"] == "flattree.trend/1"
        assert document["regressions"] == 1
        slow = next(m for m in document["metrics"]
                    if m["metric"] == "bench:a.py::slow")
        assert slow["status"] == "step-up"
        assert len(slow["points"]) == 4
        json.dumps(document)  # must be serializable as-is

    def test_markdown_table(self, tmp_path):
        markdown = trend.render_markdown(self.report(tmp_path))
        assert "| **step-up** | `bench:a.py::slow` |" in markdown

    def test_emit_trend_event_matches_the_contract(self, tmp_path,
                                                   memory_sink):
        report = self.report(tmp_path)
        trend.emit_trend_event(report)
        events = [e for e in memory_sink.events
                  if e.get("name") == "perf.trend_session"]
        assert len(events) == 1
        assert events[0]["sessions"] == 4
        assert events[0]["metrics"] == 2
        assert events[0]["steps"] == 1
