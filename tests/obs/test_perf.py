"""Unit tests for the span-tree profiler (repro.obs.perf)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ReproError
from repro.obs.perf import Profile
from repro.obs.sinks import MemorySink


def span(name, span_id, parent_id, path, depth, duration_s, **extra):
    base = {"ts": 1.0, "name": name, "kind": "span",
            "duration_s": duration_s, "path": path, "depth": depth,
            "span_id": span_id, "parent_id": parent_id}
    base.update(extra)
    return base


def small_tree():
    """root(1.0s) -> child(0.3s), child(0.2s); exit-ordered stream."""
    return [
        span("child", 2, 1, "root/child", 1, 0.3),
        span("child", 3, 1, "root/child", 1, 0.2),
        span("root", 1, None, "root", 0, 1.0, mode="clos"),
    ]


class TestReconstruction:
    def test_links_by_ids(self):
        profile = Profile.from_events(small_tree())
        assert len(profile.roots) == 1
        root = profile.roots[0]
        assert root.name == "root"
        assert [c.span_id for c in root.children] == [2, 3]
        assert root.self_s == pytest.approx(0.5)
        assert root.attrs == {"mode": "clos"}

    def test_sibling_spans_sharing_a_name_stay_distinct(self):
        profile = Profile.from_events(small_tree())
        children = profile.roots[0].children
        assert [c.name for c in children] == ["child", "child"]
        assert children[0].duration_s != children[1].duration_s

    def test_non_span_events_ignored(self):
        events = [{"ts": 1, "name": "c", "kind": "counter", "value": 1},
                  span("root", 1, None, "root", 0, 0.5)]
        profile = Profile.from_events(events)
        assert len(profile.nodes) == 1

    def test_duplicate_ids_rejected(self):
        events = [span("a", 1, None, "a", 0, 0.1),
                  span("b", 1, None, "b", 0, 0.1)]
        with pytest.raises(ReproError, match="duplicate span_id"):
            Profile.from_events(events)

    def test_malformed_span_rejected(self):
        with pytest.raises(ReproError, match="malformed span"):
            Profile.from_events([{"kind": "span", "name": "x"}])

    def test_legacy_trace_without_ids_linked_by_exit_order(self):
        events = [
            {"ts": 1, "name": "inner", "kind": "span", "duration_s": 0.2,
             "path": "outer/inner", "depth": 1},
            {"ts": 1, "name": "outer", "kind": "span", "duration_s": 0.5,
             "path": "outer", "depth": 0},
            {"ts": 1, "name": "second", "kind": "span", "duration_s": 0.1,
             "path": "second", "depth": 0},
        ]
        profile = Profile.from_events(events)
        assert sorted(r.name for r in profile.roots) == ["outer", "second"]
        outer = next(r for r in profile.roots if r.name == "outer")
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.self_s == pytest.approx(0.3)

    def test_recorded_memory_sink_events_round_trip(self, clean_obs):
        sink = MemorySink()
        obs.enable(sink)
        with obs.span("cli"):
            with obs.span("build"):
                pass
            with obs.span("convert"):
                pass
        obs.disable()
        profile = Profile.from_events(sink.events)
        assert [r.name for r in profile.roots] == ["cli"]
        assert [c.name for c in profile.roots[0].children] == [
            "build", "convert"]


class TestFromJsonl:
    def test_loads_trace_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [json.dumps(e) for e in small_tree()]
        path.write_text("\n".join(lines) + "\n\n")  # trailing blank line ok
        profile = Profile.from_jsonl(str(path))
        assert len(profile.nodes) == 3
        assert profile.total_s == pytest.approx(1.0)

    def test_bad_json_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(small_tree()[0]) + "\n{nope\n")
        with pytest.raises(ReproError, match=r":2: not valid JSONL"):
            Profile.from_jsonl(str(path))


class TestReports:
    def test_total_is_sum_of_roots(self):
        events = small_tree() + [span("other", 4, None, "other", 0, 0.5)]
        assert Profile.from_events(events).total_s == pytest.approx(1.5)

    def test_walk_yields_parents_before_children(self):
        profile = Profile.from_events(small_tree())
        names = [n.name for n in profile.walk()]
        assert names[0] == "root"
        assert sorted(names) == ["child", "child", "root"]

    def test_aggregate_cum_and_self(self):
        stats = {s.name: s for s in
                 Profile.from_events(small_tree()).aggregate()}
        assert stats["root"].calls == 1
        assert stats["root"].cum_s == pytest.approx(1.0)
        assert stats["root"].self_s == pytest.approx(0.5)
        assert stats["child"].calls == 2
        assert stats["child"].cum_s == pytest.approx(0.5)
        assert stats["child"].self_s == pytest.approx(0.5)

    def test_aggregate_recursive_span_self_never_double_counts(self):
        events = [
            span("f", 2, 1, "f/f", 1, 0.4),
            span("f", 1, None, "f", 0, 1.0),
        ]
        (stats,) = Profile.from_events(events).aggregate()
        assert stats.calls == 2
        assert stats.cum_s == pytest.approx(1.4)  # subtree counted twice
        assert stats.self_s == pytest.approx(1.0)  # exact

    def test_aggregate_orders_heaviest_self_first(self):
        names = [s.name for s in
                 Profile.from_events(small_tree()).aggregate()]
        assert names == ["child", "root"]  # 0.5s self each; name breaks tie

    def test_aggregate_mem_takes_per_name_peak(self):
        events = [
            span("work", 2, 1, "root/work", 1, 0.1, mem_peak_kb=10.0),
            span("work", 3, 1, "root/work", 1, 0.1, mem_peak_kb=80.0),
            span("root", 1, None, "root", 0, 0.5, mem_peak_kb=90.0),
        ]
        stats = {s.name: s for s in Profile.from_events(events).aggregate()}
        assert stats["work"].mem_peak_kb == pytest.approx(80.0)
        assert stats["root"].mem_peak_kb == pytest.approx(90.0)

    def test_critical_path_descends_heaviest_child(self):
        events = small_tree() + [
            span("grand", 4, 2, "root/child/grand", 2, 0.25),
        ]
        # Re-link: child #2 (0.3s) holds the 0.25s grandchild.
        chain = Profile.from_events(events).critical_path()
        assert [n.name for n in chain] == ["root", "child", "grand"]
        assert chain[1].span_id == 2

    def test_critical_path_empty_profile(self):
        assert Profile.from_events([]).critical_path() == []

    def test_folded_sums_identical_paths_in_integer_usec(self):
        folded = Profile.from_events(small_tree()).folded()
        assert folded == ["root 500000", "root;child 500000"]
        for line in folded:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) >= 0

    def test_folded_escapes_semicolons_in_names(self):
        events = [span("a;b", 1, None, "a;b", 0, 0.1)]
        (line,) = Profile.from_events(events).folded()
        assert line == "a,b 100000"

    def test_render_table_mentions_critical_path(self):
        text = Profile.from_events(small_tree()).render_table()
        assert "3 spans, 1 roots" in text
        assert "critical path:" in text
        assert "root" in text and "child" in text
        assert "peak_kb" not in text  # no mem data in this trace

    def test_render_table_shows_mem_column_when_present(self):
        events = [span("root", 1, None, "root", 0, 0.5, mem_peak_kb=64.0)]
        text = Profile.from_events(events).render_table()
        assert "peak_kb" in text
        assert "64.0" in text
