"""Telemetry test fixtures: isolated enable/disable around each test."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.sinks import MemorySink


@pytest.fixture()
def clean_obs():
    """Guarantee telemetry is off and the registry empty around a test."""
    obs.disable()
    obs.registry.reset()
    yield
    obs.disable()
    obs.registry.reset()


@pytest.fixture()
def memory_sink(clean_obs) -> MemorySink:
    """Telemetry enabled onto an in-memory sink (metric events on)."""
    sink = MemorySink()
    obs.enable(sink, emit_metric_events=True)
    return sink
