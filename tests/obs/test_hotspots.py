"""HOTSPOTS_<seq>.json artifacts: discovery, schema, round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import hotspots
from repro.obs.sampler import SampleProfile


def touch(tmp_path, name):
    (tmp_path / name).write_text("{}\n", encoding="utf-8")


def make_profile():
    counts = {
        ("hotspots.campaign/hotspots.mcf", ("mod.solve", "mod.dijkstra")): 8,
        ("hotspots.campaign/hotspots.build", ("mod.build",)): 2,
    }
    return SampleProfile(counts, samples=10, duration_s=2.0, hz=97.0)


def make_document(tmp_path=None):
    stages = [
        {"name": "build", "span": "hotspots.campaign/hotspots.build",
         "wall_s": 0.5},
        {"name": "mcf", "span": "hotspots.campaign/hotspots.mcf",
         "wall_s": 1.5},
    ]
    return hotspots.build_document(
        make_profile(), stages, k=8, label="test")


class TestSequence:
    def test_discovery_ignores_tags_and_sorts(self, tmp_path):
        for name in ("HOTSPOTS_2.json", "HOTSPOTS_1.json",
                     "HOTSPOTS_smoke.json"):
            touch(tmp_path, name)
        names = [p.name for p in hotspots.hotspot_paths(tmp_path)]
        assert names == ["HOTSPOTS_1.json", "HOTSPOTS_2.json"]

    def test_next_free_slot(self, tmp_path):
        assert hotspots.next_hotspots_path(tmp_path).name == "HOTSPOTS_1.json"
        touch(tmp_path, "HOTSPOTS_3.json")
        assert hotspots.next_hotspots_path(tmp_path).name == "HOTSPOTS_4.json"


class TestDocument:
    def test_build_is_schema_valid(self):
        document = make_document()
        assert hotspots.validate_document(document) == []
        assert document["schema"] == hotspots.SCHEMA
        assert document["samples"] == 10

    def test_stage_sample_attribution(self):
        document = make_document()
        by_name = {s["name"]: s for s in document["stages"]}
        assert by_name["mcf"]["samples"] == 8
        assert by_name["build"]["samples"] == 2

    def test_functions_ranked_by_self_time(self):
        functions = make_document()["functions"]
        assert functions[0]["key"] == "mod.dijkstra"
        assert functions[0]["spans"] == {
            "hotspots.campaign/hotspots.mcf": 8}

    def test_validate_rejects_unsorted_functions(self):
        document = make_document()
        document["functions"].reverse()
        assert any("not sorted" in p
                   for p in hotspots.validate_document(document))

    def test_validate_rejects_bad_schema_and_folded(self):
        document = make_document()
        document["schema"] = "flattree.hotspots/999"
        document["folded"] = ["no-weight-here"]
        problems = hotspots.validate_document(document)
        assert any("'schema'" in p for p in problems)
        assert any("folded" in p for p in problems)

    def test_write_scrubs_nan_and_sorts_keys(self, tmp_path):
        document = make_document()
        document["duration_s"] = 2.0
        document["environment"]["cpu_ghz"] = float("nan")
        path = tmp_path / "HOTSPOTS_1.json"
        hotspots.write_document(path, document)
        text = path.read_text(encoding="utf-8")
        assert "NaN" not in text
        decoded = json.loads(text)
        assert decoded["environment"]["cpu_ghz"] is None
        assert list(decoded) == sorted(decoded)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "HOTSPOTS_1.json"
        hotspots.write_document(path, make_document())
        loaded = hotspots.load_document(path)
        assert loaded["samples"] == 10
        assert len(loaded["folded"]) == 2

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "HOTSPOTS_1.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ReproError, match="not valid JSON"):
            hotspots.load_document(path)
        path.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
        with pytest.raises(ReproError, match="hotspot schema"):
            hotspots.load_document(path)

    def test_write_refuses_invalid(self, tmp_path):
        document = make_document()
        document["stages"] = []
        with pytest.raises(ReproError, match="refusing to write"):
            hotspots.write_document(tmp_path / "HOTSPOTS_1.json", document)

    def test_render_mentions_stages_and_functions(self):
        text = hotspots.render_document(make_document())
        assert "mcf" in text
        assert "mod.dijkstra" in text
        assert "[hotspots.campaign/hotspots.mcf]" in text
