"""Unit tests for the shared telemetry wire contract (repro.obs.contract)."""

from __future__ import annotations

import json

from repro.obs import contract


def event(name, **attrs):
    base = {"ts": 1.0, "name": name, "kind": "event", "value": 1}
    base.update(attrs)
    return base


def span_event(**over):
    base = {"ts": 1.0, "name": "s", "kind": "span", "duration_s": 0.1,
            "path": "s", "depth": 0, "span_id": 1, "parent_id": None}
    base.update(over)
    return base


class TestRegistryConsistency:
    def test_known_names_derived_from_event_fields(self):
        assert contract.KNOWN_EVENT_NAMES == frozenset(contract.EVENT_FIELDS)

    def test_every_value_check_is_for_a_registered_name(self):
        assert set(contract.EVENT_CHECKS) <= set(contract.KNOWN_EVENT_NAMES)

    def test_required_fields_are_nonempty_frozensets(self):
        for name, fields in contract.EVENT_FIELDS.items():
            assert isinstance(fields, frozenset), name
            assert fields, name

    def test_event_kind_in_kinds(self):
        assert "event" in contract.KINDS
        assert {"link_sample", "link_down", "link_up"} <= contract.KINDS


class TestCheckEvent:
    def test_valid_heal_passes(self):
        assert contract.check_event(
            event("core.failures.heal", reconfigured=2, unrecoverable=0,
                  t=3.5)) == []

    def test_missing_ts_and_value(self):
        problems = contract.check_event({"name": "x", "kind": "counter"})
        assert any("'ts'" in p for p in problems)
        assert any("'value' or 'duration_s'" in p for p in problems)

    def test_bool_is_not_numeric(self):
        problems = contract.check_event(
            {"ts": True, "name": "x", "kind": "counter", "value": True})
        assert problems

    def test_unknown_kind(self):
        problems = contract.check_event(
            {"ts": 1.0, "name": "x", "kind": "blob", "value": 1})
        assert any("unknown 'kind'" in p for p in problems)

    def test_negative_duration(self):
        problems = contract.check_event(
            {"ts": 1.0, "name": "x", "kind": "timer", "duration_s": -0.5})
        assert any("negative 'duration_s'" in p for p in problems)

    def test_span_requires_path_and_depth(self):
        problems = contract.check_event(
            {"ts": 1.0, "name": "s", "kind": "span", "duration_s": 0.1})
        assert any("span missing 'path'" in p for p in problems)
        assert any("integer 'depth'" in p for p in problems)

    def test_bad_converter_retry_fault_value(self):
        problems = contract.check_event(
            event("core.reconfigure.converter_retry", converter="c0",
                  attempt=1, batch=0, fault="explosion", t=1.0))
        assert any("'timeout' or 'nack'" in p for p in problems)

    def test_solver_failure_fraction_range(self):
        problems = contract.check_event(
            event("experiments.degradation.solver_failure", topology="ft",
                  fraction=1.5, draw=0))
        assert any("outside [0, 1]" in p for p in problems)

    def test_candidate_skipped_rejects_empty_reason(self):
        problems = contract.check_event(
            event("core.scaling.candidate_skipped", candidate="core3",
                  reason="   "))
        assert any("'reason'" in p for p in problems)

    def test_negative_simulated_time(self):
        problems = contract.check_event(
            event("core.failures.heal", reconfigured=0, unrecoverable=0,
                  t=-1.0))
        assert any("negative" in p for p in problems)

    def test_link_sample_zero_capacity(self):
        problems = contract.check_event({
            "ts": 1.0, "name": "monitor.link", "kind": "link_sample",
            "value": 1, "link": "a-b", "t": 0.5, "utilization": 0.0,
            "rate": 0.0, "capacity": 0, "active_flows": 0,
        })
        assert any("zero 'capacity'" in p for p in problems)


class TestSpanContract:
    def test_span_fields_registry(self):
        assert contract.SPAN_FIELDS == frozenset(
            {"path", "depth", "span_id", "parent_id"})

    def test_valid_root_span(self):
        assert contract.check_event(span_event()) == []

    def test_valid_child_span(self):
        assert contract.check_event(
            span_event(span_id=3, parent_id=1, path="a/s", depth=1)) == []

    def test_missing_span_id(self):
        bad = span_event()
        del bad["span_id"]
        problems = contract.check_event(bad)
        assert any("'span_id'" in p for p in problems)

    def test_bool_and_zero_span_id_rejected(self):
        assert contract.check_event(span_event(span_id=True))
        problems = contract.check_event(span_event(span_id=0))
        assert any(">= 1" in p for p in problems)

    def test_missing_parent_id_key(self):
        bad = span_event()
        del bad["parent_id"]
        problems = contract.check_event(bad)
        assert any("'parent_id'" in p for p in problems)

    def test_parent_id_must_be_null_or_positive_int(self):
        assert contract.check_event(span_event(parent_id="root"))
        assert contract.check_event(span_event(parent_id=0))
        assert contract.check_event(span_event(parent_id=True))

    def test_parent_id_not_below_span_id(self):
        problems = contract.check_event(span_event(span_id=2, parent_id=2))
        assert any("parents are created first" in p for p in problems)

    def test_mem_peak_kb_validation(self):
        assert contract.check_event(span_event(mem_peak_kb=12.5)) == []
        assert contract.check_event(span_event(mem_peak_kb=0)) == []
        assert contract.check_event(span_event(mem_peak_kb=-1.0))
        assert contract.check_event(span_event(mem_peak_kb="big"))

    def test_recorded_spans_round_trip(self):
        # Schema round-trip: what the tracer actually emits must pass
        # the contract verbatim, ids and parentage included.
        from repro import obs
        from repro.obs.sinks import MemorySink

        sink = MemorySink()
        obs.disable()
        obs.enable(sink)
        try:
            with obs.span("outer", k=4):
                with obs.span("inner"):
                    pass
        finally:
            obs.disable()
        spans = [e for e in sink.events if e["kind"] == "span"]
        assert len(spans) == 2
        for span in spans:
            assert contract.check_event(span) == [], span


class TestBenchSessionEvent:
    def test_registered_with_required_fields(self):
        assert "perf.bench_session" in contract.KNOWN_EVENT_NAMES
        assert contract.EVENT_FIELDS["perf.bench_session"] == frozenset(
            {"out", "benches"})
        assert "perf.bench_session" in contract.EVENT_CHECKS

    def test_valid_bench_session(self):
        assert contract.check_event(
            event("perf.bench_session", out="BENCH_1.json",
                  benches=12)) == []

    def test_blank_out_rejected(self):
        problems = contract.check_event(
            event("perf.bench_session", out="   ", benches=1))
        assert any("'out'" in p for p in problems)

    def test_negative_benches_rejected(self):
        problems = contract.check_event(
            event("perf.bench_session", out="BENCH_1.json", benches=-1))
        assert any("'benches'" in p for p in problems)


class TestDiffTrendEvents:
    def test_registered_with_required_fields(self):
        assert contract.EVENT_FIELDS["perf.diff_session"] == frozenset(
            {"base", "new", "grown", "shrunk"})
        assert contract.EVENT_FIELDS["perf.trend_session"] == frozenset(
            {"sessions", "metrics", "steps"})
        assert "perf.diff_session" in contract.EVENT_CHECKS
        assert "perf.trend_session" in contract.EVENT_CHECKS

    def test_valid_diff_session(self):
        assert contract.check_event(
            event("perf.diff_session", base="BENCH_1.json",
                  new="BENCH_2.json", grown=2, shrunk=0)) == []

    def test_diff_session_blank_labels_rejected(self):
        problems = contract.check_event(
            event("perf.diff_session", base=" ", new="BENCH_2.json",
                  grown=0, shrunk=0))
        assert any("'base'" in p for p in problems)

    def test_diff_session_negative_counts_rejected(self):
        problems = contract.check_event(
            event("perf.diff_session", base="a", new="b",
                  grown=-1, shrunk=0))
        assert any("'grown'" in p for p in problems)

    def test_valid_trend_session(self):
        assert contract.check_event(
            event("perf.trend_session", sessions=4, metrics=20,
                  steps=1)) == []

    def test_trend_session_non_integer_rejected(self):
        problems = contract.check_event(
            event("perf.trend_session", sessions=4, metrics="many",
                  steps=0))
        assert any("'metrics'" in p for p in problems)


class TestHealthEvents:
    def test_registered_with_required_fields(self):
        assert contract.EVENT_FIELDS["health.alert_firing"] == frozenset(
            {"rule", "metric", "value", "threshold", "t"})
        assert contract.EVENT_FIELDS["health.alert_resolved"] == frozenset(
            {"rule", "metric", "fired_for", "t"})
        assert contract.EVENT_FIELDS["health.slo_burn"] == frozenset(
            {"slo", "burn_rate", "budget_remaining", "t"})
        for name in ("health.alert_firing", "health.alert_resolved",
                     "health.slo_burn"):
            assert name in contract.EVENT_CHECKS

    def test_valid_alert_pair(self):
        assert contract.check_event(
            event("health.alert_firing", rule="link_hotspot",
                  metric="link.hottest_ewma", value=0.95, threshold=0.9,
                  t=1.5)) == []
        assert contract.check_event(
            event("health.alert_resolved", rule="link_hotspot",
                  metric="link.hottest_ewma", fired_for=4.8, t=6.3)) == []

    def test_alert_firing_requires_numeric_threshold(self):
        problems = contract.check_event(
            event("health.alert_firing", rule="r", metric="m",
                  value=1.0, threshold="high", t=1.0))
        assert any("'threshold'" in p for p in problems)

    def test_negative_fired_for_rejected(self):
        problems = contract.check_event(
            event("health.alert_resolved", rule="r", metric="m",
                  fired_for=-1.0, t=1.0))
        assert any("fired_for" in p for p in problems)

    def test_slo_burn_allows_negative_budget_remaining(self):
        assert contract.check_event(
            event("health.slo_burn", slo="conversion_downtime",
                  burn_rate=3.5, budget_remaining=-0.01, t=2.0)) == []
        problems = contract.check_event(
            event("health.slo_burn", slo="conversion_downtime",
                  burn_rate=-1.0, budget_remaining=0.5, t=2.0))
        assert any("burn_rate" in p for p in problems)


class TestSelfHealEvents:
    def test_registered_with_required_fields(self):
        assert contract.EVENT_FIELDS["selfheal.action_planned"] == frozenset(
            {"action", "rule", "alert_t", "t"})
        assert contract.EVENT_FIELDS["selfheal.action_started"] == frozenset(
            {"action", "rule", "t"})
        assert contract.EVENT_FIELDS[
            "selfheal.action_succeeded"] == frozenset(
            {"action", "rule", "latency_s", "t"})
        assert contract.EVENT_FIELDS["selfheal.action_failed"] == frozenset(
            {"action", "rule", "reason", "t"})
        assert contract.EVENT_FIELDS[
            "selfheal.action_suppressed"] == frozenset(
            {"action", "rule", "reason", "t"})
        for name in ("selfheal.action_planned", "selfheal.action_started",
                     "selfheal.action_succeeded", "selfheal.action_failed",
                     "selfheal.action_suppressed"):
            assert name in contract.EVENT_CHECKS

    def test_valid_action_lifecycle(self):
        assert contract.check_event(
            event("selfheal.action_planned", action="reconvert",
                  rule="link_hotspot", alert_t=1.8, t=2.1)) == []
        assert contract.check_event(
            event("selfheal.action_started", action="reconvert",
                  rule="link_hotspot", t=2.1)) == []
        assert contract.check_event(
            event("selfheal.action_succeeded", action="reconvert",
                  rule="link_hotspot", latency_s=0.09, t=2.1)) == []
        assert contract.check_event(
            event("selfheal.action_failed", action="heal",
                  rule="link_failure", reason="no path", t=3.0)) == []
        assert contract.check_event(
            event("selfheal.action_suppressed", action="heal",
                  rule="link_failure", reason="cooldown", t=3.0)) == []

    def test_action_and_rule_must_be_named(self):
        problems = contract.check_event(
            event("selfheal.action_started", action="", rule="r", t=1.0))
        assert any("action" in p for p in problems)

    def test_planned_requires_nonnegative_alert_t(self):
        problems = contract.check_event(
            event("selfheal.action_planned", action="heal", rule="r",
                  alert_t=-1.0, t=1.0))
        assert any("alert_t" in p for p in problems)

    def test_suppressed_requires_reason(self):
        problems = contract.check_event(
            event("selfheal.action_suppressed", action="heal", rule="r",
                  reason="", t=1.0))
        assert any("reason" in p for p in problems)

    def test_negative_latency_rejected(self):
        problems = contract.check_event(
            event("selfheal.action_succeeded", action="heal", rule="r",
                  latency_s=-0.1, t=1.0))
        assert any("latency_s" in p for p in problems)


class TestChaosRecoverNoopEvent:
    def test_registered(self):
        assert contract.EVENT_FIELDS["chaos.recover_noop"] == frozenset(
            {"component", "target", "t"})
        assert "chaos.recover_noop" in contract.EVENT_CHECKS

    def test_valid_event(self):
        assert contract.check_event(
            event("chaos.recover_noop", component="leg",
                  target="c3-edge", t=1.5)) == []

    def test_component_vocabulary_enforced(self):
        problems = contract.check_event(
            event("chaos.recover_noop", component="gpu",
                  target="x", t=1.0))
        assert any("component" in p for p in problems)


class TestCheckLineAndStream:
    def test_invalid_json(self):
        problems = contract.check_line("{not json")
        assert len(problems) == 1
        assert "not valid JSON" in problems[0]

    def test_non_object_line(self):
        assert contract.check_line("[1, 2]") == ["not a JSON object"]

    def test_valid_line(self):
        line = json.dumps(
            {"ts": 0.1, "name": "n", "kind": "gauge", "value": 2.0})
        assert contract.check_line(line) == []

    def test_validate_stream_maps_line_numbers(self):
        lines = [
            json.dumps({"ts": 0.1, "name": "n", "kind": "gauge",
                        "value": 2.0}),
            "garbage",
            json.dumps({"ts": 0.2, "name": "x", "kind": "nope",
                        "value": 1}),
        ]
        errors = contract.validate_stream(lines)
        assert sorted(errors) == [2, 3]
        assert "not valid JSON" in errors[2][0]
        assert any("unknown 'kind'" in p for p in errors[3])
