"""Unit tests for the differential profiler (repro.obs.diffprof)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs import diffprof
from repro.obs.perf import Profile


def span(name, span_id, parent_id, path, depth, duration_s, **extra):
    base = {"ts": 1.0, "name": name, "kind": "span",
            "duration_s": duration_s, "path": path, "depth": depth,
            "span_id": span_id, "parent_id": parent_id}
    base.update(extra)
    return base


def tree(solver_s, build_s=0.4, mem=None):
    """cli -> {build, solve}; ``solver_s`` is the knob under test."""
    extra = {"mem_peak_kb": mem} if mem is not None else {}
    return [
        span("build", 2, 1, "cli/build", 1, build_s),
        span("solve", 3, 1, "cli/solve", 1, solver_s, **extra),
        span("cli", 1, None, "cli", 0, build_s + solver_s + 0.1),
    ]


def legacy(events):
    """Strip span ids so reconstruction takes the exit-order fallback."""
    return [{k: (0 if k == "span_id" else None if k == "parent_id" else v)
             for k, v in e.items()} for e in events]


class TestSpanTreeDiff:
    def test_injected_slowdown_attributed_to_the_right_path(self):
        base = Profile.from_events(tree(solver_s=0.05))
        new = Profile.from_events(tree(solver_s=0.5))
        diff = diffprof.diff_profiles(base, new)
        assert diff.exit_code == 1
        grown = {d.path for d in diff.grown}
        assert "cli/solve" in grown
        assert "cli/build" not in grown
        solve = next(d for d in diff.deltas if d.path == "cli/solve")
        assert solve.ratio == pytest.approx(10.0)
        assert solve.cum_delta_s == pytest.approx(0.45)

    def test_steady_tree_exits_zero(self):
        base = Profile.from_events(tree(solver_s=0.2))
        new = Profile.from_events(tree(solver_s=0.21))
        diff = diffprof.diff_profiles(base, new)
        assert diff.exit_code == 0
        assert all(d.status in ("steady", "below-floor")
                   for d in diff.deltas)

    def test_legacy_traces_take_the_exit_order_fallback(self):
        # No span ids on either side: linking falls back to exit order
        # and the diff must still attribute by path.
        base = Profile.from_events(legacy(tree(solver_s=0.05)))
        new = Profile.from_events(legacy(tree(solver_s=0.5)))
        assert all(n.parent_id is not None or n.depth == 0
                   for n in base.walk())
        diff = diffprof.diff_profiles(base, new)
        assert diff.exit_code == 1
        assert {d.path for d in diff.grown} >= {"cli/solve"}

    def test_new_and_gone_paths_classified(self):
        base = Profile.from_events(tree(solver_s=0.2))
        extra = tree(solver_s=0.2)
        extra.insert(0, span("mcf", 4, 1, "cli/mcf", 1, 0.3))
        new = Profile.from_events(extra)
        diff = diffprof.diff_profiles(base, new)
        mcf = next(d for d in diff.deltas if d.path == "cli/mcf")
        assert mcf.status == "new"
        reverse = diffprof.diff_profiles(new, base)
        mcf = next(d for d in reverse.deltas if d.path == "cli/mcf")
        assert mcf.status == "gone"

    def test_below_floor_paths_never_judged(self):
        base = Profile.from_events(tree(solver_s=0.0001))
        new = Profile.from_events(tree(solver_s=0.004))
        diff = diffprof.diff_profiles(base, new)
        solve = next(d for d in diff.deltas if d.path == "cli/solve")
        assert solve.status == "below-floor"  # 40x but under 5 ms

    def test_mem_delta_reported(self):
        base = Profile.from_events(tree(solver_s=0.2, mem=1000.0))
        new = Profile.from_events(tree(solver_s=0.2, mem=1800.0))
        diff = diffprof.diff_profiles(base, new)
        solve = next(d for d in diff.deltas if d.path == "cli/solve")
        assert solve.mem_delta_kb == pytest.approx(800.0)

    def test_repeated_calls_collapse_onto_one_path(self):
        events = [
            span("step", 2, 1, "cli/step", 1, 0.2),
            span("step", 3, 1, "cli/step", 1, 0.3),
            span("cli", 1, None, "cli", 0, 0.6),
        ]
        diff = diffprof.diff_profiles(Profile.from_events(events),
                                      Profile.from_events(events))
        step = next(d for d in diff.deltas if d.path == "cli/step")
        assert step.base_calls == 2
        assert step.base_cum_s == pytest.approx(0.5)

    def test_critical_path_divergence_reported(self):
        base = Profile.from_events(tree(solver_s=0.1))  # build heavier
        new = Profile.from_events(tree(solver_s=0.9))  # solve heavier
        diff = diffprof.diff_profiles(base, new)
        assert diff.critical_divergence() == 1
        text = diffprof.render_text(diff)
        assert "critical paths diverge at depth 1" in text


class TestHotspotAndBenchDiff:
    def doc(self, mcf_s):
        return {
            "schema": "flattree.hotspots/1",
            "duration_s": 1.0 + mcf_s,
            "functions": [
                {"key": "repro/core/mcf.py:solve", "self_samples": 50,
                 "cum_samples": 60, "self_s": mcf_s, "cum_s": mcf_s},
                {"key": "repro/core/build.py:build", "self_samples": 10,
                 "cum_samples": 10, "self_s": 1.0, "cum_s": 1.0},
            ],
        }

    def test_hotspot_diff_attributes_the_step(self):
        diff = diffprof.diff_hotspot_documents(self.doc(0.5), self.doc(5.0))
        assert diff.exit_code == 1
        assert [d.path for d in diff.grown] == ["repro/core/mcf.py:solve"]

    def test_bench_diff_attributes_the_step(self):
        base = {"benchmarks": {"a.py::slow": {"wall_s": 0.1, "rounds": 1},
                               "a.py::ok": {"wall_s": 0.2, "rounds": 1}}}
        new = {"benchmarks": {"a.py::slow": {"wall_s": 1.0, "rounds": 1},
                              "a.py::ok": {"wall_s": 0.2, "rounds": 1}}}
        diff = diffprof.diff_bench_sessions(base, new)
        assert diff.exit_code == 1
        assert [d.path for d in diff.grown] == ["a.py::slow"]
        assert diff.base_total_s == pytest.approx(0.3)


class TestFolded:
    def test_parse_and_subtract(self):
        base = diffprof.parse_folded(["cli;solve 100", "cli;build 50"])
        new = diffprof.parse_folded(["cli;solve 900", "cli;fresh 10"])
        lines = diffprof.subtract_folded(base, new)
        assert lines == [
            "cli;build 50 0",
            "cli;fresh 0 10",
            "cli;solve 100 900",
        ]

    def test_parse_sums_duplicate_stacks(self):
        weights = diffprof.parse_folded(["a;b 10", "a;b 15", ""])
        assert weights == {"a;b": 25}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ReproError, match="folded line 1"):
            diffprof.parse_folded(["no-weight-here"])

    def test_round_trips_profile_folded_output(self):
        base = Profile.from_events(tree(solver_s=0.1))
        new = Profile.from_events(tree(solver_s=0.4))
        lines = diffprof.subtract_folded(
            diffprof.parse_folded(base.folded()),
            diffprof.parse_folded(new.folded()))
        solve = next(l for l in lines if l.startswith("cli;solve "))
        _, base_us, new_us = solve.rsplit(" ", 2)
        assert int(new_us) - int(base_us) == pytest.approx(300_000, abs=2)


class TestRenderingAndEvent:
    def diff(self):
        return diffprof.diff_profiles(
            Profile.from_events(tree(solver_s=0.05)),
            Profile.from_events(tree(solver_s=0.5)),
            base_label="BENCH_1.json", new_label="BENCH_2.json")

    def test_text_mentions_labels_and_counts(self):
        text = diffprof.render_text(self.diff())
        assert "BENCH_1.json -> BENCH_2.json" in text
        assert "2 grown" in text  # cli/solve plus its cli ancestor
        assert "cli/solve" in text

    def test_json_document_shape(self):
        document = diffprof.render_json(self.diff())
        assert document["grown"] == 2
        assert document["kind"] == "trace"
        paths = {d["path"]: d for d in document["deltas"]}
        assert paths["cli/solve"]["status"] == "grown"
        assert paths["cli/solve"]["ratio"] == pytest.approx(10.0)

    def test_emit_diff_event_matches_the_contract(self, memory_sink):
        diffprof.emit_diff_event(self.diff())
        events = [e for e in memory_sink.events
                  if e.get("name") == "perf.diff_session"]
        assert len(events) == 1
        assert events[0]["base"] == "BENCH_1.json"
        assert events[0]["grown"] == 2
        assert events[0]["shrunk"] == 0
