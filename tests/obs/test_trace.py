"""Tests for span tracing, sinks, and disabled-mode no-op behavior."""

from __future__ import annotations

import json
import time

from repro import obs
from repro.obs.sinks import FileSink, MemorySink, NullSink
from repro.obs.trace import _NULL_CTX


class TestDisabledFastPath:
    def test_disabled_by_default(self, clean_obs):
        assert not obs.enabled()

    def test_helpers_record_nothing(self, clean_obs):
        obs.incr("a")
        obs.observe("b", 1.0)
        obs.set_gauge("c", 2.0)
        obs.event("d")
        assert obs.registry.snapshot() == {}

    def test_span_and_timer_return_shared_null_ctx(self, clean_obs):
        assert obs.span("x") is _NULL_CTX
        assert obs.timer("x") is _NULL_CTX
        with obs.span("x", attr=1):
            pass  # must be usable as a context manager

    def test_instrumented_library_call_stays_silent(self, clean_obs):
        from repro.topology.fattree import build_fat_tree

        build_fat_tree(4)
        assert obs.registry.snapshot() == {}


class TestEnabledMetrics:
    def test_incr_observe_gauge(self, memory_sink):
        obs.incr("hits", 2)
        obs.incr("hits")
        obs.observe("lat_s", 0.5)
        obs.set_gauge("depth", 3)
        snap = obs.registry.snapshot()
        assert snap["hits"]["value"] == 3
        assert snap["lat_s"]["count"] == 1
        assert snap["depth"]["value"] == 3

    def test_metric_events_emitted(self, memory_sink):
        obs.incr("hits")
        kinds = [e["kind"] for e in memory_sink.events]
        assert kinds == ["counter"]
        event = memory_sink.events[0]
        assert event["name"] == "hits"
        assert event["value"] == 1
        assert "ts" in event

    def test_timer_observes_elapsed(self, memory_sink):
        with obs.timer("t_s"):
            time.sleep(0.01)
        snap = obs.registry.snapshot()["t_s"]
        assert snap["count"] == 1
        assert snap["p50"] >= 0.005


class TestSpans:
    def test_nested_ordering_and_paths(self, memory_sink):
        with obs.span("outer", k=8):
            with obs.span("inner"):
                pass
        spans = [e for e in memory_sink.events if e["kind"] == "span"]
        # Children exit (and emit) before their parents.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["path"] == "outer/inner"
        assert inner["depth"] == 1
        assert outer["path"] == "outer"
        assert outer["depth"] == 0
        assert outer["k"] == 8

    def test_parent_duration_covers_child(self, memory_sink):
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.005)
        spans = {e["name"]: e for e in memory_sink.events
                 if e["kind"] == "span"}
        assert spans["outer"]["duration_s"] >= spans["inner"]["duration_s"]
        assert spans["inner"]["duration_s"] >= 0.004

    def test_span_records_registry_histogram(self, memory_sink):
        with obs.span("phase"):
            pass
        assert obs.registry.snapshot()["span.phase_s"]["count"] == 1

    def test_span_marks_errors(self, memory_sink):
        try:
            with obs.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (event,) = [e for e in memory_sink.events if e["kind"] == "span"]
        assert event["error"] == "ValueError"

    def test_event_helper(self, memory_sink):
        obs.event("skipped", m=2, n=3, reason="infeasible")
        (event,) = memory_sink.events
        assert event["kind"] == "event"
        assert event["name"] == "skipped"
        assert event["m"] == 2 and event["reason"] == "infeasible"
        assert event["value"] == 1


class TestSpanContext:
    def test_ids_deterministic_and_reset_on_enable(self, clean_obs):
        def record():
            sink = MemorySink()
            obs.enable(sink)
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            with obs.span("second"):
                pass
            obs.disable()
            return [(e["name"], e["span_id"], e["parent_id"])
                    for e in sink.events if e["kind"] == "span"]

        first = record()
        # Exit order: inner closes first; ids follow entry order.
        assert first == [("inner", 2, 1), ("outer", 1, None),
                         ("second", 3, None)]
        assert record() == first  # counter resets on enable()

    def test_sibling_spans_get_distinct_ids(self, memory_sink):
        with obs.span("parent"):
            with obs.span("child"):
                pass
            with obs.span("child"):
                pass
        spans = [e for e in memory_sink.events if e["kind"] == "span"]
        parent = next(s for s in spans if s["name"] == "parent")
        children = [s for s in spans if s["name"] == "child"]
        assert len({c["span_id"] for c in children}) == 2
        assert all(c["parent_id"] == parent["span_id"] for c in children)
        assert parent["parent_id"] is None

    def test_parent_id_always_below_span_id(self, memory_sink):
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
        for event in memory_sink.events:
            if event["kind"] == "span" and event["parent_id"] is not None:
                assert event["parent_id"] < event["span_id"]


class TestTracemalloc:
    def test_mem_peak_recorded_when_enabled(self, clean_obs):
        import tracemalloc

        from repro.obs import contract

        sink = MemorySink()
        obs.enable(sink, trace_malloc=True)
        with obs.span("alloc"):
            blob = [0] * 50_000
            del blob
        obs.disable()
        assert not tracemalloc.is_tracing()  # we started it, we stop it
        (event,) = [e for e in sink.events if e["kind"] == "span"]
        assert event["mem_peak_kb"] >= 100  # the 50k-slot list is ~400 kB
        assert contract.check_event(event) == []

    def test_no_mem_field_by_default(self, memory_sink):
        with obs.span("x"):
            pass
        (event,) = [e for e in memory_sink.events if e["kind"] == "span"]
        assert "mem_peak_kb" not in event

    def test_env_var_opt_in(self, clean_obs, monkeypatch):
        monkeypatch.setenv(obs.TRACEMALLOC_ENV, "1")
        sink = MemorySink()
        obs.enable(sink)
        with obs.span("x"):
            pass
        obs.disable()
        (event,) = [e for e in sink.events if e["kind"] == "span"]
        assert event["mem_peak_kb"] >= 0

    def test_preexisting_tracing_left_running(self, clean_obs):
        import tracemalloc

        tracemalloc.start()
        try:
            obs.enable(MemorySink(), trace_malloc=True)
            obs.disable()
            assert tracemalloc.is_tracing()  # not ours to stop
        finally:
            tracemalloc.stop()


class TestSinks:
    def test_disable_resets_to_null_sink(self, memory_sink):
        obs.disable()
        assert isinstance(obs.current_sink(), NullSink)
        assert not obs.enabled()

    def test_file_sink_writes_jsonl(self, clean_obs, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.enable(FileSink(str(path)), emit_metric_events=True)
        obs.incr("a")
        with obs.span("s"):
            pass
        obs.disable()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            event = json.loads(line)
            assert {"ts", "name", "kind"} <= set(event)
            assert "value" in event or "duration_s" in event

    def test_memory_sink_clear(self, clean_obs):
        sink = MemorySink()
        sink.emit({"a": 1})
        assert sink.describe() == "memory(1 events)"
        sink.clear()
        assert sink.events == []


class TestInstrumentedPaths:
    def test_fattree_build_metrics(self, memory_sink):
        from repro.topology.fattree import build_fat_tree

        build_fat_tree(4)
        snap = obs.registry.snapshot()
        assert snap["topology.fattree.builds"]["value"] == 1
        assert snap["topology.fattree.build_s"]["count"] == 1
        assert snap["topology.fattree.switches"]["value"] == 20

    def test_jellyfish_repair_metrics(self, memory_sink):
        from repro.topology.jellyfish import build_jellyfish_like_fat_tree

        build_jellyfish_like_fat_tree(4)
        snap = obs.registry.snapshot()
        assert snap["topology.jellyfish.builds"]["value"] == 1
        assert "topology.jellyfish.repair_iterations" in snap

    def test_conversion_metrics(self, memory_sink):
        from repro import FlatTree, FlatTreeDesign, Mode, convert

        ft = FlatTree(FlatTreeDesign.for_fat_tree(4))
        convert(ft, Mode.GLOBAL_RANDOM)
        snap = obs.registry.snapshot()
        assert snap["core.conversion.converts"]["value"] == 1
        assert snap["core.conversion.reprogrammed"]["value"] > 0

    def test_mcf_exact_metrics(self, memory_sink, path3):
        from repro.mcf.commodities import Commodity, build_flow_problem
        from repro.mcf.exact import solve_concurrent_exact

        problem = build_flow_problem(path3, [Commodity(0, 1)])
        solve_concurrent_exact(problem)
        snap = obs.registry.snapshot()
        assert snap["mcf.exact.solves"]["value"] == 1
        assert snap["mcf.exact.solve_s"]["count"] == 1
        assert snap["mcf.exact.last_objective"]["value"] > 0

    def test_flowsim_metrics(self, memory_sink, triangle):
        from repro.flowsim.simulator import FlowSimulator, FlowSpec
        from repro.routing.base import Path

        def router(src, dst, fid):
            return Path((triangle.server_switch(src),
                         triangle.server_switch(dst)))

        sim = FlowSimulator(triangle, router)
        sim.run([FlowSpec(0, 0, 1, size=1.0), FlowSpec(1, 1, 2, size=2.0)])
        snap = obs.registry.snapshot()
        assert snap["flowsim.flows_completed"]["value"] == 2
        assert snap["flowsim.events"]["value"] >= 2
        assert snap["flowsim.fairshare_recomputes"]["value"] >= 1


class TestActiveSpanPath:
    """Cross-thread span-path mirror consumed by the sampling profiler."""

    def test_empty_without_spans(self, clean_obs):
        assert obs.active_span_path() == ""

    def test_tracks_nesting(self, memory_sink):
        with obs.span("outer"):
            assert obs.active_span_path() == "outer"
            with obs.span("inner"):
                assert obs.active_span_path() == "outer/inner"
            assert obs.active_span_path() == "outer"
        assert obs.active_span_path() == ""

    def test_readable_from_another_thread(self, memory_sink):
        import threading

        target = threading.get_ident()
        seen = []
        with obs.span("phase"):
            worker = threading.Thread(
                target=lambda: seen.append(obs.active_span_path(target)))
            worker.start()
            worker.join()
            # And the worker thread itself has no active span.
            assert obs.active_span_path() == "phase"
        assert seen == ["phase"]

    def test_cleared_on_disable(self, memory_sink):
        span = obs.span("orphan")
        span.__enter__()
        obs.disable()
        assert obs.active_span_path() == ""
        span.__exit__(None, None, None)  # guarded pop: must not raise
