"""ProgressTracker: heartbeat emission, throttling, monotone ETA."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.contract import check_event


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def heartbeats(sink):
    return [e for e in sink.events if e.get("name") == "progress.heartbeat"]


class TestDisabledPath:
    def test_counts_without_emitting(self, clean_obs):
        tracker = obs.ProgressTracker("phase", total=5)
        tracker.advance(3)
        tracker.finish()
        assert tracker.done == 3


class TestHeartbeats:
    def test_schema_valid_on_the_wire(self, memory_sink):
        tracker = obs.ProgressTracker("build", total=4, interval_s=0.0)
        for _ in range(4):
            tracker.advance()
        tracker.finish()
        beats = heartbeats(memory_sink)
        assert beats
        for beat in beats:
            assert check_event(beat) == []
            assert beat["phase"] == "build"

    def test_throttled_by_interval(self, memory_sink):
        clock = FakeClock()
        tracker = obs.ProgressTracker("p", total=100, interval_s=10.0,
                                      clock=clock)
        for _ in range(50):
            clock.t += 0.1  # 5s of work: only the first advance emits
            tracker.advance()
        assert len(heartbeats(memory_sink)) == 1

    def test_finish_always_emits_and_is_idempotent(self, memory_sink):
        tracker = obs.ProgressTracker("p", total=2, interval_s=1000.0)
        tracker.advance(2)
        tracker.finish()
        tracker.finish()
        beats = heartbeats(memory_sink)
        assert len(beats) == 2  # first advance + the single finish
        assert beats[-1]["done"] == 2

    def test_memory_fields_present_on_linux(self, memory_sink):
        tracker = obs.ProgressTracker("p", total=1, interval_s=0.0)
        tracker.advance()
        beat = heartbeats(memory_sink)[0]
        if obs.read_rss_kb() is not None:
            assert beat["rss_kb"] > 0
            assert beat["rss_peak_kb"] >= beat["rss_kb"]


class TestMonotoneEta:
    def test_eta_non_increasing_under_steady_rate(self, memory_sink):
        clock = FakeClock()
        tracker = obs.ProgressTracker("steady", total=10, interval_s=0.0,
                                      clock=clock)
        for _ in range(10):
            clock.t += 1.0  # one item per second, perfectly steady
            tracker.advance()
        etas = [b["eta_s"] for b in heartbeats(memory_sink) if "eta_s" in b]
        assert len(etas) == 10
        assert all(a >= b for a, b in zip(etas, etas[1:]))
        assert etas[-1] == 0.0

    def test_eta_clamped_when_rate_collapses(self, memory_sink):
        clock = FakeClock()
        tracker = obs.ProgressTracker("stall", total=10, interval_s=0.0,
                                      clock=clock)
        clock.t = 1.0
        tracker.advance(5)  # 5 items in 1s -> raw ETA 1s
        clock.t = 100.0     # then a huge stall: raw ETA would explode
        tracker.advance()
        etas = [b["eta_s"] for b in heartbeats(memory_sink) if "eta_s" in b]
        assert etas[1] <= etas[0]

    def test_no_eta_without_total(self, memory_sink):
        tracker = obs.ProgressTracker("unknown", interval_s=0.0)
        tracker.advance()
        beat = heartbeats(memory_sink)[0]
        assert "eta_s" not in beat
        assert beat["total"] == 0

    def test_eta_s_accessor(self, clean_obs):
        clock = FakeClock()
        tracker = obs.ProgressTracker("p", total=4, clock=clock)
        assert tracker.eta_s() is None
        clock.t = 2.0
        tracker.advance(2)
        assert tracker.eta_s() == pytest.approx(2.0)


class TestContextManager:
    def test_exit_finishes(self, memory_sink):
        with obs.ProgressTracker("ctx", total=1, interval_s=1000.0) as t:
            t.advance()
        assert heartbeats(memory_sink)[-1]["done"] == 1
